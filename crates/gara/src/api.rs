//! The uniform GARA reservation API.
//!
//! "It defines APIs that allows users and applications to manipulate
//! reservations of different resources in uniform ways." A [`Gara`]
//! instance fronts a broker [`Mesh`] (network reservations ride the
//! hop-by-hop protocol of `qos-core`) plus per-domain CPU and disk
//! managers, all behind handle-based create / status / cancel calls —
//! including the **co-reservation** of network + CPU that Figures 5
//! and 6 depend on (`CPU_Reservation_ID=111`).

use crate::resource::{ResourceKind, SlottedResource};
use qos_broker::Interval;
use qos_core::drive::Mesh;
use qos_core::node::Completion;
use qos_core::scenario::UserIdentity;
use qos_core::{Approval, Denial, RarId, ResSpec, SignedRar};
use qos_crypto::Certificate;
use qos_net::SimDuration;
use std::collections::HashMap;
use std::fmt;

/// An opaque reservation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GaraHandle(pub u64);

/// Reservation state as reported by [`Gara::status`].
#[derive(Debug, Clone, PartialEq)]
pub enum GaraStatus {
    /// Granted; for network reservations the signed approval chain is
    /// available.
    Granted {
        /// The approval (network reservations only).
        approval: Option<Approval>,
    },
    /// Denied, with the denying domain and reason.
    Denied {
        /// Denying domain (network) or resource domain (CPU/disk).
        domain: String,
        /// Why.
        reason: String,
    },
    /// Cancelled by the caller.
    Cancelled,
}

impl GaraStatus {
    /// True for `Granted`.
    pub fn is_granted(&self) -> bool {
        matches!(self, GaraStatus::Granted { .. })
    }
}

/// GARA API errors.
#[derive(Debug, Clone, PartialEq)]
pub enum GaraError {
    /// Unknown handle.
    UnknownHandle(GaraHandle),
    /// No such resource manager.
    UnknownResource {
        /// The domain asked for.
        domain: String,
        /// The resource kind asked for.
        kind: ResourceKind,
    },
    /// The local resource manager refused.
    Admission(String),
    /// The network request never completed (driver exhausted without a
    /// completion — a protocol bug if it ever happens).
    NoCompletion(RarId),
}

impl fmt::Display for GaraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaraError::UnknownHandle(h) => write!(f, "unknown handle {h:?}"),
            GaraError::UnknownResource { domain, kind } => {
                write!(f, "no {kind:?} manager in {domain}")
            }
            GaraError::Admission(m) => write!(f, "admission: {m}"),
            GaraError::NoCompletion(id) => write!(f, "request {id:?} never completed"),
        }
    }
}

impl std::error::Error for GaraError {}

enum Record {
    Network {
        rar_id: RarId,
        result: Result<Approval, Denial>,
        cancelled: bool,
    },
    Slotted {
        domain: String,
        kind: ResourceKind,
        id: qos_broker::ReservationId,
        cancelled: bool,
    },
}

/// The GARA service: uniform reservations over a broker mesh and local
/// resource managers.
pub struct Gara {
    mesh: Mesh,
    slotted: HashMap<(String, ResourceKind), SlottedResource>,
    records: HashMap<GaraHandle, Record>,
    next_handle: u64,
    next_cpu_resv_id: u64,
}

impl Gara {
    /// Wrap a configured mesh.
    pub fn new(mesh: Mesh) -> Self {
        Self {
            mesh,
            slotted: HashMap::new(),
            records: HashMap::new(),
            next_handle: 1,
            next_cpu_resv_id: 100,
        }
    }

    /// Register a CPU resource (`slots` units) in `domain`.
    pub fn register_cpu(&mut self, domain: &str, slots: u64) {
        self.slotted.insert(
            (domain.to_string(), ResourceKind::Cpu),
            SlottedResource::new(ResourceKind::Cpu, slots),
        );
    }

    /// Register a disk resource (`bytes_per_sec` units) in `domain`.
    pub fn register_disk(&mut self, domain: &str, bytes_per_sec: u64) {
        self.slotted.insert(
            (domain.to_string(), ResourceKind::Disk),
            SlottedResource::new(ResourceKind::Disk, bytes_per_sec),
        );
    }

    /// The underlying mesh (for attaching networks, inspecting brokers).
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Mutable mesh access.
    pub fn mesh_mut(&mut self) -> &mut Mesh {
        &mut self.mesh
    }

    fn handle(&mut self) -> GaraHandle {
        let h = GaraHandle(self.next_handle);
        self.next_handle += 1;
        h
    }

    /// Reserve CPU slots.
    pub fn reserve_cpu(
        &mut self,
        domain: &str,
        slots: u64,
        interval: Interval,
    ) -> Result<GaraHandle, GaraError> {
        self.reserve_slotted(domain, ResourceKind::Cpu, slots, interval)
    }

    /// Reserve disk bandwidth.
    pub fn reserve_disk(
        &mut self,
        domain: &str,
        bytes_per_sec: u64,
        interval: Interval,
    ) -> Result<GaraHandle, GaraError> {
        self.reserve_slotted(domain, ResourceKind::Disk, bytes_per_sec, interval)
    }

    fn reserve_slotted(
        &mut self,
        domain: &str,
        kind: ResourceKind,
        units: u64,
        interval: Interval,
    ) -> Result<GaraHandle, GaraError> {
        let res = self
            .slotted
            .get_mut(&(domain.to_string(), kind))
            .ok_or_else(|| GaraError::UnknownResource {
                domain: domain.to_string(),
                kind,
            })?;
        let id = res
            .reserve(interval, units)
            .map_err(|e| GaraError::Admission(e.to_string()))?;
        let h = self.handle();
        self.records.insert(
            h,
            Record::Slotted {
                domain: domain.to_string(),
                kind,
                id,
                cancelled: false,
            },
        );
        Ok(h)
    }

    /// Reserve end-to-end network bandwidth via hop-by-hop signalling,
    /// driving the mesh until the reservation completes.
    pub fn reserve_network(
        &mut self,
        rar: SignedRar,
        user_cert: Certificate,
    ) -> Result<GaraHandle, GaraError> {
        let spec = rar.res_spec().clone();
        let rar_id = spec.rar_id;
        let source = spec.source_domain.clone();
        self.mesh
            .submit_in(SimDuration::ZERO, &source, rar, user_cert);
        self.mesh.run_until_idle();
        let (_, completion) = self
            .mesh
            .reservation_outcome(&source, rar_id)
            .ok_or(GaraError::NoCompletion(rar_id))?;
        let result = match completion {
            Completion::Reservation { result, .. } => result.clone(),
            _ => return Err(GaraError::NoCompletion(rar_id)),
        };
        let h = self.handle();
        self.records.insert(
            h,
            Record::Network {
                rar_id,
                result,
                cancelled: false,
            },
        );
        Ok(h)
    }

    /// Co-reserve network + CPU (Figures 5/6): reserve CPU slots in the
    /// destination domain, register the reservation with the destination
    /// broker's oracle, then request the network reservation referencing
    /// it. If the network request is denied, the CPU reservation is
    /// rolled back — all-or-nothing.
    pub fn co_reserve_network_cpu(
        &mut self,
        user: &UserIdentity,
        source_domain: &str,
        mut spec: ResSpec,
        cpu_slots: u64,
    ) -> Result<(GaraHandle, GaraHandle), GaraError> {
        let dest = spec.dest_domain.clone();
        let interval = spec.interval;
        let cpu_handle = self.reserve_cpu(&dest, cpu_slots, interval)?;

        // Name the coupled reservation so the destination's policy can
        // check `HasValidCPUResv(RAR)`.
        let cpu_resv_id = self.next_cpu_resv_id;
        self.next_cpu_resv_id += 1;
        self.mesh.node_mut(&dest).add_cpu_reservation(cpu_resv_id);
        spec.cpu_reservation_id = Some(cpu_resv_id);

        let rar = user.sign_request(spec, self.mesh.node(source_domain));
        let net_handle = self.reserve_network(rar, user.cert.clone())?;
        if !self.status(net_handle)?.is_granted() {
            self.cancel(cpu_handle)?;
        }
        Ok((net_handle, cpu_handle))
    }

    /// The RAR id behind a network reservation handle.
    pub fn network_rar_id(&self, h: GaraHandle) -> Option<RarId> {
        match self.records.get(&h) {
            Some(Record::Network { rar_id, .. }) => Some(*rar_id),
            _ => None,
        }
    }

    /// Modify a granted network reservation's rate (GARA lets
    /// applications "manipulate reservations … in uniform ways"). The
    /// modification is make-before-break: a fresh end-to-end request for
    /// the new rate is signalled first; only if it grants is the old
    /// reservation torn down. On denial the old reservation stands and
    /// the error carries the denial reason.
    pub fn modify_network(
        &mut self,
        h: GaraHandle,
        user: &UserIdentity,
        new_rate_bps: u64,
    ) -> Result<GaraHandle, GaraError> {
        let (old_result, _old_id) = match self.records.get(&h) {
            Some(Record::Network {
                result,
                rar_id,
                cancelled: false,
            }) => (result.clone(), *rar_id),
            Some(_) => return Err(GaraError::UnknownHandle(h)),
            None => return Err(GaraError::UnknownHandle(h)),
        };
        let approval = match old_result {
            Ok(a) => a,
            Err(_) => return Err(GaraError::UnknownHandle(h)),
        };
        let source = approval
            .entries
            .last()
            .map(|e| e.domain.clone())
            .ok_or(GaraError::UnknownHandle(h))?;

        // Rebuild the spec with the new rate under a fresh RAR id.
        let new_id = RarId(self.next_cpu_resv_id * 1_000_003 + h.0);
        let mut spec = ResSpec::new(
            new_id,
            user.dn.clone(),
            &source,
            &approval
                .entries
                .first()
                .map(|e| e.domain.clone())
                .unwrap_or_default(),
            h.0, // keep the flow id stable across the modification
            new_rate_bps,
            Interval::new(qos_crypto::Timestamp(0), qos_crypto::Timestamp(0)),
        );
        // Inherit interval from the original reservation's broker record.
        if let Some((interval, _, _)) = self
            .mesh
            .node(&source)
            .core()
            .info(qos_core::node::rar_id_to_reservation(approval.rar_id))
        {
            spec.interval = interval;
        }
        let rar = user.sign_request(spec, self.mesh.node(&source));
        let new_handle = self.reserve_network(rar, user.cert.clone())?;
        if self.status(new_handle)?.is_granted() {
            self.cancel(h)?;
            Ok(new_handle)
        } else {
            let status = self.status(new_handle)?;
            // Forget the failed attempt; the old reservation stands.
            self.records.remove(&new_handle);
            match status {
                GaraStatus::Denied { domain, reason } => Err(GaraError::Admission(format!(
                    "modification denied by {domain}: {reason}"
                ))),
                _ => Err(GaraError::NoCompletion(new_id)),
            }
        }
    }

    /// Query a reservation.
    pub fn status(&self, h: GaraHandle) -> Result<GaraStatus, GaraError> {
        match self.records.get(&h) {
            None => Err(GaraError::UnknownHandle(h)),
            Some(Record::Network {
                result, cancelled, ..
            }) => Ok(if *cancelled {
                GaraStatus::Cancelled
            } else {
                match result {
                    Ok(a) => GaraStatus::Granted {
                        approval: Some(a.clone()),
                    },
                    Err(d) => GaraStatus::Denied {
                        domain: d.domain.clone(),
                        reason: d.reason.clone(),
                    },
                }
            }),
            Some(Record::Slotted { cancelled, .. }) => Ok(if *cancelled {
                GaraStatus::Cancelled
            } else {
                GaraStatus::Granted { approval: None }
            }),
        }
    }

    /// Cancel a reservation (idempotent). Network cancellations tear the
    /// reservation down end-to-end: every domain on the path releases
    /// its capacity and re-dimensions its edge routers.
    pub fn cancel(&mut self, h: GaraHandle) -> Result<(), GaraError> {
        match self.records.get_mut(&h) {
            None => Err(GaraError::UnknownHandle(h)),
            Some(Record::Network {
                rar_id,
                result,
                cancelled,
            }) => {
                if !*cancelled {
                    if let Ok(approval) = result {
                        // The approval's last entry is the source domain.
                        if let Some(source) = approval.entries.last().map(|e| e.domain.clone()) {
                            let rar_id = *rar_id;
                            self.mesh.release_in(SimDuration::ZERO, &source, rar_id);
                            self.mesh.run_until_idle();
                        }
                    }
                    *cancelled = true;
                }
                Ok(())
            }
            Some(Record::Slotted {
                domain,
                kind,
                id,
                cancelled,
            }) => {
                if !*cancelled {
                    if let Some(res) = self.slotted.get_mut(&(domain.clone(), *kind)) {
                        let _ = res.cancel(*id);
                    }
                    *cancelled = true;
                }
                Ok(())
            }
        }
    }

    /// Available units of a slotted resource at `t`.
    pub fn available(
        &self,
        domain: &str,
        kind: ResourceKind,
        t: qos_crypto::Timestamp,
    ) -> Option<u64> {
        self.slotted
            .get(&(domain.to_string(), kind))
            .map(|r| r.available_at(t))
    }
}
