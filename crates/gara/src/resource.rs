//! Non-network resource managers.
//!
//! GARA "provides advance reservations and end-to-end management for
//! quality of service on different types of resources, including
//! networks, CPUs, and disks". Networks are handled by the broker mesh;
//! CPUs and disks get slot/throughput managers here, built on the same
//! advance-reservation table the brokers use — one uniform two-phase
//! admission model across all resource types.

use qos_broker::{AdmissionError, Interval, ReservationId, ReservationTable};
use std::collections::HashMap;

/// The kinds of resources GARA manages uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// End-to-end network bandwidth (delegated to the broker mesh).
    Network,
    /// CPU slots on a compute resource.
    Cpu,
    /// Disk bandwidth on a storage resource.
    Disk,
}

/// A per-domain manager for a slot- or rate-based resource.
///
/// Units are opaque: CPU managers count slots, disk managers count
/// bytes/s. The underlying [`ReservationTable`] provides advance
/// reservations and hold/commit/release.
#[derive(Debug)]
pub struct SlottedResource {
    kind: ResourceKind,
    table: ReservationTable,
    next_id: u64,
    records: HashMap<ReservationId, Interval>,
}

impl SlottedResource {
    /// A resource with `capacity` units.
    pub fn new(kind: ResourceKind, capacity: u64) -> Self {
        Self {
            kind,
            table: ReservationTable::new(capacity),
            next_id: 1,
            records: HashMap::new(),
        }
    }

    /// The resource kind.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// Total capacity in resource units.
    pub fn capacity(&self) -> u64 {
        self.table.capacity_bps()
    }

    /// Reserve `units` over `interval`; immediately committed (local
    /// resources need no end-to-end agreement).
    pub fn reserve(
        &mut self,
        interval: Interval,
        units: u64,
    ) -> Result<ReservationId, AdmissionError> {
        let id = ReservationId(self.next_id);
        self.next_id += 1;
        self.table.hold(id, interval, units)?;
        self.table.commit(id)?;
        self.records.insert(id, interval);
        Ok(id)
    }

    /// Cancel a reservation.
    pub fn cancel(&mut self, id: ReservationId) -> Result<(), AdmissionError> {
        self.records.remove(&id);
        self.table.release(id)
    }

    /// Is `id` active (committed and inside its interval) at `t`?
    pub fn active_at(&self, id: ReservationId, t: qos_crypto::Timestamp) -> bool {
        self.table.active_at(id, t)
    }

    /// Units available at `t`.
    pub fn available_at(&self, t: qos_crypto::Timestamp) -> u64 {
        self.table.available_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_crypto::Timestamp;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Timestamp(a), Timestamp(b))
    }

    #[test]
    fn cpu_slots_reserve_and_cancel() {
        let mut cpu = SlottedResource::new(ResourceKind::Cpu, 16);
        let id = cpu.reserve(iv(0, 100), 8).unwrap();
        assert!(cpu.active_at(id, Timestamp(50)));
        assert_eq!(cpu.available_at(Timestamp(50)), 8);
        // A 10-slot job doesn't fit.
        assert!(cpu.reserve(iv(0, 100), 10).is_err());
        cpu.cancel(id).unwrap();
        assert!(cpu.reserve(iv(0, 100), 10).is_ok());
    }

    #[test]
    fn advance_reservations_across_time() {
        let mut disk = SlottedResource::new(ResourceKind::Disk, 100);
        disk.reserve(iv(100, 200), 100).unwrap();
        assert!(disk.reserve(iv(150, 250), 1).is_err());
        assert!(disk.reserve(iv(200, 300), 100).is_ok());
    }

    #[test]
    fn ids_are_unique() {
        let mut cpu = SlottedResource::new(ResourceKind::Cpu, 4);
        let a = cpu.reserve(iv(0, 10), 1).unwrap();
        let b = cpu.reserve(iv(0, 10), 1).unwrap();
        assert_ne!(a, b);
    }
}
