//! Durable-ledger replay equivalence (DESIGN.md §D13): a broker
//! recovered from a mid-run snapshot plus the WAL tail must reach
//! exactly the state of (a) the live broker that wrote the ledger and
//! (b) a broker recovered by replaying the full WAL with no snapshot.
//! Equality is judged by `ledger_digest()` — the SHA-256 over the
//! canonical reservation + invoice export that the kill -9 recovery
//! gate compares across processes.

use qos_broker::{BrokerCore, Interval, Invoice, PathSegment, ReservationId, Sla, Sls};
use qos_crypto::{CertificateAuthority, DistinguishedName, KeyPair, Timestamp, Validity};
use qos_storage::{FileStore, FileStoreOptions, LedgerStore, Recovered, SharedStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const MBPS: u64 = 1_000_000;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "qos-ledger-replay-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn sla(up: &str, down: &str, rate: u64) -> Sla {
    let mut ca = CertificateAuthority::new(
        DistinguishedName::authority("RootCA"),
        KeyPair::from_seed(b"ca"),
    );
    let root = ca.self_signed();
    let peer = ca.issue_identity(
        DistinguishedName::broker(up),
        KeyPair::from_seed(up.as_bytes()).public(),
        Validity::unbounded(),
    );
    Sla {
        upstream: up.into(),
        downstream: down.into(),
        sls: Sls::strict(rate),
        peer_cert: peer,
        ca_cert: root,
        price_per_mbps_sec: 1,
    }
}

/// A transit broker sized so the deterministic workload produces a mix
/// of approvals and denials (denials journal `Deny` records, which must
/// replay as no-ops).
fn broker() -> BrokerCore {
    let b = BrokerCore::new("domain-b", 300 * MBPS);
    b.add_ingress_sla(sla("domain-a", "domain-b", 200 * MBPS));
    b.add_egress_sla(sla("domain-b", "domain-c", 150 * MBPS));
    b
}

fn segment() -> PathSegment {
    PathSegment {
        ingress_peer: Some("domain-a".into()),
        egress_peer: Some("domain-c".into()),
    }
}

/// Deterministic workload slice: overlapping holds at varied rates, a
/// sprinkling of commits, releases, and invoices.
fn workload(core: &BrokerCore, ids: std::ops::Range<u64>) {
    for i in ids {
        let id = ReservationId(i);
        let iv = Interval::new(Timestamp(i % 7), Timestamp(50 + i % 13));
        let rate = (1 + i % 40) * MBPS;
        if core.hold(id, iv, rate, segment()).is_ok() {
            if i % 2 == 0 {
                let _ = core.commit(id);
            }
            if i % 3 == 0 {
                let _ = core.release(id);
            }
            if i % 5 == 0 {
                core.record_invoice(Invoice {
                    payer: "domain-a".into(),
                    payee: "domain-b".into(),
                    reservation: i,
                    amount: 10 + i,
                });
            }
        }
    }
}

fn opts() -> FileStoreOptions {
    FileStoreOptions {
        flush_interval: Duration::from_micros(200),
        // Small segments so the run spans several files and the
        // snapshot actually prunes some.
        segment_bytes: 512,
        ..FileStoreOptions::default()
    }
}

/// Rebuild a broker from recovered ledger state, the way `BbNode::
/// recover_from` does it: snapshot first, then every record above the
/// snapshot's sequence.
fn replayed(recovered: &Recovered) -> BrokerCore {
    let core = broker();
    let mut skip = 0;
    if let Some(snapshot) = &recovered.snapshot {
        skip = snapshot.seq;
        core.restore_snapshot(snapshot);
    }
    for (seq, record) in &recovered.records {
        if *seq > skip {
            core.restore_record(record);
        }
    }
    core
}

#[test]
fn snapshot_plus_tail_equals_full_replay() {
    let dir_snap = tempdir("snap");
    let dir_full = tempdir("full");

    // Run 1: journal the workload, cut a snapshot mid-way, continue.
    let live_digest = {
        let core = broker();
        let store: SharedStore = Arc::new(FileStore::open(&dir_snap, opts()).unwrap());
        core.set_store(Arc::clone(&store));
        workload(&core, 0..30);
        let snap = core.export_snapshot(store.next_seq() - 1);
        store.write_snapshot(&snap);
        workload(&core, 30..60);
        core.ledger_digest()
    };

    // Run 2: the identical workload, never snapshotting.
    let full_digest = {
        let core = broker();
        let store: SharedStore = Arc::new(FileStore::open(&dir_full, opts()).unwrap());
        core.set_store(Arc::clone(&store));
        workload(&core, 0..60);
        core.ledger_digest()
    };
    assert_eq!(
        live_digest, full_digest,
        "identical workloads must agree before any recovery"
    );

    // Recover run 1: snapshot + tail. The snapshot must have pruned the
    // covered segments, so no surviving record is at or below its seq.
    let store = FileStore::open(&dir_snap, opts()).unwrap();
    let rec_snap = store.take_recovered();
    drop(store);
    let snap_seq = rec_snap
        .snapshot
        .as_ref()
        .expect("run 1 wrote a snapshot")
        .seq;
    assert!(snap_seq > 0);
    assert!(
        rec_snap.records.iter().all(|(seq, _)| *seq > snap_seq),
        "snapshot must prune WAL segments it covers"
    );

    // Recover run 2: full WAL replay, no snapshot.
    let store = FileStore::open(&dir_full, opts()).unwrap();
    let rec_full = store.take_recovered();
    drop(store);
    assert!(rec_full.snapshot.is_none());
    assert!(!rec_full.records.is_empty());

    assert_eq!(
        replayed(&rec_snap).ledger_digest(),
        live_digest,
        "snapshot + tail replay must reproduce the live state"
    );
    assert_eq!(
        replayed(&rec_full).ledger_digest(),
        live_digest,
        "full-WAL replay must reproduce the live state"
    );

    let _ = std::fs::remove_dir_all(&dir_snap);
    let _ = std::fs::remove_dir_all(&dir_full);
}
