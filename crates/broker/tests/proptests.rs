//! Property tests for admission control: the never-oversubscribe
//! invariant under arbitrary hold/commit/release interleavings.

use proptest::prelude::*;
use qos_broker::{Interval, ResState, ReservationId, ReservationTable};
use qos_crypto::Timestamp;

#[derive(Debug, Clone)]
enum Op {
    Hold { start: u64, len: u64, rate: u64 },
    Commit(usize),
    Release(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..1000, 1u64..200, 1u64..60).prop_map(|(start, len, rate)| Op::Hold {
                start,
                len,
                rate
            }),
            (0usize..64).prop_map(Op::Commit),
            (0usize..64).prop_map(Op::Release),
        ],
        1..120,
    )
}

proptest! {
    /// At no instant does the sum of active reservations exceed capacity,
    /// under any interleaving of holds, commits, and releases.
    #[test]
    fn never_oversubscribed(ops in arb_ops()) {
        const CAPACITY: u64 = 100;
        let mut table = ReservationTable::new(CAPACITY);
        let mut ids: Vec<ReservationId> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Hold { start, len, rate } => {
                    next += 1;
                    let id = ReservationId(next);
                    if table
                        .hold(id, Interval::starting_at(Timestamp(start), len), rate)
                        .is_ok()
                    {
                        ids.push(id);
                    }
                }
                Op::Commit(i) => {
                    if let Some(id) = ids.get(i) {
                        let _ = table.commit(*id);
                    }
                }
                Op::Release(i) => {
                    if let Some(id) = ids.get(i) {
                        let _ = table.release(*id);
                    }
                }
            }
            // Sweep the whole horizon: usage must respect capacity at
            // every breakpoint.
            for t in (0..1300).step_by(13) {
                prop_assert!(
                    table.usage_at(Timestamp(t)) <= CAPACITY,
                    "oversubscribed at t={t}"
                );
            }
        }
    }

    /// Released reservations stop counting; committed ones keep counting.
    #[test]
    fn release_frees_commit_retains(rate in 1u64..100, start in 0u64..100, len in 1u64..100) {
        let mut t = ReservationTable::new(100);
        let id = ReservationId(1);
        t.hold(id, Interval::starting_at(Timestamp(start), len), rate).unwrap();
        let mid = Timestamp(start + len / 2);
        prop_assert_eq!(t.usage_at(mid), rate);
        t.commit(id).unwrap();
        prop_assert_eq!(t.usage_at(mid), rate);
        prop_assert_eq!(t.state(id), Some(ResState::Committed));
        t.release(id).unwrap();
        prop_assert_eq!(t.usage_at(mid), 0);
    }

    /// `peak_usage` over an interval equals the max of `usage_at` sampled
    /// at every breakpoint inside it.
    #[test]
    fn peak_usage_matches_pointwise_max(
        entries in proptest::collection::vec((0u64..200, 1u64..100, 1u64..1000), 1..20),
    ) {
        let mut t = ReservationTable::new(u64::MAX);
        for (i, (start, len, rate)) in entries.iter().enumerate() {
            t.hold(
                ReservationId(i as u64),
                Interval::starting_at(Timestamp(*start), *len),
                *rate,
            )
            .unwrap();
        }
        let window = Interval::new(Timestamp(0), Timestamp(400));
        let peak = t.peak_usage(&window);
        let pointwise = (0..400).map(|x| t.usage_at(Timestamp(x))).max().unwrap();
        prop_assert_eq!(peak, pointwise);
    }
}
