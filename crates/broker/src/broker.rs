//! The bandwidth broker's resource-management core.
//!
//! One [`BrokerCore`] per administrative domain. It owns three classes of
//! reservation bookkeeping, all with advance-reservation semantics and a
//! two-phase (hold → commit / release) life cycle:
//!
//! * **local capacity** — the domain's internal EF capacity;
//! * **per-ingress SLAs** — how much EF the domain accepts from each
//!   upstream peer (what the ingress aggregate policer is dimensioned
//!   from);
//! * **per-egress SLAs** — how much EF the domain may inject into each
//!   downstream peer.
//!
//! The signalling protocol (crate `qos-core`) drives this core: it admits
//! on request arrival, commits when the end-to-end approval propagates
//! back, and releases on denial.
//!
//! `BrokerCore` is a cheap `Clone` handle onto a shared [`SlaBook`]
//! (DESIGN.md §D11): N admission shards of the same domain each hold a
//! clone and admit concurrently against **one** striped ledger, so the
//! committed bandwidth after a run is independent of the shard count.

use crate::billing::Invoice;
use crate::reservations::{AdmissionError, Interval, ResState, ReservationId};
use crate::shard::SlaBook;
use crate::sla::Sla;
use qos_crypto::Timestamp;
use qos_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Where a reservation's traffic enters and leaves the domain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathSegment {
    /// Upstream peer domain (None when this is the source domain).
    pub ingress_peer: Option<String>,
    /// Downstream peer domain (None when this is the destination domain).
    pub egress_peer: Option<String>,
}

/// Why the broker refused a reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The domain-internal capacity check failed.
    Local(AdmissionError),
    /// The check against an SLA failed.
    Sla {
        /// Which peer's agreement.
        peer: String,
        /// Underlying admission failure.
        source: AdmissionError,
    },
    /// No SLA exists with the named peer — the request cannot even be
    /// considered ("a specific contract between peered domains comes into
    /// place").
    NoSla {
        /// The unknown peer.
        peer: String,
    },
    /// Unknown reservation id.
    Unknown(ReservationId),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Local(e) => write!(f, "local capacity: {e}"),
            BrokerError::Sla { peer, source } => write!(f, "SLA with {peer}: {source}"),
            BrokerError::NoSla { peer } => write!(f, "no SLA with peer domain {peer}"),
            BrokerError::Unknown(id) => write!(f, "unknown reservation {id:?}"),
        }
    }
}

impl std::error::Error for BrokerError {}

/// A domain's bandwidth-broker resource core: a shareable handle onto
/// the domain's [`SlaBook`]. Clones admit against the same ledger.
#[derive(Clone)]
pub struct BrokerCore {
    book: Arc<SlaBook>,
}

impl BrokerCore {
    /// A broker managing `local_capacity_bps` of internal EF capacity.
    pub fn new(domain: &str, local_capacity_bps: u64) -> Self {
        Self {
            book: Arc::new(SlaBook::new(domain, local_capacity_bps)),
        }
    }

    /// Route this core's reservation life-cycle counters into
    /// `telemetry`: `broker_holds_total{domain,decision=held|refused}`,
    /// `broker_commits_total{domain}`, `broker_releases_total{domain}`.
    pub fn set_telemetry(&self, telemetry: &Telemetry) {
        self.book.set_telemetry(telemetry);
    }

    /// The domain this broker controls.
    pub fn domain(&self) -> &str {
        self.book.domain()
    }

    /// Register the SLA under which `sla.upstream` sends traffic *into*
    /// this domain.
    pub fn add_ingress_sla(&self, sla: Sla) {
        self.book.add_ingress_sla(sla);
    }

    /// Register the SLA under which this domain sends traffic into
    /// `sla.downstream`.
    pub fn add_egress_sla(&self, sla: Sla) {
        self.book.add_egress_sla(sla);
    }

    /// The SLA with the upstream peer `peer`, if any.
    pub fn ingress_sla(&self, peer: &str) -> Option<Sla> {
        self.book.ingress_sla(peer)
    }

    /// The SLA with the downstream peer `peer`, if any.
    pub fn egress_sla(&self, peer: &str) -> Option<Sla> {
        self.book.egress_sla(peer)
    }

    /// Append an invoice to the billing ledger.
    pub fn record_invoice(&self, invoice: Invoice) {
        self.book.record_invoice(invoice);
    }

    /// All invoices recorded so far, in order.
    pub fn invoices(&self) -> Vec<Invoice> {
        self.book.invoices()
    }

    /// Net billing balance per party (payees positive).
    pub fn balances(&self) -> BTreeMap<String, i128> {
        self.book.balances()
    }

    /// Hold capacity for a reservation crossing this domain along
    /// `segment`. All three checks (ingress SLA, local, egress SLA) must
    /// pass; partial holds are rolled back.
    pub fn hold(
        &self,
        id: ReservationId,
        interval: Interval,
        rate_bps: u64,
        segment: PathSegment,
    ) -> Result<(), BrokerError> {
        self.book.hold(id, interval, rate_bps, segment)
    }

    /// Commit a held reservation (end-to-end approval arrived).
    pub fn commit(&self, id: ReservationId) -> Result<(), BrokerError> {
        self.book.commit(id)
    }

    /// Release a reservation (denial downstream, cancellation, or expiry).
    pub fn release(&self, id: ReservationId) -> Result<(), BrokerError> {
        self.book.release(id)
    }

    /// The reservation's current state (from the local table).
    pub fn state(&self, id: ReservationId) -> Option<ResState> {
        self.book.state(id)
    }

    /// Reservation parameters.
    pub fn info(&self, id: ReservationId) -> Option<(Interval, u64, PathSegment)> {
        self.book.info(id)
    }

    /// Unreserved local capacity at `t` — the `Avail_BW` a policy file
    /// compares against.
    pub fn available_bw_at(&self, t: Timestamp) -> u64 {
        self.book.available_bw_at(t)
    }

    /// Sum of active reservations entering from `peer` at `t`: the
    /// profile the ingress aggregate policer should be dimensioned to.
    pub fn admitted_ingress_aggregate(&self, peer: &str, t: Timestamp) -> u64 {
        self.book.admitted_ingress_aggregate(peer, t)
    }

    /// Is `id` held/committed and active at `t`?
    pub fn reservation_active_at(&self, id: ReservationId, t: Timestamp) -> bool {
        self.book.reservation_active_at(id, t)
    }

    // --- Durable-ledger surface (DESIGN.md §D13) --------------------

    /// Attach the durable ledger store (after recovery replay).
    pub fn set_store(&self, store: qos_storage::SharedStore) {
        self.book.set_store(store);
    }

    /// The attached ledger store, if any.
    pub fn store(&self) -> Option<qos_storage::SharedStore> {
        self.book.store()
    }

    /// Replay one recovered WAL record (idempotent, forgiving).
    pub fn restore_record(&self, record: &qos_storage::LedgerRecord) {
        self.book.restore_record(record);
    }

    /// Restore reservations + invoices from a recovered snapshot.
    pub fn restore_snapshot(&self, snapshot: &qos_storage::LedgerSnapshot) {
        self.book.restore_snapshot(snapshot);
    }

    /// Export this layer's contribution to a snapshot captured at WAL
    /// sequence `seq`.
    pub fn export_snapshot(&self, seq: u64) -> qos_storage::LedgerSnapshot {
        self.book.export_snapshot(seq)
    }

    /// Canonical digest of the active reservation set + invoices (what
    /// the kill -9 recovery gate compares).
    pub fn ledger_digest(&self) -> [u8; 32] {
        self.book.ledger_digest()
    }

    /// `(active, committed, invoices, committed_bps_at_t)` summary.
    pub fn ledger_summary(&self, t: Timestamp) -> (u64, u64, u64, u64) {
        self.book.ledger_summary(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sla::Sls;
    use qos_crypto::{CertificateAuthority, DistinguishedName, KeyPair, Validity};

    const MBPS: u64 = 1_000_000;

    fn sla(up: &str, down: &str, rate: u64) -> Sla {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("RootCA"),
            KeyPair::from_seed(b"ca"),
        );
        let root = ca.self_signed();
        let peer = ca.issue_identity(
            DistinguishedName::broker(up),
            KeyPair::from_seed(up.as_bytes()).public(),
            Validity::unbounded(),
        );
        Sla {
            upstream: up.into(),
            downstream: down.into(),
            sls: Sls::strict(rate),
            peer_cert: peer,
            ca_cert: root,
            price_per_mbps_sec: 1,
        }
    }

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Timestamp(a), Timestamp(b))
    }

    fn transit_broker() -> BrokerCore {
        // Domain B: accepts ≤20 Mb/s from A, sends ≤15 Mb/s to C,
        // 100 Mb/s internal.
        let b = BrokerCore::new("domain-b", 100 * MBPS);
        b.add_ingress_sla(sla("domain-a", "domain-b", 20 * MBPS));
        b.add_egress_sla(sla("domain-b", "domain-c", 15 * MBPS));
        b
    }

    fn transit_segment() -> PathSegment {
        PathSegment {
            ingress_peer: Some("domain-a".into()),
            egress_peer: Some("domain-c".into()),
        }
    }

    #[test]
    fn admits_within_all_three_limits() {
        let b = transit_broker();
        assert!(b
            .hold(ReservationId(1), iv(0, 100), 10 * MBPS, transit_segment())
            .is_ok());
        assert_eq!(b.state(ReservationId(1)), Some(ResState::Held));
    }

    #[test]
    fn egress_sla_is_the_binding_constraint() {
        let b = transit_broker();
        // 16 Mb/s fits the 20 Mb/s ingress SLA and local capacity but not
        // the 15 Mb/s egress SLA.
        let err = b
            .hold(ReservationId(1), iv(0, 100), 16 * MBPS, transit_segment())
            .unwrap_err();
        assert!(
            matches!(err, BrokerError::Sla { ref peer, .. } if peer == "domain-c"),
            "{err}"
        );
        // And the failed attempt must not leak held capacity.
        assert!(b
            .hold(ReservationId(2), iv(0, 100), 15 * MBPS, transit_segment())
            .is_ok());
    }

    #[test]
    fn unknown_peer_is_rejected() {
        let b = transit_broker();
        let err = b
            .hold(
                ReservationId(1),
                iv(0, 100),
                MBPS,
                PathSegment {
                    ingress_peer: Some("domain-x".into()),
                    egress_peer: None,
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            BrokerError::NoSla {
                peer: "domain-x".into()
            }
        );
    }

    #[test]
    fn source_domain_needs_no_ingress_sla() {
        let b = transit_broker();
        assert!(b
            .hold(
                ReservationId(1),
                iv(0, 100),
                10 * MBPS,
                PathSegment {
                    ingress_peer: None,
                    egress_peer: Some("domain-c".into()),
                },
            )
            .is_ok());
    }

    #[test]
    fn release_rolls_back_everywhere() {
        let b = transit_broker();
        b.hold(ReservationId(1), iv(0, 100), 15 * MBPS, transit_segment())
            .unwrap();
        // Egress SLA is now full.
        assert!(b
            .hold(ReservationId(2), iv(0, 100), MBPS, transit_segment())
            .is_err());
        b.release(ReservationId(1)).unwrap();
        assert!(b
            .hold(ReservationId(2), iv(0, 100), 15 * MBPS, transit_segment())
            .is_ok());
    }

    #[test]
    fn ingress_aggregate_tracks_active_reservations() {
        let b = transit_broker();
        b.hold(ReservationId(1), iv(0, 100), 10 * MBPS, transit_segment())
            .unwrap();
        b.hold(ReservationId(2), iv(50, 150), 5 * MBPS, transit_segment())
            .unwrap();
        assert_eq!(
            b.admitted_ingress_aggregate("domain-a", Timestamp(10)),
            10 * MBPS
        );
        assert_eq!(
            b.admitted_ingress_aggregate("domain-a", Timestamp(60)),
            15 * MBPS
        );
        assert_eq!(
            b.admitted_ingress_aggregate("domain-a", Timestamp(120)),
            5 * MBPS
        );
        assert_eq!(b.admitted_ingress_aggregate("nobody", Timestamp(10)), 0);
    }

    #[test]
    fn available_bw_reflects_holds() {
        let b = transit_broker();
        assert_eq!(b.available_bw_at(Timestamp(10)), 100 * MBPS);
        b.hold(ReservationId(1), iv(0, 100), 10 * MBPS, transit_segment())
            .unwrap();
        assert_eq!(b.available_bw_at(Timestamp(10)), 90 * MBPS);
        assert_eq!(b.available_bw_at(Timestamp(200)), 100 * MBPS);
    }

    #[test]
    fn commit_then_release_lifecycle() {
        let b = transit_broker();
        b.hold(ReservationId(1), iv(0, 100), MBPS, transit_segment())
            .unwrap();
        b.commit(ReservationId(1)).unwrap();
        assert_eq!(b.state(ReservationId(1)), Some(ResState::Committed));
        assert!(b.reservation_active_at(ReservationId(1), Timestamp(50)));
        b.release(ReservationId(1)).unwrap();
        assert!(!b.reservation_active_at(ReservationId(1), Timestamp(50)));
        assert!(matches!(
            b.commit(ReservationId(9)),
            Err(BrokerError::Unknown(_))
        ));
    }

    #[test]
    fn clones_share_one_ledger() {
        let b = transit_broker();
        let shard = b.clone();
        shard
            .hold(ReservationId(1), iv(0, 100), 10 * MBPS, transit_segment())
            .unwrap();
        // The hold made through one handle is visible through the other.
        assert_eq!(b.available_bw_at(Timestamp(10)), 90 * MBPS);
        b.commit(ReservationId(1)).unwrap();
        assert_eq!(shard.state(ReservationId(1)), Some(ResState::Committed));
    }
}
