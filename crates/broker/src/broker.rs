//! The bandwidth broker's resource-management core.
//!
//! One [`BrokerCore`] per administrative domain. It owns three classes of
//! reservation bookkeeping, all with advance-reservation semantics and a
//! two-phase (hold → commit / release) life cycle:
//!
//! * **local capacity** — the domain's internal EF capacity;
//! * **per-ingress SLAs** — how much EF the domain accepts from each
//!   upstream peer (what the ingress aggregate policer is dimensioned
//!   from);
//! * **per-egress SLAs** — how much EF the domain may inject into each
//!   downstream peer.
//!
//! The signalling protocol (crate `qos-core`) drives this core: it admits
//! on request arrival, commits when the end-to-end approval propagates
//! back, and releases on denial.

use crate::billing::BillingLedger;
use crate::reservations::{AdmissionError, Interval, ResState, ReservationId, ReservationTable};
use crate::sla::Sla;
use qos_crypto::Timestamp;
use qos_telemetry::{Counter, Telemetry};
use std::collections::HashMap;
use std::fmt;

/// Where a reservation's traffic enters and leaves the domain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathSegment {
    /// Upstream peer domain (None when this is the source domain).
    pub ingress_peer: Option<String>,
    /// Downstream peer domain (None when this is the destination domain).
    pub egress_peer: Option<String>,
}

/// Why the broker refused a reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The domain-internal capacity check failed.
    Local(AdmissionError),
    /// The check against an SLA failed.
    Sla {
        /// Which peer's agreement.
        peer: String,
        /// Underlying admission failure.
        source: AdmissionError,
    },
    /// No SLA exists with the named peer — the request cannot even be
    /// considered ("a specific contract between peered domains comes into
    /// place").
    NoSla {
        /// The unknown peer.
        peer: String,
    },
    /// Unknown reservation id.
    Unknown(ReservationId),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Local(e) => write!(f, "local capacity: {e}"),
            BrokerError::Sla { peer, source } => write!(f, "SLA with {peer}: {source}"),
            BrokerError::NoSla { peer } => write!(f, "no SLA with peer domain {peer}"),
            BrokerError::Unknown(id) => write!(f, "unknown reservation {id:?}"),
        }
    }
}

impl std::error::Error for BrokerError {}

#[derive(Debug, Clone)]
struct ResMeta {
    interval: Interval,
    rate_bps: u64,
    segment: PathSegment,
}

/// Life-cycle counters for one resource core (detached no-ops by
/// default).
#[derive(Default)]
struct CoreCounters {
    holds_ok: Counter,
    holds_refused: Counter,
    commits: Counter,
    releases: Counter,
}

/// A domain's bandwidth-broker resource core.
pub struct BrokerCore {
    domain: String,
    local: ReservationTable,
    ingress: HashMap<String, ReservationTable>,
    egress: HashMap<String, ReservationTable>,
    slas_in: HashMap<String, Sla>,
    slas_out: HashMap<String, Sla>,
    meta: HashMap<ReservationId, ResMeta>,
    billing: BillingLedger,
    counters: CoreCounters,
}

impl BrokerCore {
    /// A broker managing `local_capacity_bps` of internal EF capacity.
    pub fn new(domain: &str, local_capacity_bps: u64) -> Self {
        Self {
            domain: domain.to_string(),
            local: ReservationTable::new(local_capacity_bps),
            ingress: HashMap::new(),
            egress: HashMap::new(),
            slas_in: HashMap::new(),
            slas_out: HashMap::new(),
            meta: HashMap::new(),
            billing: BillingLedger::new(),
            counters: CoreCounters::default(),
        }
    }

    /// Route this core's reservation life-cycle counters into
    /// `telemetry`: `broker_holds_total{domain,decision=held|refused}`,
    /// `broker_commits_total{domain}`, `broker_releases_total{domain}`.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        let d = self.domain.clone();
        self.counters = CoreCounters {
            holds_ok: telemetry.counter(
                "broker_holds_total",
                "Two-phase capacity holds by outcome",
                &[("domain", &d), ("decision", "held")],
            ),
            holds_refused: telemetry.counter(
                "broker_holds_total",
                "Two-phase capacity holds by outcome",
                &[("domain", &d), ("decision", "refused")],
            ),
            commits: telemetry.counter(
                "broker_commits_total",
                "Held reservations committed after end-to-end approval",
                &[("domain", &d)],
            ),
            releases: telemetry.counter(
                "broker_releases_total",
                "Reservations released (denial, cancellation, or expiry)",
                &[("domain", &d)],
            ),
        };
    }

    /// The domain this broker controls.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// Register the SLA under which `sla.upstream` sends traffic *into*
    /// this domain.
    pub fn add_ingress_sla(&mut self, sla: Sla) {
        debug_assert_eq!(sla.downstream, self.domain);
        self.ingress.insert(
            sla.upstream.clone(),
            ReservationTable::new(sla.sls.committed_rate_bps),
        );
        self.slas_in.insert(sla.upstream.clone(), sla);
    }

    /// Register the SLA under which this domain sends traffic into
    /// `sla.downstream`.
    pub fn add_egress_sla(&mut self, sla: Sla) {
        debug_assert_eq!(sla.upstream, self.domain);
        self.egress.insert(
            sla.downstream.clone(),
            ReservationTable::new(sla.sls.committed_rate_bps),
        );
        self.slas_out.insert(sla.downstream.clone(), sla);
    }

    /// The SLA with the upstream peer `peer`, if any.
    pub fn ingress_sla(&self, peer: &str) -> Option<&Sla> {
        self.slas_in.get(peer)
    }

    /// The SLA with the downstream peer `peer`, if any.
    pub fn egress_sla(&self, peer: &str) -> Option<&Sla> {
        self.slas_out.get(peer)
    }

    /// Billing ledger access.
    pub fn billing(&self) -> &BillingLedger {
        &self.billing
    }

    /// Mutable billing ledger access.
    pub fn billing_mut(&mut self) -> &mut BillingLedger {
        &mut self.billing
    }

    /// Hold capacity for a reservation crossing this domain along
    /// `segment`. All three checks (ingress SLA, local, egress SLA) must
    /// pass; partial holds are rolled back.
    pub fn hold(
        &mut self,
        id: ReservationId,
        interval: Interval,
        rate_bps: u64,
        segment: PathSegment,
    ) -> Result<(), BrokerError> {
        let result = self.hold_inner(id, interval, rate_bps, segment);
        match &result {
            Ok(()) => self.counters.holds_ok.inc(),
            Err(_) => self.counters.holds_refused.inc(),
        }
        result
    }

    fn hold_inner(
        &mut self,
        id: ReservationId,
        interval: Interval,
        rate_bps: u64,
        segment: PathSegment,
    ) -> Result<(), BrokerError> {
        // Ingress SLA check.
        if let Some(peer) = &segment.ingress_peer {
            let table = self
                .ingress
                .get_mut(peer)
                .ok_or_else(|| BrokerError::NoSla { peer: peer.clone() })?;
            table
                .hold(id, interval, rate_bps)
                .map_err(|source| BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                })?;
        }
        // Local capacity check.
        if let Err(e) = self.local.hold(id, interval, rate_bps) {
            if let Some(peer) = &segment.ingress_peer {
                let _ = self.ingress.get_mut(peer).unwrap().release(id);
            }
            return Err(BrokerError::Local(e));
        }
        // Egress SLA check.
        if let Some(peer) = &segment.egress_peer {
            let Some(table) = self.egress.get_mut(peer) else {
                self.rollback_partial(id, &segment, /*egress_held=*/ false);
                return Err(BrokerError::NoSla { peer: peer.clone() });
            };
            if let Err(source) = table.hold(id, interval, rate_bps) {
                self.rollback_partial(id, &segment, false);
                return Err(BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                });
            }
        }
        self.meta.insert(
            id,
            ResMeta {
                interval,
                rate_bps,
                segment,
            },
        );
        Ok(())
    }

    fn rollback_partial(&mut self, id: ReservationId, segment: &PathSegment, egress_held: bool) {
        let _ = self.local.release(id);
        if let Some(peer) = &segment.ingress_peer {
            if let Some(t) = self.ingress.get_mut(peer) {
                let _ = t.release(id);
            }
        }
        if egress_held {
            if let Some(peer) = &segment.egress_peer {
                if let Some(t) = self.egress.get_mut(peer) {
                    let _ = t.release(id);
                }
            }
        }
    }

    fn for_each_table(
        &mut self,
        id: ReservationId,
        f: impl Fn(&mut ReservationTable, ReservationId) -> Result<(), AdmissionError>,
    ) -> Result<(), BrokerError> {
        let meta = self.meta.get(&id).ok_or(BrokerError::Unknown(id))?.clone();
        f(&mut self.local, id).map_err(BrokerError::Local)?;
        if let Some(peer) = &meta.segment.ingress_peer {
            if let Some(t) = self.ingress.get_mut(peer) {
                f(t, id).map_err(|source| BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                })?;
            }
        }
        if let Some(peer) = &meta.segment.egress_peer {
            if let Some(t) = self.egress.get_mut(peer) {
                f(t, id).map_err(|source| BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                })?;
            }
        }
        Ok(())
    }

    /// Commit a held reservation (end-to-end approval arrived).
    pub fn commit(&mut self, id: ReservationId) -> Result<(), BrokerError> {
        let result = self.for_each_table(id, |t, id| t.commit(id));
        if result.is_ok() {
            self.counters.commits.inc();
        }
        result
    }

    /// Release a reservation (denial downstream, cancellation, or expiry).
    pub fn release(&mut self, id: ReservationId) -> Result<(), BrokerError> {
        let result = self.for_each_table(id, |t, id| t.release(id));
        if result.is_ok() {
            self.counters.releases.inc();
        }
        result
    }

    /// The reservation's current state (from the local table).
    pub fn state(&self, id: ReservationId) -> Option<ResState> {
        self.local.state(id)
    }

    /// Reservation parameters.
    pub fn info(&self, id: ReservationId) -> Option<(Interval, u64, PathSegment)> {
        self.meta
            .get(&id)
            .map(|m| (m.interval, m.rate_bps, m.segment.clone()))
    }

    /// Unreserved local capacity at `t` — the `Avail_BW` a policy file
    /// compares against.
    pub fn available_bw_at(&self, t: Timestamp) -> u64 {
        self.local.available_at(t)
    }

    /// Sum of active reservations entering from `peer` at `t`: the
    /// profile the ingress aggregate policer should be dimensioned to.
    pub fn admitted_ingress_aggregate(&self, peer: &str, t: Timestamp) -> u64 {
        self.ingress
            .get(peer)
            .map(|table| table.admitted_aggregate_at(t))
            .unwrap_or(0)
    }

    /// Is `id` held/committed and active at `t`?
    pub fn reservation_active_at(&self, id: ReservationId, t: Timestamp) -> bool {
        self.local.active_at(id, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sla::Sls;
    use qos_crypto::{CertificateAuthority, DistinguishedName, KeyPair, Validity};

    const MBPS: u64 = 1_000_000;

    fn sla(up: &str, down: &str, rate: u64) -> Sla {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("RootCA"),
            KeyPair::from_seed(b"ca"),
        );
        let root = ca.self_signed();
        let peer = ca.issue_identity(
            DistinguishedName::broker(up),
            KeyPair::from_seed(up.as_bytes()).public(),
            Validity::unbounded(),
        );
        Sla {
            upstream: up.into(),
            downstream: down.into(),
            sls: Sls::strict(rate),
            peer_cert: peer,
            ca_cert: root,
            price_per_mbps_sec: 1,
        }
    }

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Timestamp(a), Timestamp(b))
    }

    fn transit_broker() -> BrokerCore {
        // Domain B: accepts ≤20 Mb/s from A, sends ≤15 Mb/s to C,
        // 100 Mb/s internal.
        let mut b = BrokerCore::new("domain-b", 100 * MBPS);
        b.add_ingress_sla(sla("domain-a", "domain-b", 20 * MBPS));
        b.add_egress_sla(sla("domain-b", "domain-c", 15 * MBPS));
        b
    }

    fn transit_segment() -> PathSegment {
        PathSegment {
            ingress_peer: Some("domain-a".into()),
            egress_peer: Some("domain-c".into()),
        }
    }

    #[test]
    fn admits_within_all_three_limits() {
        let mut b = transit_broker();
        assert!(b
            .hold(ReservationId(1), iv(0, 100), 10 * MBPS, transit_segment())
            .is_ok());
        assert_eq!(b.state(ReservationId(1)), Some(ResState::Held));
    }

    #[test]
    fn egress_sla_is_the_binding_constraint() {
        let mut b = transit_broker();
        // 16 Mb/s fits the 20 Mb/s ingress SLA and local capacity but not
        // the 15 Mb/s egress SLA.
        let err = b
            .hold(ReservationId(1), iv(0, 100), 16 * MBPS, transit_segment())
            .unwrap_err();
        assert!(
            matches!(err, BrokerError::Sla { ref peer, .. } if peer == "domain-c"),
            "{err}"
        );
        // And the failed attempt must not leak held capacity.
        assert!(b
            .hold(ReservationId(2), iv(0, 100), 15 * MBPS, transit_segment())
            .is_ok());
    }

    #[test]
    fn unknown_peer_is_rejected() {
        let mut b = transit_broker();
        let err = b
            .hold(
                ReservationId(1),
                iv(0, 100),
                MBPS,
                PathSegment {
                    ingress_peer: Some("domain-x".into()),
                    egress_peer: None,
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            BrokerError::NoSla {
                peer: "domain-x".into()
            }
        );
    }

    #[test]
    fn source_domain_needs_no_ingress_sla() {
        let mut b = transit_broker();
        assert!(b
            .hold(
                ReservationId(1),
                iv(0, 100),
                10 * MBPS,
                PathSegment {
                    ingress_peer: None,
                    egress_peer: Some("domain-c".into()),
                },
            )
            .is_ok());
    }

    #[test]
    fn release_rolls_back_everywhere() {
        let mut b = transit_broker();
        b.hold(ReservationId(1), iv(0, 100), 15 * MBPS, transit_segment())
            .unwrap();
        // Egress SLA is now full.
        assert!(b
            .hold(ReservationId(2), iv(0, 100), MBPS, transit_segment())
            .is_err());
        b.release(ReservationId(1)).unwrap();
        assert!(b
            .hold(ReservationId(2), iv(0, 100), 15 * MBPS, transit_segment())
            .is_ok());
    }

    #[test]
    fn ingress_aggregate_tracks_active_reservations() {
        let mut b = transit_broker();
        b.hold(ReservationId(1), iv(0, 100), 10 * MBPS, transit_segment())
            .unwrap();
        b.hold(ReservationId(2), iv(50, 150), 5 * MBPS, transit_segment())
            .unwrap();
        assert_eq!(
            b.admitted_ingress_aggregate("domain-a", Timestamp(10)),
            10 * MBPS
        );
        assert_eq!(
            b.admitted_ingress_aggregate("domain-a", Timestamp(60)),
            15 * MBPS
        );
        assert_eq!(
            b.admitted_ingress_aggregate("domain-a", Timestamp(120)),
            5 * MBPS
        );
        assert_eq!(b.admitted_ingress_aggregate("nobody", Timestamp(10)), 0);
    }

    #[test]
    fn available_bw_reflects_holds() {
        let mut b = transit_broker();
        assert_eq!(b.available_bw_at(Timestamp(10)), 100 * MBPS);
        b.hold(ReservationId(1), iv(0, 100), 10 * MBPS, transit_segment())
            .unwrap();
        assert_eq!(b.available_bw_at(Timestamp(10)), 90 * MBPS);
        assert_eq!(b.available_bw_at(Timestamp(200)), 100 * MBPS);
    }

    #[test]
    fn commit_then_release_lifecycle() {
        let mut b = transit_broker();
        b.hold(ReservationId(1), iv(0, 100), MBPS, transit_segment())
            .unwrap();
        b.commit(ReservationId(1)).unwrap();
        assert_eq!(b.state(ReservationId(1)), Some(ResState::Committed));
        assert!(b.reservation_active_at(ReservationId(1), Timestamp(50)));
        b.release(ReservationId(1)).unwrap();
        assert!(!b.reservation_active_at(ReservationId(1), Timestamp(50)));
        assert!(matches!(
            b.commit(ReservationId(9)),
            Err(BrokerError::Unknown(_))
        ));
    }
}
