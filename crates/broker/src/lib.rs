//! # qos-broker — bandwidth-broker resource management
//!
//! §2 of the HPDC 2001 paper: "A BB provides admission control and
//! configures the edge routers of a single administrative network
//! domain", with SLAs regulating traffic between peered domains. This
//! crate is that per-domain resource core — the signalling protocol in
//! `qos-core` drives it:
//!
//! * [`reservations`] — time-indexed advance-reservation tables with a
//!   two-phase hold → commit / release life cycle;
//! * [`sla`] — SLA/SLS contracts between peered domains, carrying pinned
//!   peer and CA certificates (§6's trust extension);
//! * [`broker`] — [`broker::BrokerCore`]: admission against ingress SLA +
//!   local capacity + egress SLA, rollback on any failure;
//! * [`edge`] — the edge-router configuration command surface
//!   ([`edge::EdgeControl`] is implemented by `qos_net::Network`);
//! * [`billing`] — §6.4's transitive billing chains.

pub mod billing;
pub mod broker;
pub mod edge;
pub mod reservations;
pub mod shard;
pub mod sla;

pub use billing::{settle_chain, BillingLedger, Invoice};
pub use broker::{BrokerCore, BrokerError, PathSegment};
pub use edge::{CommandLog, EdgeCommand, EdgeControl};
pub use reservations::{AdmissionError, Interval, ResState, ReservationId, ReservationTable};
pub use shard::{SlaBook, LEDGER_STRIPES};
pub use sla::{Sla, Sls};
