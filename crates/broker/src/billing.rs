//! Transitive billing.
//!
//! §6.4 of the paper: "From an accounting perspective there is already an
//! accepted transitive billing scheme. Whenever a domain actually bills
//! the requesting entity for the use of the network service, SLAs are
//! already used to set up a transitive billing relation in multi-domain
//! networks. When network traffic enters domain C through domain B, it is
//! billed using the agreement between B and C. B as a transient domain,
//! however, would also bill traffic originating from a different domain
//! using the related SLA. Finally, the source domain would bill the
//! traffic against the originator."

use std::collections::BTreeMap;
use std::fmt;

/// One billing record: `payer` owes `payee` for carrying a reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invoice {
    /// Who pays (a domain, or the originating user for the first link).
    pub payer: String,
    /// Who is paid (the downstream domain that carried the traffic).
    pub payee: String,
    /// Reservation this bills for.
    pub reservation: u64,
    /// Amount in micro-units.
    pub amount: u64,
}

impl fmt::Display for Invoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → {} : {} µunits (reservation {})",
            self.payer, self.payee, self.amount, self.reservation
        )
    }
}

/// Per-domain ledger of issued and received invoices.
#[derive(Debug, Default)]
pub struct BillingLedger {
    invoices: Vec<Invoice>,
}

impl BillingLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an invoice.
    pub fn record(&mut self, invoice: Invoice) {
        self.invoices.push(invoice);
    }

    /// All invoices.
    pub fn invoices(&self) -> &[Invoice] {
        &self.invoices
    }

    /// Net balance per party: positive = net creditor.
    pub fn balances(&self) -> BTreeMap<String, i128> {
        let mut out: BTreeMap<String, i128> = BTreeMap::new();
        for inv in &self.invoices {
            *out.entry(inv.payee.clone()).or_default() += inv.amount as i128;
            *out.entry(inv.payer.clone()).or_default() -= inv.amount as i128;
        }
        out
    }
}

/// Build the transitive billing chain for a reservation crossing
/// `path` (ordered source → destination), where `price(upstream,
/// downstream)` is each SLA's cost for this reservation. The originator
/// pays the source domain; each domain pays its downstream peer.
///
/// Each intermediate invoice covers the *remainder* of the path: B bills
/// A for carrying the traffic through B **and beyond**, so prices
/// accumulate from the destination backwards.
pub fn settle_chain(
    originator: &str,
    path: &[String],
    reservation: u64,
    price: impl Fn(&str, &str) -> u64,
) -> Vec<Invoice> {
    let mut invoices = Vec::new();
    if path.is_empty() {
        return invoices;
    }
    // Accumulate from the far end: cost[i] = price(path[i-1], path[i]) + cost[i+1].
    let mut downstream_cost = vec![0u64; path.len()];
    for i in (1..path.len()).rev() {
        let hop = price(&path[i - 1], &path[i]);
        downstream_cost[i - 1] = downstream_cost
            .get(i)
            .copied()
            .unwrap_or(0)
            .saturating_add(hop);
    }
    // Each domain bills its upstream party for everything downstream of it.
    for i in (1..path.len()).rev() {
        invoices.push(Invoice {
            payer: path[i - 1].clone(),
            payee: path[i].clone(),
            reservation,
            amount: downstream_cost[i - 1],
        });
    }
    // The source domain bills the originator for the whole path. The
    // source's own carriage is priced as price(source, source) — zero
    // unless the domain charges its own users explicitly.
    let total = downstream_cost[0].saturating_add(price(&path[0], &path[0]));
    invoices.push(Invoice {
        payer: originator.to_string(),
        payee: path[0].clone(),
        reservation,
        amount: total,
    });
    invoices.reverse();
    invoices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_domain_chain_matches_paper_description() {
        let path = vec![
            "domain-a".to_string(),
            "domain-b".to_string(),
            "domain-c".to_string(),
        ];
        // B→C transit costs 100; A→B costs 10 (for carriage through B
        // onward); the source's own carriage is free.
        let price = |up: &str, down: &str| match (up, down) {
            ("domain-b", "domain-c") => 100,
            ("domain-a", "domain-b") => 10,
            _ => 0,
        };
        let invoices = settle_chain("alice", &path, 7, price);
        assert_eq!(invoices.len(), 3);
        // Alice pays A for the whole chain; A pays B for B+C; B pays C.
        assert_eq!(
            invoices[0],
            Invoice {
                payer: "alice".into(),
                payee: "domain-a".into(),
                reservation: 7,
                amount: 110
            }
        );
        assert_eq!(
            invoices[1],
            Invoice {
                payer: "domain-a".into(),
                payee: "domain-b".into(),
                reservation: 7,
                amount: 110
            }
        );
        assert_eq!(
            invoices[2],
            Invoice {
                payer: "domain-b".into(),
                payee: "domain-c".into(),
                reservation: 7,
                amount: 100
            }
        );
    }

    #[test]
    fn ledger_balances_sum_to_zero() {
        let path = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let mut ledger = BillingLedger::new();
        for inv in settle_chain("user", &path, 1, |_, _| 50) {
            ledger.record(inv);
        }
        let balances = ledger.balances();
        let total: i128 = balances.values().sum();
        assert_eq!(total, 0);
        // The pure transit domain nets the margin between what it bills
        // upstream and what it pays downstream.
        assert!(balances["c"] > 0);
        assert!(balances["user"] < 0);
    }

    #[test]
    fn single_domain_path_bills_only_originator() {
        let path = vec!["a".to_string()];
        let invoices = settle_chain("user", &path, 1, |_, _| 25);
        assert_eq!(invoices.len(), 1);
        assert_eq!(invoices[0].payer, "user");
        assert_eq!(invoices[0].payee, "a");
        assert_eq!(invoices[0].amount, 25); // price(a, a)
    }

    #[test]
    fn empty_path_yields_nothing() {
        assert!(settle_chain("user", &[], 1, |_, _| 1).is_empty());
    }
}
