//! Edge-router configuration commands.
//!
//! Brokers never touch packets; they *configure* the data plane ("A BB
//! provides admission control and configures the edge routers", §2).
//! [`EdgeCommand`] is that configuration interface, and [`EdgeControl`]
//! is anything that can apply it — the live [`qos_net::Network`], or a
//! [`CommandLog`] recorder in tests.

use qos_net::conditioner::{ExcessTreatment, TrafficProfile};
use qos_net::{FlowId, LinkId, Network, NodeId};

/// One configuration command for the data plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeCommand {
    /// Install per-flow classification + policing at a first-hop router.
    InstallFlow {
        /// Router to configure.
        router: NodeId,
        /// Flow to classify.
        flow: FlowId,
        /// Reserved profile.
        profile: TrafficProfile,
        /// Excess treatment for the flow's own out-of-profile packets.
        excess: ExcessTreatment,
    },
    /// Remove a per-flow entry.
    RemoveFlow {
        /// Router to configure.
        router: NodeId,
        /// Flow to forget.
        flow: FlowId,
    },
    /// Dimension the EF aggregate policer on a domain-ingress link.
    SetIngressAggregate {
        /// The interdomain link.
        link: LinkId,
        /// Aggregate profile (sum of admitted reservations).
        profile: TrafficProfile,
        /// Excess treatment per the SLA.
        excess: ExcessTreatment,
    },
}

/// Anything that can apply edge configuration.
pub trait EdgeControl {
    /// Apply one command.
    fn apply(&mut self, cmd: EdgeCommand);
}

impl EdgeControl for Network {
    fn apply(&mut self, cmd: EdgeCommand) {
        match cmd {
            EdgeCommand::InstallFlow {
                router,
                flow,
                profile,
                excess,
            } => self.install_flow_reservation(router, flow, profile, excess),
            EdgeCommand::RemoveFlow { router, flow } => {
                self.remove_flow_reservation(router, flow);
            }
            EdgeCommand::SetIngressAggregate {
                link,
                profile,
                excess,
            } => self.configure_ingress_policer(link, profile, excess),
        }
    }
}

/// A recorder for tests and dry runs.
#[derive(Debug, Default)]
pub struct CommandLog {
    /// Commands in application order.
    pub commands: Vec<EdgeCommand>,
}

impl EdgeControl for CommandLog {
    fn apply(&mut self, cmd: EdgeCommand) {
        self.commands.push(cmd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_net::{paper_topology, SimDuration};

    #[test]
    fn commands_apply_to_live_network() {
        let (topo, n) = paper_topology(100_000_000, SimDuration::from_millis(5));
        let mut net = Network::new(topo);
        let router = net.first_router(n["alice"], n["charlie"]).unwrap();
        let profile = TrafficProfile::with_default_burst(10_000_000);
        net.apply(EdgeCommand::InstallFlow {
            router,
            flow: FlowId(1),
            profile,
            excess: ExcessTreatment::Drop,
        });
        net.apply(EdgeCommand::RemoveFlow {
            router,
            flow: FlowId(1),
        });
        // Removing twice is harmless.
        net.apply(EdgeCommand::RemoveFlow {
            router,
            flow: FlowId(1),
        });
    }

    #[test]
    fn command_log_records_in_order() {
        let mut log = CommandLog::default();
        let profile = TrafficProfile::with_default_burst(1);
        log.apply(EdgeCommand::RemoveFlow {
            router: NodeId(1),
            flow: FlowId(2),
        });
        log.apply(EdgeCommand::SetIngressAggregate {
            link: LinkId(3),
            profile,
            excess: ExcessTreatment::Downgrade,
        });
        assert_eq!(log.commands.len(), 2);
        assert!(matches!(log.commands[0], EdgeCommand::RemoveFlow { .. }));
    }
}
