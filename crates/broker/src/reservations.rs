//! Time-indexed bandwidth bookkeeping with advance reservations.
//!
//! GARA (the system this paper extends) "provides advance reservations
//! and end-to-end management for quality of service". A reservation holds
//! `rate_bps` over a wall-clock interval; admission must guarantee that
//! at **every instant** the sum of overlapping committed/held
//! reservations stays within capacity.
//!
//! Two-phase life cycle: a reservation is *held* while the end-to-end
//! decision is pending (hop-by-hop signalling admits locally before
//! forwarding downstream), then *committed* when the approval propagates
//! back, or *released* on denial — so a denial in domain C rolls back
//! capacity in A and B.

use qos_crypto::Timestamp;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier for one reservation in a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReservationId(pub u64);

impl qos_wire::Encode for ReservationId {
    fn encode(&self, w: &mut qos_wire::Writer) {
        w.put_u64(self.0);
    }
}

impl qos_wire::Decode for ReservationId {
    fn decode(r: &mut qos_wire::Reader<'_>) -> Result<Self, qos_wire::WireError> {
        Ok(ReservationId(r.get_u64()?))
    }
}

/// A half-open wall-clock interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First instant the reservation holds.
    pub start: Timestamp,
    /// First instant after the reservation.
    pub end: Timestamp,
}

qos_wire::impl_wire_struct!(Interval { start, end });

impl Interval {
    /// Construct, normalizing inverted bounds to empty.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        Self {
            start,
            end: end.max(start),
        }
    }

    /// From `start` lasting `secs`.
    pub fn starting_at(start: Timestamp, secs: u64) -> Self {
        Self {
            start,
            end: start + secs,
        }
    }

    /// Do two intervals overlap?
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Is `t` inside?
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// Length in seconds.
    pub fn secs(&self) -> u64 {
        self.end - self.start
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Reservation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResState {
    /// Capacity held pending the end-to-end decision.
    Held,
    /// Confirmed.
    Committed,
    /// Rolled back (no longer consumes capacity).
    Released,
}

#[derive(Debug, Clone)]
struct Entry {
    interval: Interval,
    rate_bps: u64,
    state: ResState,
}

/// Why admission failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// Admitting would oversubscribe capacity at some instant. Carries
    /// the worst-case available rate over the requested interval.
    InsufficientCapacity {
        /// What was requested (bits/s).
        requested_bps: u64,
        /// The minimum available rate over the interval (bits/s).
        available_bps: u64,
    },
    /// The reservation id is unknown.
    UnknownReservation(ReservationId),
    /// The id is already present.
    DuplicateReservation(ReservationId),
    /// Zero-length interval or zero rate.
    EmptyRequest,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::InsufficientCapacity {
                requested_bps,
                available_bps,
            } => write!(
                f,
                "insufficient capacity: requested {requested_bps} bps, only {available_bps} bps available"
            ),
            AdmissionError::UnknownReservation(id) => write!(f, "unknown reservation {id:?}"),
            AdmissionError::DuplicateReservation(id) => write!(f, "duplicate reservation {id:?}"),
            AdmissionError::EmptyRequest => write!(f, "empty interval or zero rate"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A capacity-bounded advance-reservation table.
#[derive(Debug, Clone)]
pub struct ReservationTable {
    capacity_bps: u64,
    entries: BTreeMap<ReservationId, Entry>,
}

impl ReservationTable {
    /// A table managing `capacity_bps` of bandwidth.
    pub fn new(capacity_bps: u64) -> Self {
        Self {
            capacity_bps,
            entries: BTreeMap::new(),
        }
    }

    /// Managed capacity.
    pub fn capacity_bps(&self) -> u64 {
        self.capacity_bps
    }

    /// Peak committed+held usage over `interval` (bits/s).
    ///
    /// Sweep over the breakpoints of overlapping reservations: usage only
    /// changes at starts/ends, so evaluating at each start covers every
    /// instant.
    pub fn peak_usage(&self, interval: &Interval) -> u64 {
        let mut points: Vec<Timestamp> = vec![interval.start];
        for e in self.entries.values() {
            if e.state != ResState::Released
                && e.interval.overlaps(interval)
                && e.interval.start > interval.start
            {
                points.push(e.interval.start);
            }
        }
        points
            .into_iter()
            .map(|t| self.usage_at(t))
            .max()
            .unwrap_or(0)
    }

    /// Committed+held usage at instant `t` (bits/s).
    pub fn usage_at(&self, t: Timestamp) -> u64 {
        self.entries
            .values()
            .filter(|e| e.state != ResState::Released && e.interval.contains(t))
            .map(|e| e.rate_bps)
            .sum()
    }

    /// Available rate at instant `t`.
    pub fn available_at(&self, t: Timestamp) -> u64 {
        self.capacity_bps.saturating_sub(self.usage_at(t))
    }

    /// Minimum available rate over `interval`.
    pub fn min_available(&self, interval: &Interval) -> u64 {
        self.capacity_bps.saturating_sub(self.peak_usage(interval))
    }

    /// Place a hold: capacity is consumed immediately, but the
    /// reservation is only [`ResState::Held`] until committed.
    pub fn hold(
        &mut self,
        id: ReservationId,
        interval: Interval,
        rate_bps: u64,
    ) -> Result<(), AdmissionError> {
        if interval.secs() == 0 || rate_bps == 0 {
            return Err(AdmissionError::EmptyRequest);
        }
        // A released entry is a tombstone; the same id may be re-held
        // (e.g. after a partial-admission rollback retries).
        if self
            .entries
            .get(&id)
            .is_some_and(|e| e.state != ResState::Released)
        {
            return Err(AdmissionError::DuplicateReservation(id));
        }
        let available = self.min_available(&interval);
        if rate_bps > available {
            return Err(AdmissionError::InsufficientCapacity {
                requested_bps: rate_bps,
                available_bps: available,
            });
        }
        self.entries.insert(
            id,
            Entry {
                interval,
                rate_bps,
                state: ResState::Held,
            },
        );
        Ok(())
    }

    /// Commit a held reservation. Committing twice is idempotent;
    /// committing a released (rolled-back) id is an error — its capacity
    /// is gone.
    pub fn commit(&mut self, id: ReservationId) -> Result<(), AdmissionError> {
        match self.entries.get_mut(&id) {
            Some(e) if e.state != ResState::Released => {
                e.state = ResState::Committed;
                Ok(())
            }
            _ => Err(AdmissionError::UnknownReservation(id)),
        }
    }

    /// Release (roll back) a reservation; its capacity is returned.
    pub fn release(&mut self, id: ReservationId) -> Result<(), AdmissionError> {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.state = ResState::Released;
                Ok(())
            }
            None => Err(AdmissionError::UnknownReservation(id)),
        }
    }

    /// State of a reservation.
    pub fn state(&self, id: ReservationId) -> Option<ResState> {
        self.entries.get(&id).map(|e| e.state)
    }

    /// Rate of a reservation.
    pub fn rate(&self, id: ReservationId) -> Option<u64> {
        self.entries.get(&id).map(|e| e.rate_bps)
    }

    /// Interval of a reservation.
    pub fn interval(&self, id: ReservationId) -> Option<Interval> {
        self.entries.get(&id).map(|e| e.interval)
    }

    /// True if `id` exists and holds (held or committed) at `t`.
    pub fn active_at(&self, id: ReservationId, t: Timestamp) -> bool {
        self.entries
            .get(&id)
            .is_some_and(|e| e.state != ResState::Released && e.interval.contains(t))
    }

    /// Sum of committed+held rates over all entries active at `t` —
    /// what the domain's ingress aggregate policer should be dimensioned
    /// to.
    pub fn admitted_aggregate_at(&self, t: Timestamp) -> u64 {
        self.usage_at(t)
    }

    /// Force-apply a recovered reservation without admission checks
    /// (DESIGN.md §D13). Replay rebuilds state that *was already
    /// admitted* before a crash, so capacity math must not re-gate it;
    /// overwriting an existing entry makes replay after a snapshot
    /// idempotent.
    pub fn restore(
        &mut self,
        id: ReservationId,
        interval: Interval,
        rate_bps: u64,
        state: ResState,
    ) {
        self.entries.insert(
            id,
            Entry {
                interval,
                rate_bps,
                state,
            },
        );
    }

    /// Force a recovered state transition. Unknown ids are ignored —
    /// the matching hold record can legitimately be missing when it sat
    /// in an un-fsynced batch the crash discarded.
    pub fn restore_state(&mut self, id: ReservationId, state: ResState) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.state = state;
        }
    }

    /// Iterate non-released reservations.
    pub fn iter_active(
        &self,
    ) -> impl Iterator<Item = (ReservationId, Interval, u64, ResState)> + '_ {
        self.entries
            .iter()
            .filter(|(_, e)| e.state != ResState::Released)
            .map(|(id, e)| (*id, e.interval, e.rate_bps, e.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Timestamp(a), Timestamp(b))
    }

    #[test]
    fn basic_hold_within_capacity() {
        let mut t = ReservationTable::new(100);
        assert!(t.hold(ReservationId(1), iv(0, 10), 60).is_ok());
        assert!(t.hold(ReservationId(2), iv(0, 10), 40).is_ok());
        assert_eq!(
            t.hold(ReservationId(3), iv(5, 6), 1),
            Err(AdmissionError::InsufficientCapacity {
                requested_bps: 1,
                available_bps: 0
            })
        );
    }

    #[test]
    fn disjoint_intervals_share_capacity() {
        let mut t = ReservationTable::new(100);
        assert!(t.hold(ReservationId(1), iv(0, 10), 100).is_ok());
        assert!(t.hold(ReservationId(2), iv(10, 20), 100).is_ok());
        // Touching at the boundary is fine (half-open intervals).
        assert_eq!(t.usage_at(Timestamp(9)), 100);
        assert_eq!(t.usage_at(Timestamp(10)), 100);
        assert_eq!(t.usage_at(Timestamp(20)), 0);
    }

    #[test]
    fn advance_reservations_respect_future_peaks() {
        let mut t = ReservationTable::new(100);
        // A future reservation occupies 80 during [100, 200).
        t.hold(ReservationId(1), iv(100, 200), 80).unwrap();
        // A long reservation spanning that window can only get 20.
        assert!(t.hold(ReservationId(2), iv(0, 300), 30).is_err());
        assert!(t.hold(ReservationId(3), iv(0, 300), 20).is_ok());
        // But a reservation ending before it can take everything left.
        assert!(t.hold(ReservationId(4), iv(0, 100), 80).is_ok());
    }

    #[test]
    fn release_returns_capacity() {
        let mut t = ReservationTable::new(100);
        t.hold(ReservationId(1), iv(0, 10), 100).unwrap();
        assert!(t.hold(ReservationId(2), iv(0, 10), 50).is_err());
        t.release(ReservationId(1)).unwrap();
        assert!(t.hold(ReservationId(2), iv(0, 10), 100).is_ok());
        assert_eq!(t.state(ReservationId(1)), Some(ResState::Released));
    }

    #[test]
    fn two_phase_lifecycle() {
        let mut t = ReservationTable::new(100);
        t.hold(ReservationId(1), iv(0, 10), 60).unwrap();
        assert_eq!(t.state(ReservationId(1)), Some(ResState::Held));
        // Held capacity already blocks competitors (no double-sell while
        // the end-to-end decision is pending).
        assert!(t.hold(ReservationId(2), iv(0, 10), 60).is_err());
        t.commit(ReservationId(1)).unwrap();
        assert_eq!(t.state(ReservationId(1)), Some(ResState::Committed));
    }

    #[test]
    fn rejects_empty_and_duplicate() {
        let mut t = ReservationTable::new(100);
        assert_eq!(
            t.hold(ReservationId(1), iv(5, 5), 10),
            Err(AdmissionError::EmptyRequest)
        );
        assert_eq!(
            t.hold(ReservationId(1), iv(0, 10), 0),
            Err(AdmissionError::EmptyRequest)
        );
        t.hold(ReservationId(1), iv(0, 10), 10).unwrap();
        assert_eq!(
            t.hold(ReservationId(1), iv(20, 30), 10),
            Err(AdmissionError::DuplicateReservation(ReservationId(1)))
        );
    }

    #[test]
    fn unknown_ids_error() {
        let mut t = ReservationTable::new(100);
        assert!(t.commit(ReservationId(9)).is_err());
        assert!(t.release(ReservationId(9)).is_err());
        assert_eq!(t.state(ReservationId(9)), None);
    }

    #[test]
    fn peak_usage_sweep_is_exact() {
        let mut t = ReservationTable::new(1000);
        // Staircase: [0,30)@100, [10,20)@200 → peak 300 in [10,20).
        t.hold(ReservationId(1), iv(0, 30), 100).unwrap();
        t.hold(ReservationId(2), iv(10, 20), 200).unwrap();
        assert_eq!(t.peak_usage(&iv(0, 30)), 300);
        assert_eq!(t.peak_usage(&iv(0, 10)), 100);
        assert_eq!(t.peak_usage(&iv(20, 30)), 100);
        assert_eq!(t.peak_usage(&iv(12, 13)), 300);
        assert_eq!(t.min_available(&iv(0, 30)), 700);
    }

    #[test]
    fn active_at_and_aggregate() {
        let mut t = ReservationTable::new(100);
        t.hold(ReservationId(1), iv(0, 10), 30).unwrap();
        t.hold(ReservationId(2), iv(5, 15), 20).unwrap();
        t.commit(ReservationId(1)).unwrap();
        assert!(t.active_at(ReservationId(1), Timestamp(3)));
        assert!(!t.active_at(ReservationId(2), Timestamp(3)));
        assert_eq!(t.admitted_aggregate_at(Timestamp(7)), 50);
        t.release(ReservationId(2)).unwrap();
        assert_eq!(t.admitted_aggregate_at(Timestamp(7)), 30);
    }
}
