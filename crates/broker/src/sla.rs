//! Service level agreements between peered domains.
//!
//! §2 of the paper: "Whenever the network reservation end-points are in
//! different domains, a specific contract between peered domains comes
//! into place, used by BBs as input for their admission control
//! procedures. A service level agreement (SLA) regulates the acceptance
//! and the constraints of a given traffic profile. Service Level
//! Specifications (SLS) are used to describe the appropriate QoS
//! parameters."
//!
//! §6 extends the SLA with trust material: "we extend this agreement by
//! adding information to facilitate the trust relationship between two
//! peered BBs. This information includes the certificates of the peered
//! BBs as well as the certificate of the issuing certificate authority,
//! all used during the SSL handshake."

use qos_crypto::Certificate;
use qos_net::conditioner::ExcessTreatment;

/// Service level specification: the QoS parameters an SLA commits to.
#[derive(Debug, Clone, PartialEq)]
pub struct Sls {
    /// Committed EF rate across the peering in bits/s.
    pub committed_rate_bps: u64,
    /// Burst tolerance in bytes.
    pub burst_bytes: u64,
    /// Treatment of out-of-profile EF traffic.
    pub excess: ExcessTreatment,
    /// Expected delivery ratio for in-profile traffic (a reliability
    /// parameter the source BB may propagate downstream).
    pub reliability: f64,
}

impl Sls {
    /// An SLS with a 50 ms burst and drop excess treatment.
    pub fn strict(committed_rate_bps: u64) -> Self {
        Self {
            committed_rate_bps,
            burst_bytes: (committed_rate_bps / 8 / 20).max(3_000),
            excess: ExcessTreatment::Drop,
            reliability: 0.999,
        }
    }

    /// Same profile but downgrading excess instead of dropping it.
    pub fn lenient(committed_rate_bps: u64) -> Self {
        Self {
            excess: ExcessTreatment::Downgrade,
            ..Self::strict(committed_rate_bps)
        }
    }
}

/// A bilateral agreement: `upstream` may inject EF traffic into
/// `downstream` according to `sls`, with pinned trust material and a
/// transit price for the transitive billing chain.
#[derive(Debug, Clone)]
pub struct Sla {
    /// The sending (upstream) domain.
    pub upstream: String,
    /// The accepting (downstream) domain.
    pub downstream: String,
    /// QoS commitment.
    pub sls: Sls,
    /// The peer BB's identity certificate (pinned; exchanged when the SLA
    /// was contracted, verified again during each channel handshake).
    pub peer_cert: Certificate,
    /// The certificate of the CA that issued the peer's certificate.
    pub ca_cert: Certificate,
    /// Transit price in micro-units per (Mb/s × second), for billing.
    pub price_per_mbps_sec: u64,
}

impl Sla {
    /// The cost of carrying `rate_bps` for `secs` under this agreement.
    pub fn transit_cost(&self, rate_bps: u64, secs: u64) -> u64 {
        // price × Mb/s × s, computed in u128 to avoid overflow.
        let mbps_millis = rate_bps as u128; // bits/s
        (self.price_per_mbps_sec as u128 * mbps_millis * secs as u128 / 1_000_000) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_crypto::{CertificateAuthority, DistinguishedName, KeyPair, Validity};

    fn cert_pair() -> (Certificate, Certificate) {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("RootCA"),
            KeyPair::from_seed(b"ca"),
        );
        let root = ca.self_signed();
        let peer = ca.issue_identity(
            DistinguishedName::broker("domain-b"),
            KeyPair::from_seed(b"bb-b").public(),
            Validity::unbounded(),
        );
        (peer, root)
    }

    #[test]
    fn sls_constructors() {
        let s = Sls::strict(10_000_000);
        assert_eq!(s.committed_rate_bps, 10_000_000);
        assert_eq!(s.excess, ExcessTreatment::Drop);
        assert!(s.burst_bytes >= 3_000);
        assert_eq!(Sls::lenient(1).excess, ExcessTreatment::Downgrade);
    }

    #[test]
    fn transit_cost_scales_linearly() {
        let (peer_cert, ca_cert) = cert_pair();
        let sla = Sla {
            upstream: "domain-a".into(),
            downstream: "domain-b".into(),
            sls: Sls::strict(100_000_000),
            peer_cert,
            ca_cert,
            price_per_mbps_sec: 10,
        };
        // 10 Mb/s for 100 s at 10 per Mb/s-sec = 10 × 10 × 100.
        assert_eq!(sla.transit_cost(10_000_000, 100), 10_000);
        assert_eq!(sla.transit_cost(20_000_000, 100), 20_000);
        assert_eq!(sla.transit_cost(10_000_000, 200), 20_000);
        assert_eq!(sla.transit_cost(0, 100), 0);
    }
}
