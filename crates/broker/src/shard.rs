//! The striped, shareable bandwidth ledger behind [`BrokerCore`].
//!
//! One [`SlaBook`] per administrative domain, shared by every admission
//! shard of that domain's broker (DESIGN.md §D11). The serialized
//! `BrokerCore` of earlier revisions owned its tables outright; with N
//! admission shards racing on one domain's capacity, the book instead
//! stripes its state so shards only contend where they genuinely touch
//! the same resource:
//!
//! * each reservation table (local capacity, one per ingress SLA, one
//!   per egress SLA) sits behind its own mutex — a hold crossing
//!   `a → self → c` never blocks a hold crossing `b → self → d`;
//! * reservation metadata is striped by id hash across
//!   [`LEDGER_STRIPES`] mutexes;
//! * the SLA contract maps are read-mostly (`RwLock`, written only
//!   during topology setup);
//! * billing appends go through one dedicated mutex (cold path).
//!
//! Locks are only ever taken **one at a time** — every operation
//! acquires a table, updates it, and releases it before touching the
//! next (the hold path reconciles a mid-sequence failure by releasing
//! the tables it already holds, exactly like the serialized rollback).
//! No nested acquisition means no lock-order discipline to violate and
//! no possibility of deadlock between shards.
//!
//! Capacity is deliberately **not** partitioned per shard: every shard
//! admits against the same tables, so the committed bandwidth after a
//! run is identical for 1 shard or N — the parity invariant the
//! transport experiment gates on.

use crate::billing::{BillingLedger, Invoice};
use crate::broker::{BrokerError, PathSegment};
use crate::reservations::{AdmissionError, Interval, ResState, ReservationId, ReservationTable};
use crate::sla::Sla;
use qos_crypto::sha256::Sha256;
use qos_crypto::Timestamp;
use qos_storage::{
    LedgerRecord, LedgerSnapshot, SharedStore, SnapInvoice, SnapReservation, STATE_COMMITTED,
    STATE_HELD,
};
use qos_telemetry::{Counter, Telemetry};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Metadata stripes: enough that shards working distinct reservations
/// rarely collide, small enough to stay cache-friendly.
pub const LEDGER_STRIPES: usize = 8;

#[derive(Debug, Clone)]
pub(crate) struct ResMeta {
    pub(crate) interval: Interval,
    pub(crate) rate_bps: u64,
    pub(crate) segment: PathSegment,
}

/// Life-cycle counters for one resource core (detached no-ops by
/// default). `Counter` handles are internally `Arc`'d, so every shard's
/// increments land in the same cells.
#[derive(Default)]
pub(crate) struct CoreCounters {
    pub(crate) holds_ok: Counter,
    pub(crate) holds_refused: Counter,
    pub(crate) commits: Counter,
    pub(crate) releases: Counter,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A domain's striped bandwidth ledger: reservation tables, SLA
/// contracts, reservation metadata, and billing, all independently
/// lockable so N admission shards share one book without serializing on
/// a single big lock.
pub struct SlaBook {
    domain: String,
    local: Mutex<ReservationTable>,
    ingress: RwLock<HashMap<String, Arc<Mutex<ReservationTable>>>>,
    egress: RwLock<HashMap<String, Arc<Mutex<ReservationTable>>>>,
    slas_in: RwLock<HashMap<String, Sla>>,
    slas_out: RwLock<HashMap<String, Sla>>,
    meta: [Mutex<HashMap<ReservationId, ResMeta>>; LEDGER_STRIPES],
    billing: Mutex<BillingLedger>,
    counters: RwLock<CoreCounters>,
    /// The durable ledger store (DESIGN.md §D13). Shared by every shard
    /// of the domain through this book, so striped appends land in one
    /// WAL regardless of which shard admitted.
    store: RwLock<Option<SharedStore>>,
}

impl SlaBook {
    /// A ledger managing `local_capacity_bps` of internal EF capacity.
    pub fn new(domain: &str, local_capacity_bps: u64) -> Self {
        Self {
            domain: domain.to_string(),
            local: Mutex::new(ReservationTable::new(local_capacity_bps)),
            ingress: RwLock::new(HashMap::new()),
            egress: RwLock::new(HashMap::new()),
            slas_in: RwLock::new(HashMap::new()),
            slas_out: RwLock::new(HashMap::new()),
            meta: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            billing: Mutex::new(BillingLedger::new()),
            counters: RwLock::new(CoreCounters::default()),
            store: RwLock::new(None),
        }
    }

    /// Attach the durable ledger store. Every admission verdict, hold,
    /// commit, release and billing settlement from here on appends a
    /// record — attach *after* recovery replay so replay itself is not
    /// re-logged.
    pub fn set_store(&self, store: SharedStore) {
        *self.store.write().unwrap_or_else(|e| e.into_inner()) = Some(store);
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<SharedStore> {
        self.store.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn append_record(&self, record: LedgerRecord) {
        if let Some(store) = self.store() {
            store.append(&record);
        }
    }

    /// The domain this ledger accounts for.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    pub(crate) fn set_telemetry(&self, telemetry: &Telemetry) {
        let d = self.domain.clone();
        *self.counters.write().unwrap_or_else(|e| e.into_inner()) = CoreCounters {
            holds_ok: telemetry.counter(
                "broker_holds_total",
                "Two-phase capacity holds by outcome",
                &[("domain", &d), ("decision", "held")],
            ),
            holds_refused: telemetry.counter(
                "broker_holds_total",
                "Two-phase capacity holds by outcome",
                &[("domain", &d), ("decision", "refused")],
            ),
            commits: telemetry.counter(
                "broker_commits_total",
                "Held reservations committed after end-to-end approval",
                &[("domain", &d)],
            ),
            releases: telemetry.counter(
                "broker_releases_total",
                "Reservations released (denial, cancellation, or expiry)",
                &[("domain", &d)],
            ),
        };
    }

    fn counter(&self, pick: impl FnOnce(&CoreCounters) -> &Counter) -> Counter {
        pick(&self.counters.read().unwrap_or_else(|e| e.into_inner())).clone()
    }

    fn meta_stripe(&self, id: ReservationId) -> &Mutex<HashMap<ReservationId, ResMeta>> {
        &self.meta[(id.0 as usize) % LEDGER_STRIPES]
    }

    fn ingress_table(&self, peer: &str) -> Option<Arc<Mutex<ReservationTable>>> {
        self.ingress
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(peer)
            .cloned()
    }

    fn egress_table(&self, peer: &str) -> Option<Arc<Mutex<ReservationTable>>> {
        self.egress
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(peer)
            .cloned()
    }

    pub(crate) fn add_ingress_sla(&self, sla: Sla) {
        debug_assert_eq!(sla.downstream, self.domain);
        self.ingress
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                sla.upstream.clone(),
                Arc::new(Mutex::new(ReservationTable::new(
                    sla.sls.committed_rate_bps,
                ))),
            );
        self.slas_in
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(sla.upstream.clone(), sla);
    }

    pub(crate) fn add_egress_sla(&self, sla: Sla) {
        debug_assert_eq!(sla.upstream, self.domain);
        self.egress
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                sla.downstream.clone(),
                Arc::new(Mutex::new(ReservationTable::new(
                    sla.sls.committed_rate_bps,
                ))),
            );
        self.slas_out
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(sla.downstream.clone(), sla);
    }

    pub(crate) fn ingress_sla(&self, peer: &str) -> Option<Sla> {
        self.slas_in
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(peer)
            .cloned()
    }

    pub(crate) fn egress_sla(&self, peer: &str) -> Option<Sla> {
        self.slas_out
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(peer)
            .cloned()
    }

    pub(crate) fn record_invoice(&self, invoice: Invoice) {
        // Mutation before append: a snapshot capturing seq S must
        // already reflect every record ≤ S (see `LedgerSnapshot`).
        let record = LedgerRecord::Invoice {
            payer: invoice.payer.clone(),
            payee: invoice.payee.clone(),
            reservation: invoice.reservation,
            amount: invoice.amount,
        };
        lock(&self.billing).record(invoice);
        self.append_record(record);
    }

    pub(crate) fn invoices(&self) -> Vec<Invoice> {
        lock(&self.billing).invoices().to_vec()
    }

    pub(crate) fn balances(&self) -> BTreeMap<String, i128> {
        lock(&self.billing).balances()
    }

    pub(crate) fn hold(
        &self,
        id: ReservationId,
        interval: Interval,
        rate_bps: u64,
        segment: PathSegment,
    ) -> Result<(), BrokerError> {
        let (ingress, egress) = (segment.ingress_peer.clone(), segment.egress_peer.clone());
        let result = self.hold_inner(id, interval, rate_bps, segment);
        match &result {
            Ok(()) => {
                self.counter(|c| &c.holds_ok).inc();
                self.append_record(LedgerRecord::Hold {
                    id: id.0,
                    start: interval.start.0,
                    end: interval.end.0,
                    rate_bps,
                    ingress,
                    egress,
                });
            }
            Err(_) => {
                self.counter(|c| &c.holds_refused).inc();
                self.append_record(LedgerRecord::Deny { id: id.0, rate_bps });
            }
        }
        result
    }

    fn hold_inner(
        &self,
        id: ReservationId,
        interval: Interval,
        rate_bps: u64,
        segment: PathSegment,
    ) -> Result<(), BrokerError> {
        // Ingress SLA check.
        if let Some(peer) = &segment.ingress_peer {
            let table = self
                .ingress_table(peer)
                .ok_or_else(|| BrokerError::NoSla { peer: peer.clone() })?;
            lock(&table)
                .hold(id, interval, rate_bps)
                .map_err(|source| BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                })?;
        }
        // Local capacity check.
        if let Err(e) = lock(&self.local).hold(id, interval, rate_bps) {
            if let Some(peer) = &segment.ingress_peer {
                if let Some(t) = self.ingress_table(peer) {
                    let _ = lock(&t).release(id);
                }
            }
            return Err(BrokerError::Local(e));
        }
        // Egress SLA check.
        if let Some(peer) = &segment.egress_peer {
            let Some(table) = self.egress_table(peer) else {
                self.rollback_partial(id, &segment, /*egress_held=*/ false);
                return Err(BrokerError::NoSla { peer: peer.clone() });
            };
            let held = lock(&table).hold(id, interval, rate_bps);
            if let Err(source) = held {
                self.rollback_partial(id, &segment, false);
                return Err(BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                });
            }
        }
        lock(self.meta_stripe(id)).insert(
            id,
            ResMeta {
                interval,
                rate_bps,
                segment,
            },
        );
        Ok(())
    }

    fn rollback_partial(&self, id: ReservationId, segment: &PathSegment, egress_held: bool) {
        let _ = lock(&self.local).release(id);
        if let Some(peer) = &segment.ingress_peer {
            if let Some(t) = self.ingress_table(peer) {
                let _ = lock(&t).release(id);
            }
        }
        if egress_held {
            if let Some(peer) = &segment.egress_peer {
                if let Some(t) = self.egress_table(peer) {
                    let _ = lock(&t).release(id);
                }
            }
        }
    }

    /// Apply `f` to every table the reservation crosses, in the fixed
    /// ingress → local → egress order (one lock at a time).
    fn for_each_table(
        &self,
        id: ReservationId,
        f: impl Fn(&mut ReservationTable, ReservationId) -> Result<(), AdmissionError>,
    ) -> Result<(), BrokerError> {
        let meta = lock(self.meta_stripe(id))
            .get(&id)
            .cloned()
            .ok_or(BrokerError::Unknown(id))?;
        if let Some(peer) = &meta.segment.ingress_peer {
            if let Some(t) = self.ingress_table(peer) {
                f(&mut lock(&t), id).map_err(|source| BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                })?;
            }
        }
        f(&mut lock(&self.local), id).map_err(BrokerError::Local)?;
        if let Some(peer) = &meta.segment.egress_peer {
            if let Some(t) = self.egress_table(peer) {
                f(&mut lock(&t), id).map_err(|source| BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                })?;
            }
        }
        Ok(())
    }

    pub(crate) fn commit(&self, id: ReservationId) -> Result<(), BrokerError> {
        let result = self.for_each_table(id, |t, id| t.commit(id));
        if result.is_ok() {
            self.counter(|c| &c.commits).inc();
            self.append_record(LedgerRecord::Commit { id: id.0 });
        }
        result
    }

    pub(crate) fn release(&self, id: ReservationId) -> Result<(), BrokerError> {
        let result = self.for_each_table(id, |t, id| t.release(id));
        if result.is_ok() {
            self.counter(|c| &c.releases).inc();
            self.append_record(LedgerRecord::Release { id: id.0 });
        }
        result
    }

    pub(crate) fn state(&self, id: ReservationId) -> Option<ResState> {
        lock(&self.local).state(id)
    }

    pub(crate) fn info(&self, id: ReservationId) -> Option<(Interval, u64, PathSegment)> {
        lock(self.meta_stripe(id))
            .get(&id)
            .map(|m| (m.interval, m.rate_bps, m.segment.clone()))
    }

    pub(crate) fn available_bw_at(&self, t: Timestamp) -> u64 {
        lock(&self.local).available_at(t)
    }

    pub(crate) fn admitted_ingress_aggregate(&self, peer: &str, t: Timestamp) -> u64 {
        self.ingress_table(peer)
            .map(|table| lock(&table).admitted_aggregate_at(t))
            .unwrap_or(0)
    }

    pub(crate) fn reservation_active_at(&self, id: ReservationId, t: Timestamp) -> bool {
        lock(&self.local).active_at(id, t)
    }

    // ------------------------------------------------------------------
    // Durable-ledger recovery and export (DESIGN.md §D13). Restores
    // force-apply without admission math — replay rebuilds state that
    // was already admitted before a crash — and are idempotent, because
    // a snapshot may reflect records sequenced after its capture point.
    // ------------------------------------------------------------------

    /// Replay one recovered WAL record. Forgiving: transitions whose
    /// hold record sat in an un-fsynced batch the crash discarded are
    /// ignored, and ticket records belong to the transport layer.
    pub fn restore_record(&self, record: &LedgerRecord) {
        match record {
            LedgerRecord::Hold {
                id,
                start,
                end,
                rate_bps,
                ingress,
                egress,
            } => self.restore_reservation(&SnapReservation {
                id: *id,
                start: *start,
                end: *end,
                rate_bps: *rate_bps,
                state: STATE_HELD,
                ingress: ingress.clone(),
                egress: egress.clone(),
            }),
            LedgerRecord::Deny { .. } => {}
            LedgerRecord::Commit { id } => {
                self.restore_transition(ReservationId(*id), ResState::Committed)
            }
            LedgerRecord::Release { id } => {
                self.restore_transition(ReservationId(*id), ResState::Released)
            }
            LedgerRecord::Invoice {
                payer,
                payee,
                reservation,
                amount,
            } => self.restore_invoice(&SnapInvoice {
                payer: payer.clone(),
                payee: payee.clone(),
                reservation: *reservation,
                amount: *amount,
            }),
            LedgerRecord::TicketKey { .. } | LedgerRecord::TicketIssued { .. } => {}
        }
    }

    /// Force one reservation back into every table it crossed.
    pub fn restore_reservation(&self, snap: &SnapReservation) {
        let id = ReservationId(snap.id);
        let interval = Interval::new(Timestamp(snap.start), Timestamp(snap.end));
        let state = if snap.state == STATE_COMMITTED {
            ResState::Committed
        } else {
            ResState::Held
        };
        let segment = PathSegment {
            ingress_peer: snap.ingress.clone(),
            egress_peer: snap.egress.clone(),
        };
        if let Some(peer) = &segment.ingress_peer {
            if let Some(t) = self.ingress_table(peer) {
                lock(&t).restore(id, interval, snap.rate_bps, state);
            }
        }
        lock(&self.local).restore(id, interval, snap.rate_bps, state);
        if let Some(peer) = &segment.egress_peer {
            if let Some(t) = self.egress_table(peer) {
                lock(&t).restore(id, interval, snap.rate_bps, state);
            }
        }
        lock(self.meta_stripe(id)).insert(
            id,
            ResMeta {
                interval,
                rate_bps: snap.rate_bps,
                segment,
            },
        );
    }

    fn restore_transition(&self, id: ReservationId, state: ResState) {
        let Some(meta) = lock(self.meta_stripe(id)).get(&id).cloned() else {
            return;
        };
        if let Some(peer) = &meta.segment.ingress_peer {
            if let Some(t) = self.ingress_table(peer) {
                lock(&t).restore_state(id, state);
            }
        }
        lock(&self.local).restore_state(id, state);
        if let Some(peer) = &meta.segment.egress_peer {
            if let Some(t) = self.egress_table(peer) {
                lock(&t).restore_state(id, state);
            }
        }
    }

    /// Re-record one recovered invoice, skipping exact duplicates — the
    /// one restore that is not naturally idempotent, because billing is
    /// append-only and `(payer, payee, reservation)` settles once.
    pub fn restore_invoice(&self, snap: &SnapInvoice) {
        let invoice = Invoice {
            payer: snap.payer.clone(),
            payee: snap.payee.clone(),
            reservation: snap.reservation,
            amount: snap.amount,
        };
        let mut billing = lock(&self.billing);
        if billing.invoices().contains(&invoice) {
            return;
        }
        billing.record(invoice);
    }

    /// Restore everything a snapshot carries for this layer
    /// (reservations + invoices; tickets belong to the transport).
    pub fn restore_snapshot(&self, snapshot: &LedgerSnapshot) {
        for r in &snapshot.reservations {
            self.restore_reservation(r);
        }
        for i in &snapshot.invoices {
            self.restore_invoice(i);
        }
    }

    /// Flatten the live (non-released) reservation set into snapshot
    /// rows, in id order.
    pub fn export_reservations(&self) -> Vec<SnapReservation> {
        let rows: Vec<_> = {
            let local = lock(&self.local);
            local.iter_active().collect()
        };
        rows.into_iter()
            .map(|(id, interval, rate_bps, state)| {
                let segment = lock(self.meta_stripe(id))
                    .get(&id)
                    .map(|m| m.segment.clone())
                    .unwrap_or_default();
                SnapReservation {
                    id: id.0,
                    start: interval.start.0,
                    end: interval.end.0,
                    rate_bps,
                    state: if state == ResState::Committed {
                        STATE_COMMITTED
                    } else {
                        STATE_HELD
                    },
                    ingress: segment.ingress_peer,
                    egress: segment.egress_peer,
                }
            })
            .collect()
    }

    /// Invoices in canonical (sorted) order — replay order and live
    /// order may differ, so snapshots and digests always sort.
    pub fn export_invoices(&self) -> Vec<SnapInvoice> {
        let mut out: Vec<SnapInvoice> = lock(&self.billing)
            .invoices()
            .iter()
            .map(|i| SnapInvoice {
                payer: i.payer.clone(),
                payee: i.payee.clone(),
                reservation: i.reservation,
                amount: i.amount,
            })
            .collect();
        out.sort_by(|a, b| {
            (&a.payer, &a.payee, a.reservation, a.amount).cmp(&(
                &b.payer,
                &b.payee,
                b.reservation,
                b.amount,
            ))
        });
        out
    }

    /// Everything this layer contributes to a snapshot captured at
    /// WAL sequence `seq`.
    pub fn export_snapshot(&self, seq: u64) -> LedgerSnapshot {
        LedgerSnapshot {
            seq,
            ticket_key: None,
            reservations: self.export_reservations(),
            invoices: self.export_invoices(),
            tickets: Vec::new(),
        }
    }

    /// SHA-256 over the canonical encoding of the active reservation
    /// set and sorted invoices. The kill -9 recovery gate asserts this
    /// is byte-identical between a killed-and-restarted broker and a
    /// never-killed control run.
    pub fn ledger_digest(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        for r in self.export_reservations() {
            h.update(&qos_wire::to_bytes(&r));
        }
        for i in self.export_invoices() {
            h.update(&qos_wire::to_bytes(&i));
        }
        h.finalize()
    }

    /// `(active, committed, invoices, committed_bps_at_t)` — the
    /// `/storage` admin endpoint's ledger summary line.
    pub fn ledger_summary(&self, t: Timestamp) -> (u64, u64, u64, u64) {
        let (mut active, mut committed, mut committed_bps) = (0u64, 0u64, 0u64);
        {
            let local = lock(&self.local);
            for (_, interval, rate, state) in local.iter_active() {
                active += 1;
                if state == ResState::Committed {
                    committed += 1;
                    if interval.contains(t) {
                        committed_bps += rate;
                    }
                }
            }
        }
        let invoices = lock(&self.billing).invoices().len() as u64;
        (active, committed, invoices, committed_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sla::Sls;
    use qos_crypto::{CertificateAuthority, DistinguishedName, KeyPair, Validity};
    use std::sync::Arc;

    const MBPS: u64 = 1_000_000;

    fn sla(up: &str, down: &str, rate: u64) -> Sla {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("RootCA"),
            KeyPair::from_seed(b"ca"),
        );
        let root = ca.self_signed();
        let peer = ca.issue_identity(
            DistinguishedName::broker(up),
            KeyPair::from_seed(up.as_bytes()).public(),
            Validity::unbounded(),
        );
        Sla {
            upstream: up.into(),
            downstream: down.into(),
            sls: Sls::strict(rate),
            peer_cert: peer,
            ca_cert: root,
            price_per_mbps_sec: 1,
        }
    }

    #[test]
    fn meta_striping_is_total() {
        for id in 0..1000u64 {
            let book = SlaBook::new("d", MBPS);
            assert!(book.meta_stripe(ReservationId(id)) as *const _ as usize != 0);
        }
    }

    #[test]
    fn concurrent_holds_share_one_capacity_pool() {
        // 8 threads race 64 holds of 1 Mb/s each against a 32 Mb/s local
        // pool: exactly 32 must succeed, whatever the interleaving — the
        // book shares capacity instead of splitting it per shard.
        let book = Arc::new(SlaBook::new("domain-b", 32 * MBPS));
        let iv = Interval::new(Timestamp(0), Timestamp(100));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let b = Arc::clone(&book);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0u64;
                for i in 0..8u64 {
                    if b.hold(ReservationId(t * 8 + i), iv, MBPS, PathSegment::default())
                        .is_ok()
                    {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let granted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(granted, 32);
        assert_eq!(book.available_bw_at(Timestamp(10)), 0);
    }

    #[test]
    fn concurrent_commit_release_lifecycle() {
        let book = Arc::new(SlaBook::new("domain-b", 100 * MBPS));
        book.add_ingress_sla(sla("domain-a", "domain-b", 100 * MBPS));
        book.add_egress_sla(sla("domain-b", "domain-c", 100 * MBPS));
        let iv = Interval::new(Timestamp(0), Timestamp(100));
        let seg = PathSegment {
            ingress_peer: Some("domain-a".into()),
            egress_peer: Some("domain-c".into()),
        };
        for i in 0..16u64 {
            book.hold(ReservationId(i), iv, MBPS, seg.clone()).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let b = Arc::clone(&book);
            handles.push(std::thread::spawn(move || {
                for i in 0..4u64 {
                    let id = ReservationId(t * 4 + i);
                    if t % 2 == 0 {
                        b.commit(id).unwrap();
                    } else {
                        b.release(id).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Two threads committed 8, two released 8.
        assert_eq!(book.available_bw_at(Timestamp(10)), 92 * MBPS);
        assert_eq!(
            book.admitted_ingress_aggregate("domain-a", Timestamp(10)),
            8 * MBPS
        );
    }
}
