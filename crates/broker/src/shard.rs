//! The striped, shareable bandwidth ledger behind [`BrokerCore`].
//!
//! One [`SlaBook`] per administrative domain, shared by every admission
//! shard of that domain's broker (DESIGN.md §D11). The serialized
//! `BrokerCore` of earlier revisions owned its tables outright; with N
//! admission shards racing on one domain's capacity, the book instead
//! stripes its state so shards only contend where they genuinely touch
//! the same resource:
//!
//! * each reservation table (local capacity, one per ingress SLA, one
//!   per egress SLA) sits behind its own mutex — a hold crossing
//!   `a → self → c` never blocks a hold crossing `b → self → d`;
//! * reservation metadata is striped by id hash across
//!   [`LEDGER_STRIPES`] mutexes;
//! * the SLA contract maps are read-mostly (`RwLock`, written only
//!   during topology setup);
//! * billing appends go through one dedicated mutex (cold path).
//!
//! Locks are only ever taken **one at a time** — every operation
//! acquires a table, updates it, and releases it before touching the
//! next (the hold path reconciles a mid-sequence failure by releasing
//! the tables it already holds, exactly like the serialized rollback).
//! No nested acquisition means no lock-order discipline to violate and
//! no possibility of deadlock between shards.
//!
//! Capacity is deliberately **not** partitioned per shard: every shard
//! admits against the same tables, so the committed bandwidth after a
//! run is identical for 1 shard or N — the parity invariant the
//! transport experiment gates on.

use crate::billing::{BillingLedger, Invoice};
use crate::broker::{BrokerError, PathSegment};
use crate::reservations::{AdmissionError, Interval, ResState, ReservationId, ReservationTable};
use crate::sla::Sla;
use qos_crypto::Timestamp;
use qos_telemetry::{Counter, Telemetry};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Metadata stripes: enough that shards working distinct reservations
/// rarely collide, small enough to stay cache-friendly.
pub const LEDGER_STRIPES: usize = 8;

#[derive(Debug, Clone)]
pub(crate) struct ResMeta {
    pub(crate) interval: Interval,
    pub(crate) rate_bps: u64,
    pub(crate) segment: PathSegment,
}

/// Life-cycle counters for one resource core (detached no-ops by
/// default). `Counter` handles are internally `Arc`'d, so every shard's
/// increments land in the same cells.
#[derive(Default)]
pub(crate) struct CoreCounters {
    pub(crate) holds_ok: Counter,
    pub(crate) holds_refused: Counter,
    pub(crate) commits: Counter,
    pub(crate) releases: Counter,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A domain's striped bandwidth ledger: reservation tables, SLA
/// contracts, reservation metadata, and billing, all independently
/// lockable so N admission shards share one book without serializing on
/// a single big lock.
pub struct SlaBook {
    domain: String,
    local: Mutex<ReservationTable>,
    ingress: RwLock<HashMap<String, Arc<Mutex<ReservationTable>>>>,
    egress: RwLock<HashMap<String, Arc<Mutex<ReservationTable>>>>,
    slas_in: RwLock<HashMap<String, Sla>>,
    slas_out: RwLock<HashMap<String, Sla>>,
    meta: [Mutex<HashMap<ReservationId, ResMeta>>; LEDGER_STRIPES],
    billing: Mutex<BillingLedger>,
    counters: RwLock<CoreCounters>,
}

impl SlaBook {
    /// A ledger managing `local_capacity_bps` of internal EF capacity.
    pub fn new(domain: &str, local_capacity_bps: u64) -> Self {
        Self {
            domain: domain.to_string(),
            local: Mutex::new(ReservationTable::new(local_capacity_bps)),
            ingress: RwLock::new(HashMap::new()),
            egress: RwLock::new(HashMap::new()),
            slas_in: RwLock::new(HashMap::new()),
            slas_out: RwLock::new(HashMap::new()),
            meta: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            billing: Mutex::new(BillingLedger::new()),
            counters: RwLock::new(CoreCounters::default()),
        }
    }

    /// The domain this ledger accounts for.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    pub(crate) fn set_telemetry(&self, telemetry: &Telemetry) {
        let d = self.domain.clone();
        *self.counters.write().unwrap_or_else(|e| e.into_inner()) = CoreCounters {
            holds_ok: telemetry.counter(
                "broker_holds_total",
                "Two-phase capacity holds by outcome",
                &[("domain", &d), ("decision", "held")],
            ),
            holds_refused: telemetry.counter(
                "broker_holds_total",
                "Two-phase capacity holds by outcome",
                &[("domain", &d), ("decision", "refused")],
            ),
            commits: telemetry.counter(
                "broker_commits_total",
                "Held reservations committed after end-to-end approval",
                &[("domain", &d)],
            ),
            releases: telemetry.counter(
                "broker_releases_total",
                "Reservations released (denial, cancellation, or expiry)",
                &[("domain", &d)],
            ),
        };
    }

    fn counter(&self, pick: impl FnOnce(&CoreCounters) -> &Counter) -> Counter {
        pick(&self.counters.read().unwrap_or_else(|e| e.into_inner())).clone()
    }

    fn meta_stripe(&self, id: ReservationId) -> &Mutex<HashMap<ReservationId, ResMeta>> {
        &self.meta[(id.0 as usize) % LEDGER_STRIPES]
    }

    fn ingress_table(&self, peer: &str) -> Option<Arc<Mutex<ReservationTable>>> {
        self.ingress
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(peer)
            .cloned()
    }

    fn egress_table(&self, peer: &str) -> Option<Arc<Mutex<ReservationTable>>> {
        self.egress
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(peer)
            .cloned()
    }

    pub(crate) fn add_ingress_sla(&self, sla: Sla) {
        debug_assert_eq!(sla.downstream, self.domain);
        self.ingress
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                sla.upstream.clone(),
                Arc::new(Mutex::new(ReservationTable::new(
                    sla.sls.committed_rate_bps,
                ))),
            );
        self.slas_in
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(sla.upstream.clone(), sla);
    }

    pub(crate) fn add_egress_sla(&self, sla: Sla) {
        debug_assert_eq!(sla.upstream, self.domain);
        self.egress
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                sla.downstream.clone(),
                Arc::new(Mutex::new(ReservationTable::new(
                    sla.sls.committed_rate_bps,
                ))),
            );
        self.slas_out
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(sla.downstream.clone(), sla);
    }

    pub(crate) fn ingress_sla(&self, peer: &str) -> Option<Sla> {
        self.slas_in
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(peer)
            .cloned()
    }

    pub(crate) fn egress_sla(&self, peer: &str) -> Option<Sla> {
        self.slas_out
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(peer)
            .cloned()
    }

    pub(crate) fn record_invoice(&self, invoice: Invoice) {
        lock(&self.billing).record(invoice);
    }

    pub(crate) fn invoices(&self) -> Vec<Invoice> {
        lock(&self.billing).invoices().to_vec()
    }

    pub(crate) fn balances(&self) -> BTreeMap<String, i128> {
        lock(&self.billing).balances()
    }

    pub(crate) fn hold(
        &self,
        id: ReservationId,
        interval: Interval,
        rate_bps: u64,
        segment: PathSegment,
    ) -> Result<(), BrokerError> {
        let result = self.hold_inner(id, interval, rate_bps, segment);
        match &result {
            Ok(()) => self.counter(|c| &c.holds_ok).inc(),
            Err(_) => self.counter(|c| &c.holds_refused).inc(),
        }
        result
    }

    fn hold_inner(
        &self,
        id: ReservationId,
        interval: Interval,
        rate_bps: u64,
        segment: PathSegment,
    ) -> Result<(), BrokerError> {
        // Ingress SLA check.
        if let Some(peer) = &segment.ingress_peer {
            let table = self
                .ingress_table(peer)
                .ok_or_else(|| BrokerError::NoSla { peer: peer.clone() })?;
            lock(&table)
                .hold(id, interval, rate_bps)
                .map_err(|source| BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                })?;
        }
        // Local capacity check.
        if let Err(e) = lock(&self.local).hold(id, interval, rate_bps) {
            if let Some(peer) = &segment.ingress_peer {
                if let Some(t) = self.ingress_table(peer) {
                    let _ = lock(&t).release(id);
                }
            }
            return Err(BrokerError::Local(e));
        }
        // Egress SLA check.
        if let Some(peer) = &segment.egress_peer {
            let Some(table) = self.egress_table(peer) else {
                self.rollback_partial(id, &segment, /*egress_held=*/ false);
                return Err(BrokerError::NoSla { peer: peer.clone() });
            };
            let held = lock(&table).hold(id, interval, rate_bps);
            if let Err(source) = held {
                self.rollback_partial(id, &segment, false);
                return Err(BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                });
            }
        }
        lock(self.meta_stripe(id)).insert(
            id,
            ResMeta {
                interval,
                rate_bps,
                segment,
            },
        );
        Ok(())
    }

    fn rollback_partial(&self, id: ReservationId, segment: &PathSegment, egress_held: bool) {
        let _ = lock(&self.local).release(id);
        if let Some(peer) = &segment.ingress_peer {
            if let Some(t) = self.ingress_table(peer) {
                let _ = lock(&t).release(id);
            }
        }
        if egress_held {
            if let Some(peer) = &segment.egress_peer {
                if let Some(t) = self.egress_table(peer) {
                    let _ = lock(&t).release(id);
                }
            }
        }
    }

    /// Apply `f` to every table the reservation crosses, in the fixed
    /// ingress → local → egress order (one lock at a time).
    fn for_each_table(
        &self,
        id: ReservationId,
        f: impl Fn(&mut ReservationTable, ReservationId) -> Result<(), AdmissionError>,
    ) -> Result<(), BrokerError> {
        let meta = lock(self.meta_stripe(id))
            .get(&id)
            .cloned()
            .ok_or(BrokerError::Unknown(id))?;
        if let Some(peer) = &meta.segment.ingress_peer {
            if let Some(t) = self.ingress_table(peer) {
                f(&mut lock(&t), id).map_err(|source| BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                })?;
            }
        }
        f(&mut lock(&self.local), id).map_err(BrokerError::Local)?;
        if let Some(peer) = &meta.segment.egress_peer {
            if let Some(t) = self.egress_table(peer) {
                f(&mut lock(&t), id).map_err(|source| BrokerError::Sla {
                    peer: peer.clone(),
                    source,
                })?;
            }
        }
        Ok(())
    }

    pub(crate) fn commit(&self, id: ReservationId) -> Result<(), BrokerError> {
        let result = self.for_each_table(id, |t, id| t.commit(id));
        if result.is_ok() {
            self.counter(|c| &c.commits).inc();
        }
        result
    }

    pub(crate) fn release(&self, id: ReservationId) -> Result<(), BrokerError> {
        let result = self.for_each_table(id, |t, id| t.release(id));
        if result.is_ok() {
            self.counter(|c| &c.releases).inc();
        }
        result
    }

    pub(crate) fn state(&self, id: ReservationId) -> Option<ResState> {
        lock(&self.local).state(id)
    }

    pub(crate) fn info(&self, id: ReservationId) -> Option<(Interval, u64, PathSegment)> {
        lock(self.meta_stripe(id))
            .get(&id)
            .map(|m| (m.interval, m.rate_bps, m.segment.clone()))
    }

    pub(crate) fn available_bw_at(&self, t: Timestamp) -> u64 {
        lock(&self.local).available_at(t)
    }

    pub(crate) fn admitted_ingress_aggregate(&self, peer: &str, t: Timestamp) -> u64 {
        self.ingress_table(peer)
            .map(|table| lock(&table).admitted_aggregate_at(t))
            .unwrap_or(0)
    }

    pub(crate) fn reservation_active_at(&self, id: ReservationId, t: Timestamp) -> bool {
        lock(&self.local).active_at(id, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sla::Sls;
    use qos_crypto::{CertificateAuthority, DistinguishedName, KeyPair, Validity};
    use std::sync::Arc;

    const MBPS: u64 = 1_000_000;

    fn sla(up: &str, down: &str, rate: u64) -> Sla {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("RootCA"),
            KeyPair::from_seed(b"ca"),
        );
        let root = ca.self_signed();
        let peer = ca.issue_identity(
            DistinguishedName::broker(up),
            KeyPair::from_seed(up.as_bytes()).public(),
            Validity::unbounded(),
        );
        Sla {
            upstream: up.into(),
            downstream: down.into(),
            sls: Sls::strict(rate),
            peer_cert: peer,
            ca_cert: root,
            price_per_mbps_sec: 1,
        }
    }

    #[test]
    fn meta_striping_is_total() {
        for id in 0..1000u64 {
            let book = SlaBook::new("d", MBPS);
            assert!(book.meta_stripe(ReservationId(id)) as *const _ as usize != 0);
        }
    }

    #[test]
    fn concurrent_holds_share_one_capacity_pool() {
        // 8 threads race 64 holds of 1 Mb/s each against a 32 Mb/s local
        // pool: exactly 32 must succeed, whatever the interleaving — the
        // book shares capacity instead of splitting it per shard.
        let book = Arc::new(SlaBook::new("domain-b", 32 * MBPS));
        let iv = Interval::new(Timestamp(0), Timestamp(100));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let b = Arc::clone(&book);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0u64;
                for i in 0..8u64 {
                    if b.hold(ReservationId(t * 8 + i), iv, MBPS, PathSegment::default())
                        .is_ok()
                    {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let granted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(granted, 32);
        assert_eq!(book.available_bw_at(Timestamp(10)), 0);
    }

    #[test]
    fn concurrent_commit_release_lifecycle() {
        let book = Arc::new(SlaBook::new("domain-b", 100 * MBPS));
        book.add_ingress_sla(sla("domain-a", "domain-b", 100 * MBPS));
        book.add_egress_sla(sla("domain-b", "domain-c", 100 * MBPS));
        let iv = Interval::new(Timestamp(0), Timestamp(100));
        let seg = PathSegment {
            ingress_peer: Some("domain-a".into()),
            egress_peer: Some("domain-c".into()),
        };
        for i in 0..16u64 {
            book.hold(ReservationId(i), iv, MBPS, seg.clone()).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let b = Arc::clone(&book);
            handles.push(std::thread::spawn(move || {
                for i in 0..4u64 {
                    let id = ReservationId(t * 4 + i);
                    if t % 2 == 0 {
                        b.commit(id).unwrap();
                    } else {
                        b.release(id).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Two threads committed 8, two released 8.
        assert_eq!(book.available_bw_at(Timestamp(10)), 92 * MBPS);
        assert_eq!(
            book.admitted_ingress_aggregate("domain-a", Timestamp(10)),
            8 * MBPS
        );
    }
}
