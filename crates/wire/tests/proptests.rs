//! Property tests: round-trip and strictness of the canonical codec.

use proptest::prelude::*;
use qos_wire::{from_bytes, to_bytes, WireError};

#[derive(Debug, Clone, PartialEq)]
struct Blob {
    id: u64,
    name: String,
    payload: Vec<u8>,
    children: Vec<String>,
    note: Option<String>,
    flag: bool,
}
qos_wire::impl_wire_struct!(Blob {
    id,
    name,
    payload,
    children,
    note,
    flag
});

fn arb_blob() -> impl Strategy<Value = Blob> {
    (
        any::<u64>(),
        ".{0,40}",
        proptest::collection::vec(any::<u8>(), 0..200),
        proptest::collection::vec(".{0,10}", 0..8),
        proptest::option::of(".{0,10}"),
        any::<bool>(),
    )
        .prop_map(|(id, name, payload, children, note, flag)| Blob {
            id,
            name,
            payload,
            children,
            note,
            flag,
        })
}

proptest! {
    /// Decoding the encoding yields the original value.
    #[test]
    fn round_trip(blob in arb_blob()) {
        let bytes = to_bytes(&blob);
        prop_assert_eq!(from_bytes::<Blob>(&bytes).unwrap(), blob);
    }

    /// Encoding is deterministic: equal values, equal bytes.
    #[test]
    fn deterministic(blob in arb_blob()) {
        prop_assert_eq!(to_bytes(&blob), to_bytes(&blob.clone()));
    }

    /// Every strict prefix of a valid encoding fails to decode.
    #[test]
    fn prefixes_fail(blob in arb_blob()) {
        let bytes = to_bytes(&blob);
        // Sample a handful of cut points to keep the test fast.
        for cut in [0, bytes.len() / 3, bytes.len() / 2, bytes.len().saturating_sub(1)] {
            if cut < bytes.len() {
                prop_assert!(from_bytes::<Blob>(&bytes[..cut]).is_err());
            }
        }
    }

    /// Appending any byte to a valid encoding fails decoding (no silent
    /// acceptance of trailing data under a signature).
    #[test]
    fn suffixes_fail(blob in arb_blob(), extra in any::<u8>()) {
        let mut bytes = to_bytes(&blob);
        bytes.push(extra);
        prop_assert_eq!(from_bytes::<Blob>(&bytes), Err(WireError::TrailingBytes(1)));
    }

    /// Decoding arbitrary bytes never panics — it either yields a value or
    /// a structured error.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = from_bytes::<Blob>(&bytes);
        let _ = from_bytes::<Vec<String>>(&bytes);
        let _ = from_bytes::<Option<u64>>(&bytes);
    }

    /// u64 encodes to exactly 8 bytes, round-trips exactly.
    #[test]
    fn u64_exact(v in any::<u64>()) {
        let bytes = to_bytes(&v);
        prop_assert_eq!(bytes.len(), 8);
        prop_assert_eq!(from_bytes::<u64>(&bytes).unwrap(), v);
    }
}
