//! `Encode`/`Decode` implementations for primitives and std containers.

use crate::{Decode, Encode, Reader, WireError, Writer};

macro_rules! impl_int {
    ($($t:ty => $put:ident, $get:ident;)*) => {$(
        impl Encode for $t {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    )*};
}

impl_int! {
    u8  => put_u8,  get_u8;
    u16 => put_u16, get_u16;
    u32 => put_u32, get_u32;
    u64 => put_u64, get_u64;
    i64 => put_i64, get_i64;
    f64 => put_f64, get_f64;
    bool => put_bool, get_bool;
}

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = r.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::LengthOverflow(v))
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_str()
    }
}

impl Encode for str {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

/// Sequences encode as a `u32` element count followed by each element.
///
/// For `Vec<u8>` this is byte-identical to `Writer::put_bytes` (a `u32`
/// length followed by the raw bytes), so byte strings need no special case.
impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        encode_seq(self, w)
    }
}

/// Encode any slice as a canonical sequence.
pub fn encode_seq<T: Encode>(items: &[T], w: &mut Writer) {
    let len = u32::try_from(items.len()).expect("sequence longer than u32::MAX");
    w.put_u32(len);
    for item in items {
        item.encode(w);
    }
}

/// Decode a canonical sequence into a vector.
pub fn decode_seq<T: Decode>(r: &mut Reader<'_>) -> Result<Vec<T>, WireError> {
    let len = r.get_seq_len()?;
    let mut out = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        decode_seq(r)
    }
}

/// Options encode as a presence tag byte (0 = none, 1 = some).
impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, w: &mut Writer) {
        (*self).encode(w);
    }
}

impl<T: Encode> Encode for Box<T> {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
}

impl<T: Decode> Decode for Box<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use crate::{from_bytes, to_bytes};

    #[test]
    fn vec_u8_uses_raw_byte_encoding() {
        // 3 bytes of payload => 4-byte length + payload, not per-element.
        let v: Vec<u8> = vec![9, 8, 7];
        assert_eq!(to_bytes(&v), vec![3, 0, 0, 0, 9, 8, 7]);
    }

    #[test]
    fn option_round_trip() {
        for v in [None, Some(77u64)] {
            assert_eq!(from_bytes::<Option<u64>>(&to_bytes(&v)).unwrap(), v);
        }
    }

    #[test]
    fn nested_vec_round_trip() {
        let v = vec![vec!["a".to_string()], vec![], vec!["b".into(), "c".into()]];
        assert_eq!(from_bytes::<Vec<Vec<String>>>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn tuple_round_trip() {
        let v = (5u32, "x".to_string());
        assert_eq!(from_bytes::<(u32, String)>(&to_bytes(&v)).unwrap(), v);
    }
}
