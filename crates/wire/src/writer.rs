//! Canonical byte writer.

/// Append-only buffer producing the canonical encoding.
///
/// All multi-byte integers are little-endian; all variable-length data is
/// `u32` length-prefixed.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        // Construction-time; encode paths reuse writers/scratches.
        #[allow(clippy::disallowed_methods)]
        Self { buf: Vec::new() }
    }

    /// Create a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Create a writer that appends to `buf`, reusing its allocation.
    /// Existing bytes are kept; [`Writer::into_bytes`] returns them with
    /// the encoding appended.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// View the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write a single raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64` (little-endian two's complement).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern.
    ///
    /// NaN payloads are normalized to the canonical quiet NaN so that the
    /// encoding stays deterministic across NaN representations.
    pub fn put_f64(&mut self, v: f64) {
        let canonical = if v.is_nan() { f64::NAN } else { v };
        self.buf
            .extend_from_slice(&canonical.to_bits().to_le_bytes());
    }

    /// Write a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write raw bytes without a length prefix (caller manages framing).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write `u32`-length-prefixed bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len()` exceeds `u32::MAX` — far beyond any message
    /// this protocol produces.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("byte string longer than u32::MAX");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
    }

    /// Write a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_little_endian() {
        let mut w = Writer::new();
        w.put_u32(0x0102_0304);
        assert_eq!(w.as_bytes(), &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn bytes_are_length_prefixed() {
        let mut w = Writer::new();
        w.put_bytes(b"hi");
        assert_eq!(w.as_bytes(), &[2, 0, 0, 0, b'h', b'i']);
    }

    #[test]
    fn nan_is_canonicalized() {
        let mut a = Writer::new();
        let mut b = Writer::new();
        a.put_f64(f64::NAN);
        b.put_f64(f64::from_bits(f64::NAN.to_bits() | 1));
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}
