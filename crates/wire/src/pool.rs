//! Pooled read buffers for the transport hot path (DESIGN.md §D15).
//!
//! The warm admit/deny round trip used to pay one heap allocation per
//! frame just to *hold bytes that already existed*: the socket read
//! landed in a stack buffer, was copied into the decoder's `Vec`, and
//! each completed frame was copied out into a fresh `Vec`. A
//! [`BufferPool`] replaces that with a ring of reusable 64 KiB chunks:
//! the socket reads straight into the current chunk, completed frames
//! are handed out as [`FrameRef`] slices *into* the chunk, and the chunk
//! returns to the pool when its handle drops.
//!
//! ## Lifecycle and borrow rules
//!
//! * A chunk is exclusively owned by whoever holds its [`PoolChunk`]
//!   handle (one per connection decoder); the pool itself is
//!   reference-counted, so reclaim is just "handle dropped → chunk back
//!   on the free list".
//! * Frames borrow from the chunk (`FrameRef<'a>`), so the borrow
//!   checker statically guarantees a frame is fully consumed before the
//!   decoder may overwrite or recycle the bytes — there is no runtime
//!   refcount per frame to get wrong.
//! * Anything that must outlive the sweep (e.g. a message crossing a
//!   shard queue) is copied out explicitly; the fast path never is.
//!
//! ## Owned fallback
//!
//! Pooling is an optimization, never a correctness requirement. The
//! decoder falls back to a plain owned `Vec` — bumping
//! `buffer_pool_fallbacks_total` — when (a) the pool is exhausted
//! (`max_chunks` handles outstanding) or (b) a single frame is too large
//! to ever fit in one chunk. Fallback frames still come out as
//! [`FrameRef`]s, so callers cannot observe the difference (the
//! borrowed-≡-owned proptests pin this).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Size of one pooled chunk. 64 KiB matches the read size the reactor
/// has always used per `read(2)` call, and comfortably holds a sweep's
/// worth of typical signalling frames (a depth-8 envelope is ~4 KiB).
pub const POOL_CHUNK_SIZE: usize = 64 * 1024;

struct PoolShared {
    free: Mutex<Vec<Box<[u8]>>>,
    max_chunks: usize,
    in_use: AtomicUsize,
    fallbacks: AtomicU64,
}

/// A process- or reactor-scoped ring of reusable read chunks.
///
/// Cloning is cheap (`Arc` bump); all clones share the same free list
/// and counters.
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<PoolShared>,
}

impl BufferPool {
    /// A pool that will hand out at most `max_chunks` chunks at a time.
    pub fn new(max_chunks: usize) -> Self {
        // One-time construction; chunks themselves are recycled.
        #[allow(clippy::disallowed_methods)]
        BufferPool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(Vec::new()),
                max_chunks,
                in_use: AtomicUsize::new(0),
                fallbacks: AtomicU64::new(0),
            }),
        }
    }

    /// Take a chunk, reusing a reclaimed one when available. Returns
    /// `None` when `max_chunks` handles are already outstanding — the
    /// caller must fall back to an owned buffer (and should call
    /// [`BufferPool::note_fallback`]).
    pub fn acquire(&self) -> Option<PoolChunk> {
        let s = &self.shared;
        // Reserve a slot first so concurrent acquires cannot overshoot.
        let mut held = s.in_use.load(Ordering::Relaxed);
        loop {
            if held >= s.max_chunks {
                return None;
            }
            match s.in_use.compare_exchange_weak(
                held,
                held + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => held = cur,
            }
        }
        let recycled = s.free.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let buf = recycled.unwrap_or_else(|| vec![0u8; POOL_CHUNK_SIZE].into_boxed_slice());
        Some(PoolChunk {
            buf,
            shared: Arc::clone(s),
        })
    }

    /// Chunks currently handed out (the `buffer_pool_chunks_in_use`
    /// gauge).
    pub fn chunks_in_use(&self) -> usize {
        self.shared.in_use.load(Ordering::Relaxed)
    }

    /// Times a caller had to fall back to an owned buffer (the
    /// `buffer_pool_fallbacks_total` counter).
    pub fn fallbacks(&self) -> u64 {
        self.shared.fallbacks.load(Ordering::Relaxed)
    }

    /// Record one owned-buffer fallback.
    pub fn note_fallback(&self) {
        self.shared.fallbacks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Exclusive handle to one pooled chunk. Dropping it returns the chunk
/// to its pool's free list.
pub struct PoolChunk {
    buf: Box<[u8]>,
    shared: Arc<PoolShared>,
}

impl PoolChunk {
    /// The chunk's bytes (always [`POOL_CHUNK_SIZE`] long).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Mutable access for the socket read path.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PoolChunk {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        let s = &self.shared;
        s.free.lock().unwrap_or_else(|e| e.into_inner()).push(buf);
        s.in_use.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A decoded frame, borrowed from wherever its bytes already live — a
/// pooled chunk on the fast path, the decoder's owned fallback buffer
/// otherwise. Replaces the per-frame `Vec` the legacy decoder returned.
#[derive(Debug, Clone, Copy)]
pub struct FrameRef<'a> {
    bytes: &'a [u8],
    pooled: bool,
}

impl<'a> FrameRef<'a> {
    /// A frame view into a pooled chunk.
    pub fn pooled(bytes: &'a [u8]) -> Self {
        FrameRef {
            bytes,
            pooled: true,
        }
    }

    /// A frame view into an owned fallback buffer.
    pub fn fallback(bytes: &'a [u8]) -> Self {
        FrameRef {
            bytes,
            pooled: false,
        }
    }

    /// The frame payload (without the length prefix).
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Whether the bytes live in a pooled chunk (`false` means the
    /// owned fallback produced this frame).
    pub fn is_pooled(&self) -> bool {
        self.pooled
    }
}

impl AsRef<[u8]> for FrameRef<'_> {
    fn as_ref(&self) -> &[u8] {
        self.bytes
    }
}

impl std::ops::Deref for FrameRef<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_recycle_through_the_free_list() {
        let pool = BufferPool::new(2);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        assert_eq!(pool.chunks_in_use(), 2);
        assert!(pool.acquire().is_none(), "pool exhausted at max_chunks");
        drop(a);
        assert_eq!(pool.chunks_in_use(), 1);
        let c = pool.acquire().expect("reclaimed chunk available again");
        assert_eq!(c.as_slice().len(), POOL_CHUNK_SIZE);
        drop(b);
        drop(c);
        assert_eq!(pool.chunks_in_use(), 0);
    }

    #[test]
    fn fallbacks_are_counted() {
        let pool = BufferPool::new(0);
        assert!(pool.acquire().is_none());
        pool.note_fallback();
        pool.note_fallback();
        assert_eq!(pool.fallbacks(), 2);
    }

    #[test]
    fn clones_share_state() {
        let pool = BufferPool::new(1);
        let clone = pool.clone();
        let _held = pool.acquire().unwrap();
        assert!(clone.acquire().is_none());
        assert_eq!(clone.chunks_in_use(), 1);
    }
}
