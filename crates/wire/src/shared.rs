//! Zero-copy views into reference-counted encode buffers.
//!
//! Signed nested messages (the RAR envelope) need the canonical bytes of
//! each layer twice: once when the layer is signed and once for every
//! verification. Re-encoding a depth-`d` envelope at each layer costs
//! `O(d²)` encoding work. [`SharedBytes`] lets a decoder instead hand out
//! sub-slices of the single received buffer, and lets a signer keep the
//! buffer it already produced, so the canonical bytes of a layer are
//! materialized exactly once.

use std::sync::Arc;

/// An immutable byte range backed by a reference-counted buffer.
///
/// Cloning is `O(1)` (an `Arc` bump); equality and hashing are by the
/// viewed bytes, not by buffer identity.
#[derive(Clone)]
pub struct SharedBytes {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl SharedBytes {
    /// Take ownership of an encode buffer as a full-range view.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            buf: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// A sub-range view of an existing shared buffer.
    ///
    /// # Panics
    /// Panics if `start..end` is not a valid range of `buf`.
    pub fn slice_of(buf: Arc<[u8]>, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= buf.len(), "range out of bounds");
        Self { buf, start, end }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl std::ops::Deref for SharedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedBytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subslice_views_same_buffer() {
        let whole = SharedBytes::from_vec(vec![1, 2, 3, 4, 5]);
        let mid = SharedBytes::slice_of(Arc::clone(&whole.buf), 1, 4);
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        assert_eq!(mid.len(), 3);
        assert!(Arc::ptr_eq(&whole.buf, &mid.buf));
    }

    #[test]
    fn equality_is_by_bytes() {
        let a = SharedBytes::from_vec(vec![7, 8]);
        let b = SharedBytes::slice_of(Arc::from(vec![0, 7, 8, 0]), 1, 3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "range out of bounds")]
    fn bad_range_panics() {
        SharedBytes::slice_of(Arc::from(vec![1u8]), 0, 2);
    }
}
