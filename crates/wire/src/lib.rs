//! # qos-wire — deterministic canonical binary codec
//!
//! Every message in the signalling protocol of *"End-to-End Provision of
//! Policy Information for Network QoS"* (HPDC 2001) is digitally signed by
//! the entity that added it. Signatures are computed over bytes, so the
//! protocol needs a **canonical** encoding: the same value must always
//! serialize to the same byte string, on every platform, in every process.
//!
//! This crate provides that encoding:
//!
//! * fixed-width little-endian integers,
//! * `u32` length-prefixed byte strings and sequences,
//! * single-byte tags for options and enum discriminants,
//! * strict decoding (no trailing bytes, no over-long lengths, UTF-8
//!   validation for strings).
//!
//! The encoding is intentionally simple rather than general: it has no
//! schema evolution story and no self-description, because signed protocol
//! messages must be byte-exact and unambiguous above all else.
//!
//! ## Example
//!
//! ```
//! use qos_wire::{from_bytes, to_bytes};
//!
//! #[derive(Debug, PartialEq)]
//! struct Request { user: String, bandwidth_bps: u64 }
//!
//! qos_wire::impl_wire_struct!(Request { user, bandwidth_bps });
//!
//! let r = Request { user: "alice".into(), bandwidth_bps: 10_000_000 };
//! let bytes = to_bytes(&r);
//! assert_eq!(from_bytes::<Request>(&bytes).unwrap(), r);
//! ```

// Zero-alloc hot-path crate (DESIGN.md §D15): the dedicated CI lint
// step loads .clippy-hotpath/clippy.toml, under which this attribute
// rejects un-annotated Vec::new / slice::to_vec anywhere in qos-wire.
#![deny(clippy::disallowed_methods)]

mod error;
mod impls;
mod macros;
mod pool;
mod reader;
mod shared;
mod writer;

pub use error::WireError;
pub use pool::{BufferPool, FrameRef, PoolChunk, POOL_CHUNK_SIZE};
pub use reader::Reader;
pub use shared::SharedBytes;
pub use writer::Writer;

/// A type with a canonical binary encoding.
///
/// Implementations must be **deterministic**: encoding equal values must
/// produce identical byte strings. This property is what makes the encoding
/// usable as the input of digital signatures.
pub trait Encode {
    /// Append the canonical encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encode into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// A type that can be decoded from its canonical binary encoding.
pub trait Decode: Sized {
    /// Decode a value from the front of `r`, advancing its position.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encode `value` into a fresh byte vector.
pub fn to_bytes<T: Encode>(value: &T) -> Vec<u8> {
    value.encode_to_vec()
}

/// Encode `value` onto the end of `buf`, reusing its allocation — the
/// hot-path alternative to [`to_bytes`] for callers that encode many
/// values per pass into one scratch buffer.
pub fn encode_into<T: Encode>(value: &T, buf: &mut Vec<u8>) {
    let mut w = Writer::from_vec(std::mem::take(buf));
    value.encode(&mut w);
    *buf = w.into_bytes();
}

/// Decode a value from `bytes`, requiring that all input is consumed.
///
/// Trailing bytes are an error: a signed message with appended junk must
/// not verify as the original message.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Decode a value from **untrusted** bytes (e.g. a socket frame) with an
/// explicit cap on every length prefix.
///
/// Strict decoding already validates each length against the remaining
/// input before allocating; this variant additionally rejects any single
/// byte-string, string, or sequence claiming more than `max_value_len`
/// elements. Garbage, truncated, or hostile input produces a
/// [`WireError`] — never a panic and never an unbounded allocation.
pub fn from_bytes_limited<T: Decode>(bytes: &[u8], max_value_len: usize) -> Result<T, WireError> {
    let mut r = Reader::new_limited(bytes, max_value_len);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Decode a value from a shared buffer, requiring that all input is
/// consumed.
///
/// Unlike [`from_bytes`], decoders of signed nested messages can retain
/// zero-copy [`SharedBytes`] views of the regions their signatures cover
/// (via [`Reader::shared_span`]), so later verification never re-encodes.
pub fn from_bytes_shared<T: Decode>(bytes: &std::sync::Arc<[u8]>) -> Result<T, WireError> {
    let mut r = Reader::new_shared(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone)]
    struct Nested {
        id: u32,
        tags: Vec<String>,
    }
    crate::impl_wire_struct!(Nested { id, tags });

    #[derive(Debug, PartialEq, Clone)]
    enum Verdict {
        Grant,
        Deny { reason: String },
        Defer(u64),
    }
    crate::impl_wire_enum!(Verdict {
        0 => Grant,
        1 => Deny { reason },
        2 => Defer(t0: u64),
    });

    #[test]
    fn struct_round_trip() {
        let v = Nested {
            id: 7,
            tags: vec!["a".into(), "bb".into()],
        };
        assert_eq!(from_bytes::<Nested>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn enum_round_trip_all_variants() {
        for v in [
            Verdict::Grant,
            Verdict::Deny {
                reason: "no SLA".into(),
            },
            Verdict::Defer(99),
        ] {
            assert_eq!(from_bytes::<Verdict>(&to_bytes(&v)).unwrap(), v);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = to_bytes(&42u32);
        b.push(0);
        assert_eq!(from_bytes::<u32>(&b), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn truncated_input_rejected() {
        let b = to_bytes(&Nested {
            id: 1,
            tags: vec!["x".into()],
        });
        for cut in 0..b.len() {
            assert!(
                from_bytes::<Nested>(&b[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn unknown_enum_tag_rejected() {
        let b = vec![9u8];
        assert_eq!(from_bytes::<Verdict>(&b), Err(WireError::InvalidTag(9)));
    }

    #[test]
    fn shared_decode_round_trips_and_exposes_spans() {
        let v = Nested {
            id: 7,
            tags: vec!["a".into()],
        };
        let buf: std::sync::Arc<[u8]> = to_bytes(&v).into();
        assert_eq!(from_bytes_shared::<Nested>(&buf).unwrap(), v);

        let mut r = Reader::new_shared(&buf);
        let start = r.position();
        let _ = Nested::decode(&mut r).unwrap();
        let span = r.shared_span(start, r.position()).expect("shared-backed");
        assert_eq!(span.as_slice(), &buf[..]);

        // A plain reader over the same bytes yields no spans.
        let bytes = to_bytes(&v);
        assert!(Reader::new(&bytes).shared_span(0, 0).is_none());
    }

    #[test]
    fn limited_reader_caps_honest_looking_lengths() {
        // A 100-element sequence of unit-size elements fits the input,
        // so the remaining-bytes check alone would admit it; the
        // explicit cap still rejects it.
        let v: Vec<u8> = vec![7; 100];
        let b = to_bytes(&v);
        assert_eq!(from_bytes_limited::<Vec<u8>>(&b, 100).unwrap(), v);
        assert_eq!(
            from_bytes_limited::<Vec<u8>>(&b, 99),
            Err(WireError::LengthOverflow(100))
        );
    }

    #[test]
    fn garbage_and_mutated_input_never_panics() {
        // Deterministic mini-fuzz over a representative nested message:
        // every decode of corrupted input must return an error or a
        // value, never panic or over-allocate.
        let valid = to_bytes(&Nested {
            id: 0xABCD,
            tags: vec!["alpha".into(), "beta".into(), "gamma".into()],
        });
        let mut lcg: u64 = 0x1234_5678_9abc_def0;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as usize
        };
        for _ in 0..2000 {
            let mut m = valid.clone();
            match next() % 3 {
                0 => {
                    // Flip a byte.
                    let i = next() % m.len();
                    m[i] ^= (next() % 255 + 1) as u8;
                }
                1 => {
                    // Truncate.
                    m.truncate(next() % m.len());
                }
                _ => {
                    // Pure garbage of arbitrary length.
                    let len = next() % 64;
                    m = (0..len).map(|_| (next() % 256) as u8).collect();
                }
            }
            let _ = from_bytes_limited::<Nested>(&m, 1 << 16);
            let _ = from_bytes::<Nested>(&m);
            let _ = from_bytes::<Verdict>(&m);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = Nested {
            id: 0xDEAD_BEEF,
            tags: vec!["q".into(), "r".into(), "s".into()],
        };
        assert_eq!(to_bytes(&v), to_bytes(&v.clone()));
    }
}
