//! Decoding errors.

use std::fmt;

/// An error produced while decoding canonical bytes.
///
/// Encoding is infallible by construction; only decoding can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete. Carries the number of
    /// additional bytes that were needed.
    UnexpectedEof(usize),
    /// `from_bytes` decoded a complete value but input remained. Carries the
    /// number of unconsumed bytes.
    TrailingBytes(usize),
    /// An enum or option tag byte had no corresponding variant.
    InvalidTag(u8),
    /// A string field contained invalid UTF-8.
    InvalidUtf8,
    /// A length prefix exceeded the remaining input (or the sanity cap),
    /// which would otherwise allow memory-exhaustion on hostile input.
    LengthOverflow(u64),
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof(n) => {
                write!(f, "unexpected end of input ({n} more bytes needed)")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::InvalidTag(t) => write!(f, "invalid enum tag {t}"),
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::LengthOverflow(n) => write!(f, "length prefix {n} exceeds input"),
            WireError::InvalidBool(b) => write!(f, "invalid boolean byte {b}"),
        }
    }
}

impl std::error::Error for WireError {}
