//! Canonical byte reader.

use crate::{SharedBytes, WireError};
use std::sync::Arc;

/// Cursor over an input slice, performing strict canonical decoding.
///
/// A reader may optionally be backed by a reference-counted copy of the
/// same input (see [`Reader::new_shared`]); decoders of signed nested
/// messages use [`Reader::shared_span`] to retain zero-copy views of the
/// exact bytes a signature covers.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
    shared: Option<Arc<[u8]>>,
    /// Upper bound on any single length prefix (bytes, string, or
    /// sequence count). Defaults to the input length — a prefix larger
    /// than the input can never be honest — and can be tightened further
    /// for untrusted socket input via [`Reader::new_limited`].
    max_value_len: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Self {
            input,
            pos: 0,
            shared: None,
            max_value_len: input.len(),
        }
    }

    /// Create a reader over untrusted `input` with an explicit cap on
    /// every length prefix. Decoding fails with
    /// [`WireError::LengthOverflow`] the moment any byte-string, string,
    /// or sequence claims more than `max_value_len` elements, before any
    /// allocation happens.
    pub fn new_limited(input: &'a [u8], max_value_len: usize) -> Self {
        Self {
            input,
            pos: 0,
            shared: None,
            max_value_len,
        }
    }

    /// Create a reader over a shared buffer.
    ///
    /// Positions reported by [`Reader::position`] index into this buffer,
    /// so [`Reader::shared_span`] can return sub-slices of it without
    /// copying.
    pub fn new_shared(input: &'a Arc<[u8]>) -> Self {
        Self {
            input,
            pos: 0,
            shared: Some(Arc::clone(input)),
            max_value_len: input.len(),
        }
    }

    /// A zero-copy view of `start..end` of the input, if this reader is
    /// backed by a shared buffer (`None` for plain [`Reader::new`]
    /// readers). Positions are those reported by [`Reader::position`].
    pub fn shared_span(&self, start: usize, end: usize) -> Option<SharedBytes> {
        self.shared
            .as_ref()
            .map(|buf| SharedBytes::slice_of(Arc::clone(buf), start, end))
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Current position within the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Require that the whole input has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof(n - self.remaining()));
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a boolean byte, rejecting values other than 0/1 so that each
    /// value has exactly one encoding.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::InvalidBool(b)),
        }
    }

    /// Read `u32`-length-prefixed bytes.
    ///
    /// The length is validated against the remaining input *before*
    /// allocating, so hostile length prefixes cannot exhaust memory.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        // The deliberate owned fallback behind `get_bytes_ref`.
        #[allow(clippy::disallowed_methods)]
        Ok(self.get_bytes_ref()?.to_vec())
    }

    /// Borrowed view of `u32`-length-prefixed bytes — the zero-copy
    /// sibling of [`Reader::get_bytes`] for hot-path decoders (D15).
    pub fn get_bytes_ref(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        if len > self.max_value_len || len > self.remaining() {
            return Err(WireError::LengthOverflow(len as u64));
        }
        self.take(len)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        Ok(self.get_str_ref()?.to_string())
    }

    /// Borrowed view of a `u32`-length-prefixed UTF-8 string — the
    /// zero-copy sibling of [`Reader::get_str`].
    pub fn get_str_ref(&mut self) -> Result<&'a str, WireError> {
        let bytes = self.get_bytes_ref()?;
        std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }

    /// Skip `n` bytes without looking at them (borrowed skip-parsers).
    pub fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }

    /// Read a sequence length prefix, validated against a conservative
    /// lower bound of one byte per element.
    pub fn get_seq_len(&mut self) -> Result<usize, WireError> {
        let len = self.get_u32()? as usize;
        if len > self.max_value_len || len > self.remaining() {
            return Err(WireError::LengthOverflow(len as u64));
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocation() {
        // Claims 4 GiB of payload with 0 bytes present.
        let bytes = u32::MAX.to_le_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            r.get_bytes(),
            Err(WireError::LengthOverflow(u32::MAX as u64))
        );
    }

    #[test]
    fn bool_rejects_non_canonical_bytes() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.get_bool(), Err(WireError::InvalidBool(2)));
    }

    #[test]
    fn eof_reports_missing_byte_count() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.get_u64(), Err(WireError::UnexpectedEof(6)));
    }
}
