//! Macros generating `Encode`/`Decode` for user structs and enums.
//!
//! These keep the canonical encoding of protocol messages mechanical:
//! fields are encoded in declaration order, enum variants by an explicit
//! stable tag byte (so reordering variants in source cannot silently change
//! the wire format of signed messages).

/// Implement [`Encode`](crate::Encode) and [`Decode`](crate::Decode) for a
/// struct by encoding its named fields in the listed order.
///
/// ```
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u64, y: u64 }
/// qos_wire::impl_wire_struct!(Point { x, y });
///
/// let p = Point { x: 1, y: 2 };
/// let bytes = qos_wire::to_bytes(&p);
/// assert_eq!(qos_wire::from_bytes::<Point>(&bytes).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_wire_struct {
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Encode for $name {
            fn encode(&self, w: &mut $crate::Writer) {
                $( $crate::Encode::encode(&self.$field, w); )*
            }
        }
        impl $crate::Decode for $name {
            fn decode(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::WireError> {
                Ok($name {
                    $( $field: $crate::Decode::decode(r)?, )*
                })
            }
        }
    };
}

/// Implement [`Encode`](crate::Encode) and [`Decode`](crate::Decode) for an
/// enum with explicit stable tag bytes.
///
/// Supports unit variants, struct variants (`Tag { a, b }`), and tuple
/// variants with explicitly typed positional bindings
/// (`Tag(t0: u64, t1: String)`).
///
/// ```
/// #[derive(Debug, PartialEq)]
/// enum Msg { Ping, Data { len: u32 }, Code(u8) }
/// qos_wire::impl_wire_enum!(Msg {
///     0 => Ping,
///     1 => Data { len },
///     2 => Code(t0: u8),
/// });
///
/// let bytes = qos_wire::to_bytes(&Msg::Code(7));
/// assert_eq!(qos_wire::from_bytes::<Msg>(&bytes).unwrap(), Msg::Code(7));
/// ```
#[macro_export]
macro_rules! impl_wire_enum {
    ($name:ident { $( $tag:literal => $variant:ident $( { $($field:ident),* $(,)? } )? $( ( $($tf:ident : $tt:ty),* $(,)? ) )? ),* $(,)? }) => {
        impl $crate::Encode for $name {
            fn encode(&self, w: &mut $crate::Writer) {
                match self {
                    $(
                        $name::$variant $( { $($field),* } )? $( ( $($tf),* ) )? => {
                            w.put_u8($tag);
                            $( $( $crate::Encode::encode($field, w); )* )?
                            $( $( $crate::Encode::encode($tf, w); )* )?
                        }
                    )*
                }
            }
        }
        impl $crate::Decode for $name {
            fn decode(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::WireError> {
                match r.get_u8()? {
                    $(
                        $tag => Ok($name::$variant
                            $( { $($field: $crate::Decode::decode(r)?),* } )?
                            $( ( $({ let v: $tt = $crate::Decode::decode(r)?; v }),* ) )?
                        ),
                    )*
                    t => Err($crate::WireError::InvalidTag(t)),
                }
            }
        }
    };
}
