//! Recursive-descent parser for the policy language.
//!
//! Grammar (brace-delimited blocks; the paper's figures use indentation
//! pseudo-code, which DESIGN.md transcribes into this concrete syntax):
//!
//! ```text
//! policy  := stmt*
//! stmt    := "if" expr block ("else" (stmt_if | block))?
//!          | "return" ("grant" | "deny" STRING?)
//!          | "attach" IDENT "=" expr
//! block   := "{" stmt* "}"
//! expr    := or_expr
//! or_expr := and_expr ("or" and_expr)*
//! and_expr:= not_expr ("and" not_expr)*
//! not_expr:= "not" not_expr | cmp
//! cmp     := primary (("="|"!="|"<"|"<="|">"|">=") primary)?
//! primary := literal | IDENT ("(" args ")")? | "(" expr ")"
//! ```
//!
//! A bare identifier in value position is an attribute reference; bare
//! identifiers on the right of `=` (e.g. `User = Alice`) fall back to
//! string literals when the environment has no such attribute — this
//! mirrors the figures, which quote nothing.

use crate::ast::{CmpOp, Decision, Expr, Policy, Stmt};
use crate::attr::Value;
use crate::token::{lex, LexError, Token};
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse policy source text into a [`Policy`].
pub fn parse(src: &str) -> Result<Policy, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.stmt()?);
    }
    Ok(Policy {
        stmts,
        source: src.to_string(),
    })
}

/// Bound on distinct policy sources memoized by [`parse_cached`]; real
/// deployments hold a handful of policy files, so the map is cleared
/// outright (not LRU-evicted) in the unlikely event it fills.
const PARSE_CACHE_CAP: usize = 256;

/// Parse policy source text, memoizing the result process-wide.
///
/// The memo is keyed by `sha256(src)`: a daemon restarting with the same
/// scenario (or many brokers sharing one policy file) pays the
/// lexer+parser cost once and clones the AST thereafter. Returns exactly
/// what [`parse`] would; parse *errors* are never cached, so a corrected
/// source re-parses normally.
pub fn parse_cached(src: &str) -> Result<Policy, ParseError> {
    use qos_crypto::sha256::{sha256, Digest};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<Digest, Policy>>> = OnceLock::new();
    let key = sha256(src.as_bytes());
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&key) {
        return Ok(hit.clone());
    }
    let parsed = parse(src)?;
    let mut map = cache.lock().unwrap();
    if map.len() >= PARSE_CACHE_CAP {
        map.clear();
    }
    map.insert(key, parsed.clone());
    Ok(parsed)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.advance() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(ParseError {
                message: format!("expected {want}, found {t}"),
            }),
            None => Err(ParseError {
                message: format!("expected {want}, found end of input"),
            }),
        }
    }

    fn eat(&mut self, want: &Token) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.advance() {
            Some(Token::If) => self.if_tail(),
            Some(Token::Return) => {
                let d = match self.advance() {
                    Some(Token::Grant) => Decision::Grant,
                    Some(Token::Deny) => {
                        let reason = if let Some(Token::Str(_)) = self.peek() {
                            match self.advance() {
                                Some(Token::Str(s)) => Some(s),
                                _ => unreachable!(),
                            }
                        } else {
                            None
                        };
                        Decision::Deny(reason)
                    }
                    other => {
                        return Err(ParseError {
                            message: format!(
                                "expected grant or deny after return, found {}",
                                other.map_or_else(|| "end of input".into(), |t| t.to_string())
                            ),
                        })
                    }
                };
                Ok(Stmt::Return(d))
            }
            Some(Token::Attach) => {
                let key = match self.advance() {
                    Some(Token::Ident(k)) => k,
                    other => {
                        return Err(ParseError {
                            message: format!(
                                "expected attribute name after attach, found {}",
                                other.map_or_else(|| "end of input".into(), |t| t.to_string())
                            ),
                        })
                    }
                };
                self.expect(&Token::Eq)?;
                let value = self.expr()?;
                Ok(Stmt::Attach { key, value })
            }
            other => Err(ParseError {
                message: format!(
                    "expected statement, found {}",
                    other.map_or_else(|| "end of input".into(), |t| t.to_string())
                ),
            }),
        }
    }

    /// Parse the remainder of an `if` after the keyword.
    fn if_tail(&mut self) -> Result<Stmt, ParseError> {
        let cond = self.expr()?;
        let then = self.block()?;
        let otherwise = if self.eat(&Token::Else) {
            if self.eat(&Token::If) {
                vec![self.if_tail()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then,
            otherwise,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.at_end() {
                return Err(ParseError {
                    message: "unterminated block (missing '}')".into(),
                });
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(stmts)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat(&Token::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp()
        }
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.primary()?;
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.primary()?;
        Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)))
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Some(Token::Int(i)) => Ok(Expr::Lit(Value::Int(i))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Token::Bandwidth(b)) => Ok(Expr::Lit(Value::Bandwidth(b))),
            Some(Token::Time(t)) => Ok(Expr::Lit(Value::TimeOfDay(t))),
            Some(Token::True) => Ok(Expr::Lit(Value::Bool(true))),
            Some(Token::False) => Ok(Expr::Lit(Value::Bool(false))),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Attr(name))
                }
            }
            other => Err(ParseError {
                message: format!(
                    "expected expression, found {}",
                    other.map_or_else(|| "end of input".into(), |t| t.to_string())
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_policy_a() {
        // "If User = Alice … Return GRANT; if User = Bob … Return DENY"
        let p = parse(
            r#"
            if User = Alice and Reservation_Type = Network { return grant }
            if User = Bob { return deny "Bob is not allowed" }
            return deny
            "#,
        )
        .unwrap();
        assert_eq!(p.stmts.len(), 3);
        assert_eq!(p.rule_count(), 5);
    }

    #[test]
    fn parses_nested_if_else_chain() {
        let p = parse(
            r#"
            if User = Alice {
                if Time > 8am and Time < 5pm {
                    if BW <= 10Mb/s { return grant } else { return deny "cap" }
                } else if BW <= Avail_BW {
                    return grant
                } else {
                    return deny
                }
            }
            return deny
            "#,
        )
        .unwrap();
        match &p.stmts[0] {
            Stmt::If { then, .. } => match &then[0] {
                Stmt::If { otherwise, .. } => {
                    assert!(matches!(otherwise[0], Stmt::If { .. }), "else-if chains");
                }
                s => panic!("unexpected {s:?}"),
            },
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn parses_calls_and_attach() {
        let p = parse(
            r#"
            if Accredited_Physicist(requestor) {
                attach required_group = "physicists"
                return grant
            }
            if Issued_by(Capability) = ESnet and HasValidCPUResv(RAR) { return grant }
            return deny "no rule matched"
            "#,
        )
        .unwrap();
        assert_eq!(p.stmts.len(), 3);
        match &p.stmts[1] {
            Stmt::If { cond, .. } => match cond {
                Expr::And(l, r) => {
                    assert!(matches!(**l, Expr::Cmp(_, CmpOp::Eq, _)));
                    assert!(matches!(**r, Expr::Call(ref n, _) if n == "HasValidCPUResv"));
                }
                e => panic!("unexpected {e:?}"),
            },
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn operator_precedence_not_and_or() {
        let p = parse("if not a and b or c { return grant } return deny").unwrap();
        // ((not a) and b) or c
        match &p.stmts[0] {
            Stmt::If {
                cond: Expr::Or(l, _),
                ..
            } => {
                assert!(matches!(**l, Expr::And(_, _)));
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn error_messages_are_specific() {
        let e = parse("if { return grant }").unwrap_err();
        assert!(e.message.contains("expected expression"), "{e}");
        let e = parse("return maybe").unwrap_err();
        assert!(e.message.contains("grant or deny"), "{e}");
        let e = parse("if x { return grant").unwrap_err();
        assert!(
            e.message.contains("unterminated") || e.message.contains("expected"),
            "{e}"
        );
    }

    #[test]
    fn parenthesized_expressions() {
        let p = parse("if (a or b) and c { return grant } return deny").unwrap();
        match &p.stmts[0] {
            Stmt::If {
                cond: Expr::And(l, _),
                ..
            } => {
                assert!(matches!(**l, Expr::Or(_, _)));
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn double_equals_accepted() {
        assert_eq!(
            parse("if a == b { return grant } return deny")
                .unwrap()
                .stmts,
            parse("if a = b { return grant } return deny")
                .unwrap()
                .stmts
        );
    }
}
