//! Typed attribute values and attribute sets.
//!
//! The paper requires the propagation protocol to "handle simple
//! attribute-value pairs which might be signed by the assigning entity".
//! Attributes are the lingua franca between requests, policies, and the
//! "modified request" a policy server hands back.

use qos_wire::{Decode, Encode, Reader, WireError, Writer};
use std::collections::BTreeMap;
use std::fmt;

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string, e.g. a user or domain name.
    Str(String),
    /// A signed integer (counts, identifiers, costs).
    Int(i64),
    /// Bandwidth in bits per second.
    Bandwidth(u64),
    /// Time of day in minutes since midnight (policies like Figure 6's
    /// "If Time > 8am and Time < 5pm" compare these).
    TimeOfDay(u32),
    /// A boolean.
    Bool(bool),
    /// A multi-valued attribute, e.g. the set of groups a user belongs to.
    List(Vec<Value>),
}

qos_wire::impl_wire_enum!(Value {
    0 => Str(t0: String),
    1 => Int(t0: i64),
    2 => Bandwidth(t0: u64),
    3 => TimeOfDay(t0: u32),
    4 => Bool(t0: bool),
    5 => List(t0: Vec<Value>),
});

impl Value {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "int",
            Value::Bandwidth(_) => "bandwidth",
            Value::TimeOfDay(_) => "time-of-day",
            Value::Bool(_) => "bool",
            Value::List(_) => "list",
        }
    }

    /// Truthiness: the value a bare expression has in `if` position.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Bandwidth(b) => *b != 0,
            Value::Str(s) => !s.is_empty(),
            Value::TimeOfDay(_) => true,
            Value::List(l) => !l.is_empty(),
        }
    }

    /// Numeric comparison across `Int`/`Bandwidth` (common in policies
    /// that compare a request's `BW` against a literal).
    pub fn partial_cmp_num(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.partial_cmp(b),
            (Bandwidth(a), Bandwidth(b)) => a.partial_cmp(b),
            (Int(a), Bandwidth(b)) => (*a as i128).partial_cmp(&(*b as i128)),
            (Bandwidth(a), Int(b)) => (*a as i128).partial_cmp(&(*b as i128)),
            (TimeOfDay(a), TimeOfDay(b)) => a.partial_cmp(b),
            _ => None,
        }
    }

    /// Policy equality. Strings compare case-insensitively (the paper's
    /// figures freely mix `Alice`/`alice` style identifiers); a list on
    /// either side means membership.
    pub fn policy_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Str(a), Str(b)) => a.eq_ignore_ascii_case(b),
            (List(items), v) | (v, List(items)) => items.iter().any(|i| i.policy_eq(v)),
            (a, b) => {
                a == b
                    || a.partial_cmp_num(b)
                        .is_some_and(|o| o == std::cmp::Ordering::Equal)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bandwidth(b) => {
                if b % 1_000_000 == 0 {
                    write!(f, "{}Mb/s", b / 1_000_000)
                } else {
                    write!(f, "{b}bps")
                }
            }
            Value::TimeOfDay(m) => write!(f, "{:02}:{:02}", m / 60, m % 60),
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// An ordered attribute map (deterministic iteration keeps signed
/// encodings canonical). Keys are stored lowercase.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttributeSet {
    map: BTreeMap<String, Value>,
}

impl AttributeSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace an attribute.
    pub fn set(&mut self, key: &str, value: Value) -> &mut Self {
        self.map.insert(key.to_ascii_lowercase(), value);
        self
    }

    /// Builder-style insert.
    pub fn with(mut self, key: &str, value: Value) -> Self {
        self.set(key, value);
        self
    }

    /// Look up an attribute (case-insensitive key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(&key.to_ascii_lowercase())
    }

    /// Remove an attribute.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.map.remove(&key.to_ascii_lowercase())
    }

    /// Merge `other` into `self`, with `other` winning conflicts. This is
    /// how a policy server's attachments extend a request as it travels.
    pub fn merge(&mut self, other: &AttributeSet) {
        for (k, v) in &other.map {
            self.map.insert(k.clone(), v.clone());
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl Encode for AttributeSet {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.map.len() as u32);
        for (k, v) in &self.map {
            w.put_str(k);
            v.encode(w);
        }
    }
}

impl Decode for AttributeSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_seq_len()?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = r.get_str()?;
            let v = Value::decode(r)?;
            map.insert(k, v);
        }
        Ok(Self { map })
    }
}

/// Convenience constructors for bandwidth values.
pub mod bw {
    use super::Value;

    /// `n` kilobits per second.
    pub fn kbps(n: u64) -> Value {
        Value::Bandwidth(n * 1_000)
    }

    /// `n` megabits per second.
    pub fn mbps(n: u64) -> Value {
        Value::Bandwidth(n * 1_000_000)
    }

    /// `n` gigabits per second.
    pub fn gbps(n: u64) -> Value {
        Value::Bandwidth(n * 1_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_equality_is_case_insensitive() {
        assert!(Value::Str("Alice".into()).policy_eq(&Value::Str("alice".into())));
        assert!(!Value::Str("Alice".into()).policy_eq(&Value::Str("Bob".into())));
    }

    #[test]
    fn list_equality_means_membership() {
        let groups = Value::List(vec![Value::Str("atlas".into()), Value::Str("cms".into())]);
        assert!(groups.policy_eq(&Value::Str("ATLAS".into())));
        assert!(Value::Str("cms".into()).policy_eq(&groups));
        assert!(!groups.policy_eq(&Value::Str("babar".into())));
    }

    #[test]
    fn numeric_comparison_across_types() {
        use std::cmp::Ordering::*;
        assert_eq!(
            Value::Int(10).partial_cmp_num(&Value::Bandwidth(10)),
            Some(Equal)
        );
        assert_eq!(
            Value::Bandwidth(5_000_000).partial_cmp_num(&bw::mbps(10)),
            Some(Less)
        );
        assert_eq!(Value::Str("x".into()).partial_cmp_num(&Value::Int(1)), None);
    }

    #[test]
    fn attribute_keys_are_case_insensitive() {
        let mut a = AttributeSet::new();
        a.set("BW", bw::mbps(10));
        assert_eq!(a.get("bw"), Some(&bw::mbps(10)));
        assert_eq!(a.get("Bw"), Some(&bw::mbps(10)));
    }

    #[test]
    fn merge_overwrites() {
        let mut a = AttributeSet::new()
            .with("x", Value::Int(1))
            .with("y", Value::Int(2));
        let b = AttributeSet::new()
            .with("y", Value::Int(9))
            .with("z", Value::Int(3));
        a.merge(&b);
        assert_eq!(a.get("x"), Some(&Value::Int(1)));
        assert_eq!(a.get("y"), Some(&Value::Int(9)));
        assert_eq!(a.get("z"), Some(&Value::Int(3)));
    }

    #[test]
    fn wire_round_trip() {
        let a = AttributeSet::new()
            .with("user", Value::Str("alice".into()))
            .with("bw", bw::mbps(10))
            .with("groups", Value::List(vec![Value::Str("atlas".into())]))
            .with("t", Value::TimeOfDay(9 * 60))
            .with("ok", Value::Bool(true));
        let bytes = qos_wire::to_bytes(&a);
        assert_eq!(qos_wire::from_bytes::<AttributeSet>(&bytes).unwrap(), a);
    }

    #[test]
    fn display_formats() {
        assert_eq!(bw::mbps(10).to_string(), "10Mb/s");
        assert_eq!(Value::TimeOfDay(8 * 60 + 5).to_string(), "08:05");
    }
}
