//! Abstract syntax of the policy language.

use crate::attr::Value;
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` — policy equality (case-insensitive strings, list membership).
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// An attribute reference, resolved against the evaluation
    /// environment (request attributes, then domain-provided variables
    /// such as `Avail_BW`).
    Attr(String),
    /// A predicate/function call, e.g. `Accredited_Physicist(requestor)`
    /// or `HasValidCPUResv(RAR)`; dispatched to the [`crate::eval::PolicyEnv`].
    Call(String, Vec<Expr>),
    /// Binary comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
            Expr::And(l, r) => write!(f, "({l} and {r})"),
            Expr::Or(l, r) => write!(f, "({l} or {r})"),
            Expr::Not(e) => write!(f, "not {e}"),
        }
    }
}

/// A policy decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Permit the request.
    Grant,
    /// Refuse the request, optionally with a reason string that is
    /// propagated upstream ("the event is propagated upstream to inform
    /// the user of the reason for the denial").
    Deny(Option<String>),
}

impl Decision {
    /// True for `Grant`.
    pub fn is_grant(&self) -> bool {
        matches!(self, Decision::Grant)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Grant => write!(f, "GRANT"),
            Decision::Deny(None) => write!(f, "DENY"),
            Decision::Deny(Some(r)) => write!(f, "DENY ({r})"),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `if cond { then } else { otherwise }` — the `else` branch may chain
    /// another `if`.
    If {
        /// Condition expression.
        cond: Expr,
        /// Statements executed when the condition is truthy.
        then: Vec<Stmt>,
        /// Statements executed otherwise.
        otherwise: Vec<Stmt>,
    },
    /// `return grant` / `return deny ["reason"]`.
    Return(Decision),
    /// `attach key = expr` — adds an attribute to the *modified request*
    /// the policy server passes back (constraints, cost offers,
    /// traffic-engineering hints for downstream domains).
    Attach {
        /// Attribute key on the modified request.
        key: String,
        /// Value expression, evaluated at attach time.
        value: Expr,
    },
}

/// A parsed policy: a statement list plus its source (kept for display
/// and diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Top-level statements, evaluated in order.
    pub stmts: Vec<Stmt>,
    /// Original source text.
    pub source: String,
}

impl Policy {
    /// Count the rules (statements, recursively) — the policy-size metric
    /// used by the EXP-A benchmark.
    pub fn rule_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then, otherwise, ..
                    } => 1 + count(then) + count(otherwise),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }
}
