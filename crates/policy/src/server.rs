//! The policy server (policy decision point).
//!
//! §5 of the paper: *"We introduce an entity called a policy server that
//! encapsulates a BB's admission control procedures. When a request comes
//! in, it is forwarded to the policy server which executes local policy
//! and passes back a result ('yes' or 'no') and a modified request."*
//!
//! [`PolicyServer::decide`] composes the evaluation environment from the
//! request, live domain variables, the local group server, and a
//! reservation oracle (for coupled-reservation predicates such as
//! `HasValidCPUResv`), then evaluates the domain's policy file.

use crate::ast::Decision;
use crate::attr::{AttributeSet, Value};
use crate::eval::{evaluate, EvalError, Outcome, PolicyEnv};
use crate::group::GroupServer;
use crate::parser::{parse_cached, ParseError};
use crate::request::PolicyRequest;
use crate::Policy;
use qos_crypto::sha256::{Digest, Sha256};
use qos_telemetry::{Counter, Histogram, StdClock, Telemetry};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Live per-domain state the policy can reference.
#[derive(Debug, Clone)]
pub struct DomainVars {
    /// Currently available (unreserved) bandwidth in bits/s — the
    /// `Avail_BW` variable in Figure 6's policy file A.
    pub avail_bw_bps: u64,
    /// Current time of day in minutes since midnight — the `Time`
    /// variable.
    pub now_minutes: u32,
    /// This domain's name.
    pub domain: String,
}

/// Callbacks into the broker's reservation state for coupled-reservation
/// predicates.
pub trait ReservationOracle {
    /// Does reservation `id` exist and currently hold for a CPU resource
    /// in this domain? (Figure 6's `HasValidCPUResv(RAR)`.)
    fn has_valid_cpu_reservation(&self, id: i64) -> bool;
}

/// An oracle that knows of no reservations (for domains without coupled
/// resources).
pub struct NoReservations;

impl ReservationOracle for NoReservations {
    fn has_valid_cpu_reservation(&self, _id: i64) -> bool {
        false
    }
}

/// The decision a PDP hands back to its broker: grant/deny plus the
/// modified request.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDecision {
    /// Grant or deny (with reason).
    pub decision: Decision,
    /// Attributes the policy attached — merged into the request before it
    /// is forwarded downstream ("a modified request").
    pub attachments: AttributeSet,
    /// Evaluation trace for diagnostics.
    pub trace: Vec<String>,
}

impl From<Outcome> for PolicyDecision {
    fn from(o: Outcome) -> Self {
        Self {
            decision: o.decision,
            attachments: o.attachments,
            trace: o.trace,
        }
    }
}

/// Instrument handles for one PDP (detached no-ops by default).
#[derive(Default)]
struct PdpInstruments {
    eval_ns: Histogram,
    parse_ns: Histogram,
    grants: Counter,
    denies: Counter,
    errors: Counter,
    live: bool,
}

/// Bound on memoized decisions per PDP. Steady-state traffic in the
/// paper's scenarios revisits a handful of (requestor, spec) shapes, so
/// a small bound holds the whole working set; eviction is min-stamp LRU.
const DECISION_CACHE_CAP: usize = 1024;

/// One memoized decision.
struct CachedDecision {
    decision: PolicyDecision,
    stamp: u64,
}

/// Interior-mutable memoization state, shared by `decide` (decision
/// memo) and the evaluation environment (group-membership memo).
#[derive(Default)]
struct PdpCache {
    decisions: HashMap<Digest, CachedDecision>,
    members: HashMap<(String, String), bool>,
    tick: u64,
}

/// A policy decision point for one domain.
pub struct PolicyServer {
    policy: Policy,
    groups: GroupServer,
    instruments: PdpInstruments,
    /// Bumped on every policy or group mutation; part of every cache
    /// key, so stale entries can never match even before they are
    /// physically cleared.
    generation: u64,
    cache: Mutex<PdpCache>,
    cache_hits: Arc<AtomicU64>,
    cache_misses: Arc<AtomicU64>,
    cache_evictions: Arc<AtomicU64>,
    /// Nanoseconds spent parsing in `from_source`, held until telemetry
    /// is attached (parsing happens at construction, before
    /// `set_telemetry` can have run).
    pending_parse_ns: Vec<u64>,
}

impl PolicyServer {
    /// Build a PDP from policy source text and a group server.
    ///
    /// Parsing goes through [`parse_cached`], so brokers (re)built from
    /// the same scenario source share one parse; the observed parse time
    /// — cached or not — is reported as `pdp_parse_ns` once telemetry is
    /// attached, keeping parse cost visible separately from `pdp_eval_ns`.
    pub fn from_source(policy_src: &str, groups: GroupServer) -> Result<Self, ParseError> {
        let t0 = StdClock::now();
        let policy = parse_cached(policy_src)?;
        let parse_ns = StdClock::now().saturating_sub(t0);
        let mut server = Self::new(policy, groups);
        server.pending_parse_ns.push(parse_ns);
        Ok(server)
    }

    /// Build a PDP from an already-parsed policy.
    pub fn new(policy: Policy, groups: GroupServer) -> Self {
        Self {
            policy,
            groups,
            instruments: PdpInstruments::default(),
            generation: 0,
            cache: Mutex::new(PdpCache::default()),
            cache_hits: Arc::new(AtomicU64::new(0)),
            cache_misses: Arc::new(AtomicU64::new(0)),
            cache_evictions: Arc::new(AtomicU64::new(0)),
            pending_parse_ns: Vec::new(),
        }
    }

    /// Route this PDP's instruments into `telemetry` under `domain`:
    /// evaluation latency (`pdp_eval_ns`), parse latency (`pdp_parse_ns`,
    /// observed separately so steady-state evaluation cost is not
    /// conflated with one-time compilation), decision counters
    /// (`pdp_decisions_total{decision=grant|deny|error}`), and the
    /// decision-cache counters
    /// (`cache_{hits,misses,evictions}_total{cache="pdp"}`).
    pub fn set_telemetry(&mut self, telemetry: &Telemetry, domain: &str) {
        let dl: &[(&str, &str)] = &[("domain", domain)];
        self.instruments = PdpInstruments {
            eval_ns: telemetry.histogram("pdp_eval_ns", "Policy evaluation time (ns)", dl),
            parse_ns: telemetry.histogram("pdp_parse_ns", "Policy parse time (ns)", dl),
            grants: telemetry.counter(
                "pdp_decisions_total",
                "PDP decisions by outcome",
                &[("domain", domain), ("decision", "grant")],
            ),
            denies: telemetry.counter(
                "pdp_decisions_total",
                "PDP decisions by outcome",
                &[("domain", domain), ("decision", "deny")],
            ),
            errors: telemetry.counter(
                "pdp_decisions_total",
                "PDP decisions by outcome",
                &[("domain", domain), ("decision", "error")],
            ),
            live: telemetry.is_enabled(),
        };
        for ns in self.pending_parse_ns.drain(..) {
            self.instruments.parse_ns.observe(ns);
        }
        let cl: &[(&str, &str)] = &[("cache", "pdp"), ("domain", domain)];
        telemetry.register_counter(
            "cache_hits_total",
            "Memoization cache hits, by cache",
            cl,
            self.cache_hits.clone(),
        );
        telemetry.register_counter(
            "cache_misses_total",
            "Memoization cache misses, by cache",
            cl,
            self.cache_misses.clone(),
        );
        telemetry.register_counter(
            "cache_evictions_total",
            "Memoization cache evictions, by cache",
            cl,
            self.cache_evictions.clone(),
        );
    }

    /// The group server this PDP consults.
    pub fn groups(&self) -> &GroupServer {
        &self.groups
    }

    /// Mutable access to the group server (membership administration).
    ///
    /// Taking this handle bumps the policy generation: membership *may*
    /// change under it, and every memoized decision or membership verdict
    /// predates the change, so the caches are invalidated wholesale.
    pub fn groups_mut(&mut self) -> &mut GroupServer {
        self.bump_generation();
        &mut self.groups
    }

    /// The policy text in force.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Replace the policy. Bumps the generation, invalidating every
    /// cached decision made under the old policy.
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
        self.bump_generation();
    }

    /// The current policy generation (bumped on any policy or group
    /// mutation; cache keys include it).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Decision-cache `(hits, misses, evictions)` since construction.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (
            self.cache_hits.load(Relaxed),
            self.cache_misses.load(Relaxed),
            self.cache_evictions.load(Relaxed),
        )
    }

    /// Number of decisions currently memoized.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().decisions.len()
    }

    fn bump_generation(&mut self) {
        self.generation += 1;
        let mut cache = self.cache.lock().unwrap();
        cache.decisions.clear();
        cache.members.clear();
    }

    /// Canonical cache key: generation, live domain variables, and every
    /// request attribute that can influence evaluation. Each field is
    /// length-prefixed before hashing so adjacent fields cannot alias.
    fn cache_key(&self, req: &PolicyRequest, vars: &DomainVars) -> Digest {
        let mut h = Sha256::new();
        let feed = |h: &mut Sha256, bytes: &[u8]| {
            h.update(&(bytes.len() as u64).to_le_bytes());
            h.update(bytes);
        };
        h.update(&self.generation.to_le_bytes());
        h.update(&vars.avail_bw_bps.to_le_bytes());
        h.update(&vars.now_minutes.to_le_bytes());
        feed(&mut h, vars.domain.as_bytes());
        feed(&mut h, format!("{:?}", req.requestor).as_bytes());
        for (k, v) in req.attrs.iter() {
            feed(&mut h, k.as_bytes());
            feed(&mut h, format!("{v:?}").as_bytes());
        }
        feed(&mut h, format!("{:?}", req.assertions).as_bytes());
        feed(&mut h, format!("{:?}", req.capabilities).as_bytes());
        h.finalize()
    }

    fn cache_lookup(&self, key: &Digest) -> Option<PolicyDecision> {
        let mut cache = self.cache.lock().unwrap();
        cache.tick += 1;
        let tick = cache.tick;
        match cache.decisions.get_mut(key) {
            Some(entry) => {
                entry.stamp = tick;
                self.cache_hits.fetch_add(1, Relaxed);
                Some(entry.decision.clone())
            }
            None => {
                self.cache_misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    fn cache_insert(&self, key: Digest, decision: PolicyDecision) {
        let mut cache = self.cache.lock().unwrap();
        if cache.decisions.len() >= DECISION_CACHE_CAP && !cache.decisions.contains_key(&key) {
            if let Some(oldest) = cache
                .decisions
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                cache.decisions.remove(&oldest);
                self.cache_evictions.fetch_add(1, Relaxed);
            }
        }
        cache.tick += 1;
        let stamp = cache.tick;
        cache
            .decisions
            .insert(key, CachedDecision { decision, stamp });
    }

    /// Evaluate the local policy against `req`.
    ///
    /// Decisions are memoized under a canonical key covering the policy
    /// generation, the domain variables, and the full request shape. A
    /// repeated steady-state request is served from the memo without
    /// re-walking the AST. Two classes of outcome are never cached:
    /// evaluation errors, and any decision whose evaluation consulted
    /// the [`ReservationOracle`] — the oracle reads live broker state
    /// that no cache key here can see. `pdp_decisions_total` counts
    /// cached and fresh decisions alike; `pdp_eval_ns` observes only
    /// real evaluations.
    pub fn decide(
        &self,
        req: &PolicyRequest,
        vars: &DomainVars,
        oracle: &dyn ReservationOracle,
    ) -> Result<PolicyDecision, EvalError> {
        let key = self.cache_key(req, vars);
        if let Some(decision) = self.cache_lookup(&key) {
            if self.instruments.live {
                if decision.decision.is_grant() {
                    self.instruments.grants.inc();
                } else {
                    self.instruments.denies.inc();
                }
            }
            return Ok(decision);
        }
        let oracle_used = Cell::new(false);
        let env = Env {
            req,
            vars,
            oracle,
            groups: &self.groups,
            memo: &self.cache,
            oracle_used: &oracle_used,
        };
        let t0 = StdClock::now();
        let result = evaluate(&self.policy, &env).map(PolicyDecision::from);
        if self.instruments.live {
            self.instruments
                .eval_ns
                .observe(StdClock::now().saturating_sub(t0));
            match &result {
                Ok(d) if d.decision.is_grant() => self.instruments.grants.inc(),
                Ok(_) => self.instruments.denies.inc(),
                Err(_) => self.instruments.errors.inc(),
            }
        }
        if let Ok(decision) = &result {
            if !oracle_used.get() {
                self.cache_insert(key, decision.clone());
            }
        }
        result
    }
}

struct Env<'a> {
    req: &'a PolicyRequest,
    vars: &'a DomainVars,
    oracle: &'a dyn ReservationOracle,
    groups: &'a GroupServer,
    memo: &'a Mutex<PdpCache>,
    oracle_used: &'a Cell<bool>,
}

impl Env<'_> {
    fn requestor_name(&self) -> String {
        self.req
            .requestor
            .common_name()
            .unwrap_or_default()
            .to_string()
    }

    /// Group-membership check through the PDP-wide memo. The memo is
    /// cleared on every generation bump, so it can never serve a verdict
    /// that predates a membership change.
    fn member_cached(&self, group: &str, user: &str) -> bool {
        let key = (group.to_ascii_lowercase(), user.to_ascii_lowercase());
        if let Some(&v) = self.memo.lock().unwrap().members.get(&key) {
            return v;
        }
        let v = self.groups.is_member(group, user);
        self.memo.lock().unwrap().members.insert(key, v);
        v
    }
}

impl PolicyEnv for Env<'_> {
    fn attr(&self, name: &str) -> Option<Value> {
        match name.to_ascii_lowercase().as_str() {
            "time" => Some(Value::TimeOfDay(self.vars.now_minutes)),
            "avail_bw" => Some(Value::Bandwidth(self.vars.avail_bw_bps)),
            "domain" => Some(Value::Str(self.vars.domain.clone())),
            "requestor" => Some(Value::Str(self.requestor_name())),
            "group" | "groups" => {
                let groups = self.req.claimed_groups();
                if groups.is_empty() {
                    None
                } else {
                    Some(Value::List(groups.into_iter().map(Value::Str).collect()))
                }
            }
            // `Capability` resolves to the list of issuers so that the
            // figure's `Issued_by(Capability) = ESnet` form works whether
            // `Issued_by` is applied or the attribute is used directly.
            "capability" | "capabilities" => {
                let issuers = self.req.capability_issuers();
                if issuers.is_empty() {
                    None
                } else {
                    Some(Value::List(issuers.into_iter().map(Value::Str).collect()))
                }
            }
            // `RAR` resolves to the coupled reservation id carried in the
            // request, if any.
            "rar" => self.req.attrs.get("cpu_reservation_id").cloned(),
            other => self.req.attrs.get(other).cloned(),
        }
    }

    fn call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        match name.to_ascii_lowercase().as_str() {
            // `Issued_by(Capability)`: the issuers of the presented
            // capabilities (a list; `=` means membership).
            "issued_by" | "issuedby" => {
                let issuers = self.req.capability_issuers();
                Ok(Value::List(issuers.into_iter().map(Value::Str).collect()))
            }
            // `Accredited_Physicist(requestor)` — Figure 1's domain-B
            // rule, validated against the local group server.
            "accredited_physicist" => {
                let who = string_arg(name, args, 0)?;
                Ok(Value::Bool(self.member_cached("physicists", &who)))
            }
            // General form: `Member(group, user)` or `Member(group)`
            // (defaulting to the requestor).
            "member" | "in_group" => {
                let group = string_arg(name, args, 0)?;
                let user = if args.len() > 1 {
                    string_arg(name, args, 1)?
                } else {
                    self.requestor_name()
                };
                // A claim must both be presented and validate server-side.
                let claimed = self
                    .req
                    .claimed_groups()
                    .iter()
                    .any(|g| g.eq_ignore_ascii_case(&group));
                Ok(Value::Bool(claimed && self.member_cached(&group, &user)))
            }
            // `Has_Capability("ESnet:member")` — exact capability
            // attribute possession.
            "has_capability" => {
                let want = string_arg(name, args, 0)?;
                let has = self
                    .req
                    .capabilities
                    .iter()
                    .any(|c| c.attributes.iter().any(|a| a.eq_ignore_ascii_case(&want)));
                Ok(Value::Bool(has))
            }
            // `HasValidCPUResv(RAR)` — Figure 6's domain-C rule.
            "hasvalidcpuresv" | "has_valid_cpu_resv" => {
                let id = match args.first() {
                    Some(Value::Int(i)) => *i,
                    // `RAR` resolved to nothing (no coupled reservation on
                    // the request): the predicate is simply false.
                    Some(Value::Str(_)) | None => return Ok(Value::Bool(false)),
                    Some(other) => {
                        return Err(EvalError::BadArguments {
                            function: name.to_string(),
                            message: format!("expected reservation id, got {}", other.type_name()),
                        })
                    }
                };
                self.oracle_used.set(true);
                Ok(Value::Bool(self.oracle.has_valid_cpu_reservation(id)))
            }
            other => Err(EvalError::UnknownFunction(other.to_string())),
        }
    }
}

fn string_arg(func: &str, args: &[Value], idx: usize) -> Result<String, EvalError> {
    match args.get(idx) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(other) => Err(EvalError::BadArguments {
            function: func.to_string(),
            message: format!("argument {idx} must be a string, got {}", other.type_name()),
        }),
        None => Err(EvalError::BadArguments {
            function: func.to_string(),
            message: format!("missing argument {idx}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::bw;
    use crate::request::{Assertion, VerifiedCapability};
    use qos_crypto::{DistinguishedName, KeyPair};

    fn vars() -> DomainVars {
        DomainVars {
            avail_bw_bps: 100_000_000,
            now_minutes: 10 * 60,
            domain: "domain-b".into(),
        }
    }

    fn groups() -> GroupServer {
        let mut g = GroupServer::new("groups", KeyPair::from_seed(b"gs"));
        g.add_member("physicists", "Charlie");
        g.add_member("atlas", "Alice");
        g
    }

    struct CpuOracle(Vec<i64>);
    impl ReservationOracle for CpuOracle {
        fn has_valid_cpu_reservation(&self, id: i64) -> bool {
            self.0.contains(&id)
        }
    }

    #[test]
    fn figure6_policy_b_group_and_capability_paths() {
        let pdp = PolicyServer::from_source(
            r#"
            if Group = Atlas {
                if BW <= 10Mb/s { return grant }
            }
            if Issued_by(Capability) = ESnet {
                if BW <= 10Mb/s { return grant }
            }
            return deny "policy B: not authorized"
            "#,
            groups(),
        )
        .unwrap();

        // Path 1: ATLAS membership.
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"))
            .with_attr("bw", bw::mbps(10))
            .with_assertion(Assertion::group("ATLAS"));
        let d = pdp.decide(&req, &vars(), &NoReservations).unwrap();
        assert!(d.decision.is_grant(), "trace: {:?}", d.trace);

        // Path 2: ESnet capability.
        let req = PolicyRequest::new(DistinguishedName::user("Dana", "X"))
            .with_attr("bw", bw::mbps(8))
            .with_capability(VerifiedCapability {
                issuer: "ESnet".into(),
                attributes: vec!["ESnet:member".into()],
                restrictions: vec![],
            });
        assert!(pdp
            .decide(&req, &vars(), &NoReservations)
            .unwrap()
            .decision
            .is_grant());

        // Over 10 Mb/s: denied on both paths.
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"))
            .with_attr("bw", bw::mbps(20))
            .with_assertion(Assertion::group("ATLAS"));
        assert!(!pdp
            .decide(&req, &vars(), &NoReservations)
            .unwrap()
            .decision
            .is_grant());

        // No group, no capability: denied.
        let req =
            PolicyRequest::new(DistinguishedName::user("Eve", "X")).with_attr("bw", bw::mbps(1));
        assert!(!pdp
            .decide(&req, &vars(), &NoReservations)
            .unwrap()
            .decision
            .is_grant());
    }

    #[test]
    fn figure6_policy_c_cpu_coupling() {
        let pdp = PolicyServer::from_source(
            r#"
            if BW >= 5Mb/s {
                if Issued_by(Capability) = ESnet and HasValidCPUResv(RAR) { return grant }
                return deny "above 5Mb/s requires ESnet capability and valid CPU reservation"
            }
            return grant
            "#,
            groups(),
        )
        .unwrap();
        let oracle = CpuOracle(vec![111]);

        let with_cap = |id: Option<i64>| {
            let mut req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"))
                .with_attr("bw", bw::mbps(10))
                .with_capability(VerifiedCapability {
                    issuer: "ESnet".into(),
                    attributes: vec!["ESnet:member".into()],
                    restrictions: vec![],
                });
            if let Some(id) = id {
                req = req.with_attr("cpu_reservation_id", Value::Int(id));
            }
            req
        };

        // Valid CPU reservation 111 (as in Figure 6): grant.
        assert!(pdp
            .decide(&with_cap(Some(111)), &vars(), &oracle)
            .unwrap()
            .decision
            .is_grant());
        // Unknown reservation id: deny.
        assert!(!pdp
            .decide(&with_cap(Some(999)), &vars(), &oracle)
            .unwrap()
            .decision
            .is_grant());
        // No coupled reservation at all: deny.
        assert!(!pdp
            .decide(&with_cap(None), &vars(), &oracle)
            .unwrap()
            .decision
            .is_grant());
        // Small request (< 5 Mb/s) needs nothing.
        let small =
            PolicyRequest::new(DistinguishedName::user("Eve", "X")).with_attr("bw", bw::mbps(1));
        assert!(pdp
            .decide(&small, &vars(), &oracle)
            .unwrap()
            .decision
            .is_grant());
    }

    #[test]
    fn member_requires_claim_and_server_validation() {
        let pdp = PolicyServer::from_source(
            r#"if Member("atlas") { return grant } return deny"#,
            groups(),
        )
        .unwrap();
        // Alice is in the server's ATLAS group but must also claim it.
        let unclaimed = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"));
        assert!(!pdp
            .decide(&unclaimed, &vars(), &NoReservations)
            .unwrap()
            .decision
            .is_grant());
        let claimed = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"))
            .with_assertion(Assertion::group("atlas"));
        assert!(pdp
            .decide(&claimed, &vars(), &NoReservations)
            .unwrap()
            .decision
            .is_grant());
        // Bob claims but the server disagrees.
        let bogus = PolicyRequest::new(DistinguishedName::user("Bob", "ANL"))
            .with_assertion(Assertion::group("atlas"));
        assert!(!pdp
            .decide(&bogus, &vars(), &NoReservations)
            .unwrap()
            .decision
            .is_grant());
    }

    #[test]
    fn attachments_flow_back_as_modified_request() {
        let pdp = PolicyServer::from_source(
            r#"
            attach required_group = "atlas"
            attach cost_offer = 7
            return grant
            "#,
            groups(),
        )
        .unwrap();
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"));
        let d = pdp.decide(&req, &vars(), &NoReservations).unwrap();
        assert!(d.decision.is_grant());
        assert_eq!(
            d.attachments.get("required_group"),
            Some(&Value::Str("atlas".into()))
        );
        assert_eq!(d.attachments.get("cost_offer"), Some(&Value::Int(7)));
    }

    #[test]
    fn repeated_decisions_are_served_from_cache() {
        let pdp =
            PolicyServer::from_source(r#"if Group = Atlas { return grant } return deny"#, groups())
                .unwrap();
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"))
            .with_attr("bw", bw::mbps(10))
            .with_assertion(Assertion::group("ATLAS"));
        let first = pdp.decide(&req, &vars(), &NoReservations).unwrap();
        let (h0, m0, _) = pdp.cache_stats();
        assert_eq!((h0, m0), (0, 1));
        let second = pdp.decide(&req, &vars(), &NoReservations).unwrap();
        assert_eq!(first, second);
        let (h1, m1, _) = pdp.cache_stats();
        assert_eq!((h1, m1), (1, 1));
        // A different request shape misses.
        let other = PolicyRequest::new(DistinguishedName::user("Bob", "ANL"));
        pdp.decide(&other, &vars(), &NoReservations).unwrap();
        assert_eq!(pdp.cache_stats().1, 2);
    }

    #[test]
    fn changed_domain_vars_are_a_different_key() {
        let pdp = PolicyServer::from_source(
            r#"if BW <= Avail_BW { return grant } return deny"#,
            groups(),
        )
        .unwrap();
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"))
            .with_attr("bw", bw::mbps(50));
        let mut v = vars();
        assert!(pdp
            .decide(&req, &v, &NoReservations)
            .unwrap()
            .decision
            .is_grant());
        v.avail_bw_bps = 1_000_000;
        // Same request, different live state: must re-evaluate, not hit.
        assert!(!pdp
            .decide(&req, &v, &NoReservations)
            .unwrap()
            .decision
            .is_grant());
        assert_eq!(pdp.cache_stats().0, 0, "no false hit across var change");
    }

    #[test]
    fn set_policy_invalidates_cached_decisions() {
        let mut pdp = PolicyServer::from_source(r#"return grant"#, groups()).unwrap();
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"));
        assert!(pdp
            .decide(&req, &vars(), &NoReservations)
            .unwrap()
            .decision
            .is_grant());
        assert_eq!(pdp.cache_len(), 1);
        let g0 = pdp.generation();
        pdp.set_policy(crate::parser::parse(r#"return deny "flipped""#).unwrap());
        assert!(pdp.generation() > g0);
        assert_eq!(pdp.cache_len(), 0, "bump clears the memo");
        // The same request now gets the new policy's answer.
        assert!(!pdp
            .decide(&req, &vars(), &NoReservations)
            .unwrap()
            .decision
            .is_grant());
    }

    #[test]
    fn groups_mut_invalidates_membership_dependent_decisions() {
        let mut pdp = PolicyServer::from_source(
            r#"if Member("atlas") { return grant } return deny"#,
            groups(),
        )
        .unwrap();
        let req = PolicyRequest::new(DistinguishedName::user("Bob", "ANL"))
            .with_assertion(Assertion::group("atlas"));
        assert!(!pdp
            .decide(&req, &vars(), &NoReservations)
            .unwrap()
            .decision
            .is_grant());
        pdp.groups_mut().add_member("atlas", "Bob");
        assert!(
            pdp.decide(&req, &vars(), &NoReservations)
                .unwrap()
                .decision
                .is_grant(),
            "stale deny must not be served after membership change"
        );
    }

    #[test]
    fn oracle_dependent_decisions_are_never_cached() {
        let pdp = PolicyServer::from_source(
            r#"if HasValidCPUResv(RAR) { return grant } return deny"#,
            groups(),
        )
        .unwrap();
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"))
            .with_attr("cpu_reservation_id", Value::Int(7));
        // Reservation state flips between identical requests; the PDP
        // must track it, so neither decision may come from the memo.
        assert!(!pdp
            .decide(&req, &vars(), &CpuOracle(vec![]))
            .unwrap()
            .decision
            .is_grant());
        assert!(pdp
            .decide(&req, &vars(), &CpuOracle(vec![7]))
            .unwrap()
            .decision
            .is_grant());
        assert_eq!(pdp.cache_stats().0, 0);
        assert_eq!(pdp.cache_len(), 0);
    }

    #[test]
    fn time_and_avail_bw_come_from_domain_vars() {
        let pdp = PolicyServer::from_source(
            r#"if Time > 8am and Time < 5pm and BW <= Avail_BW { return grant } return deny"#,
            groups(),
        )
        .unwrap();
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"))
            .with_attr("bw", bw::mbps(50));
        let mut v = vars();
        assert!(pdp
            .decide(&req, &v, &NoReservations)
            .unwrap()
            .decision
            .is_grant());
        v.now_minutes = 20 * 60; // evening
        assert!(!pdp
            .decide(&req, &v, &NoReservations)
            .unwrap()
            .decision
            .is_grant());
        v.now_minutes = 10 * 60;
        v.avail_bw_bps = 1_000_000; // only 1 Mb/s left
        assert!(!pdp
            .decide(&req, &v, &NoReservations)
            .unwrap()
            .decision
            .is_grant());
    }
}
