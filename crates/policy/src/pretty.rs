//! Pretty-printer: render a parsed [`Policy`] back to canonical source.
//!
//! Round-tripping (`parse ∘ pretty ≡ id` on the AST) is property-tested;
//! administrators can normalize hand-written policy files, and tooling
//! can emit machine-generated policies that stay human-reviewable.

use crate::ast::{Decision, Expr, Policy, Stmt};
use crate::attr::Value;
use std::fmt::Write;

/// Render a policy as canonical source text.
pub fn pretty(policy: &Policy) -> String {
    let mut out = String::new();
    for stmt in &policy.stmts {
        write_stmt(&mut out, stmt, 0);
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match stmt {
        Stmt::Return(Decision::Grant) => out.push_str("return grant\n"),
        Stmt::Return(Decision::Deny(None)) => out.push_str("return deny\n"),
        Stmt::Return(Decision::Deny(Some(reason))) => {
            let _ = writeln!(out, "return deny {reason:?}");
        }
        Stmt::Attach { key, value } => {
            let _ = writeln!(out, "attach {key} = {}", render_expr(value));
        }
        Stmt::If {
            cond,
            then,
            otherwise,
        } => {
            let _ = writeln!(out, "if {} {{", render_expr(cond));
            for s in then {
                write_stmt(out, s, level + 1);
            }
            indent(out, level);
            if otherwise.is_empty() {
                out.push_str("}\n");
            } else if otherwise.len() == 1 && matches!(otherwise[0], Stmt::If { .. }) {
                out.push_str("} else ");
                // Chain: render the nested if at the same indent, inline.
                let mut chained = String::new();
                write_stmt(&mut chained, &otherwise[0], level);
                out.push_str(chained.trim_start());
            } else {
                out.push_str("} else {\n");
                for s in otherwise {
                    write_stmt(out, s, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
    }
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => render_value(v),
        Expr::Attr(a) => a.clone(),
        Expr::Call(name, args) => {
            let args: Vec<String> = args.iter().map(render_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Cmp(l, op, r) => format!("{} {op} {}", render_expr(l), render_expr(r)),
        Expr::And(l, r) => format!("({} and {})", render_expr(l), render_expr(r)),
        Expr::Or(l, r) => format!("({} or {})", render_expr(l), render_expr(r)),
        Expr::Not(inner) => format!("not ({})", render_expr(inner)),
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("{s:?}"),
        Value::Int(i) => i.to_string(),
        Value::Bandwidth(b) => format!("{b}bps"),
        Value::TimeOfDay(m) => format!("{}:{:02}", m / 60, m % 60),
        Value::Bool(b) => b.to_string(),
        // Lists cannot appear as literals in source; render as a
        // parenthesized comment-safe placeholder (they only arise from
        // the environment at evaluation time).
        Value::List(items) => {
            let items: Vec<String> = items.iter().map(render_value).collect();
            format!("({})", items.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::samples;

    #[test]
    fn samples_round_trip_through_pretty() {
        for src in [
            samples::FIG1_DOMAIN_A,
            samples::FIG1_DOMAIN_B,
            samples::FIG6_DOMAIN_A,
            samples::FIG6_DOMAIN_B,
            samples::FIG6_DOMAIN_C,
        ] {
            let p1 = parse(src).unwrap();
            let rendered = pretty(&p1);
            let p2 = parse(&rendered).unwrap_or_else(|e| panic!("{e}\n---\n{rendered}"));
            assert_eq!(
                p1.stmts, p2.stmts,
                "round-trip changed the AST:\n{rendered}"
            );
        }
    }

    #[test]
    fn time_renders_unambiguously() {
        // 17:00 must render as a parseable time literal, not "5pm-ish".
        let p = parse("if Time > 17:00 { return grant } return deny").unwrap();
        let rendered = pretty(&p);
        assert!(rendered.contains("17:00"), "{rendered}");
        assert_eq!(parse(&rendered).unwrap().stmts, p.stmts);
    }

    #[test]
    fn bandwidth_renders_as_bps() {
        let p = parse("if BW <= 10Mb/s { return grant } return deny").unwrap();
        let rendered = pretty(&p);
        assert!(rendered.contains("10000000bps"), "{rendered}");
        assert_eq!(parse(&rendered).unwrap().stmts, p.stmts);
    }

    #[test]
    fn else_if_chains_stay_flat() {
        let src = r#"
        if a = 1 { return grant }
        else if a = 2 { return deny }
        else { attach x = 3 return grant }
        return deny
        "#;
        let p = parse(src).unwrap();
        let rendered = pretty(&p);
        assert_eq!(parse(&rendered).unwrap().stmts, p.stmts);
        assert!(rendered.contains("} else if"), "{rendered}");
    }
}
