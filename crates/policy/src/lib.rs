//! # qos-policy — policy information substrate
//!
//! §4–5 of the HPDC 2001 paper require each bandwidth broker to evaluate
//! local policy over request parameters, authenticated identity,
//! assertions, and verified capabilities, and to hand back a decision
//! *plus a modified request*. This crate provides that machinery:
//!
//! * [`attr`] — typed attribute values and sets (the "simple
//!   attribute-value pairs" the propagation protocol carries);
//! * [`token`], [`parser`], [`ast`] — a small policy language faithful to
//!   the paper's figures (`If User = Alice`, `BW <= 10Mb/s`,
//!   `Time > 8am`, `Issued_by(Capability) = ESnet`,
//!   `HasValidCPUResv(RAR)`, `Accredited_Physicist(requestor)`);
//! * [`eval`] — a total, deny-by-default evaluator;
//! * [`request`] — the [`request::PolicyRequest`] a PDP sees;
//! * [`server`] — the policy decision point ([`server::PolicyServer`]);
//! * [`group`] — group-membership servers with signed attestations;
//! * [`acl`] — traditional access control lists;
//! * [`samples`] — the paper's Figure 1 / Figure 6 policy files,
//!   transcribed.

pub mod acl;
pub mod ast;
pub mod attr;
pub mod eval;
pub mod group;
pub mod parser;
pub mod pretty;
pub mod request;
pub mod samples;
pub mod server;
pub mod token;

pub use acl::{AccessControlList, AclAction};
pub use ast::{CmpOp, Decision, Expr, Policy, Stmt};
pub use attr::{AttributeSet, Value};
pub use eval::{evaluate, EvalError, Outcome, PolicyEnv};
pub use group::{GroupAttestation, GroupServer};
pub use parser::{parse, parse_cached, ParseError};
pub use pretty::pretty;
pub use request::{Assertion, PolicyRequest, VerifiedCapability};
pub use server::{DomainVars, NoReservations, PolicyDecision, PolicyServer, ReservationOracle};
