//! Group-membership servers.
//!
//! §5 of the paper: *"the policy might say 'approved if group server P
//! validates the user as a physicist'; if the user's request includes the
//! assertion 'I am a physicist', then the policy server verifies that
//! assertion by contacting that group server … The group server then
//! verifies whether the user is a member of the group and responds
//! appropriately."*
//!
//! The server can also mint **signed attestations** so that downstream
//! domains can re-check a validation without re-contacting the server.

use qos_crypto::{DistinguishedName, KeyPair, PublicKey, Signature};
use std::collections::{BTreeMap, BTreeSet};

/// A signed statement "user U is a member of group G", issued by a group
/// server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAttestation {
    /// Group name.
    pub group: String,
    /// Member's distinguished name.
    pub member: DistinguishedName,
    /// Issuing server's name.
    pub server: String,
    /// Signature over the canonical encoding of (group, member, server).
    pub signature: Signature,
}

qos_wire::impl_wire_struct!(GroupAttestation {
    group,
    member,
    server,
    signature
});

impl GroupAttestation {
    fn payload(group: &str, member: &DistinguishedName, server: &str) -> Vec<u8> {
        let mut w = qos_wire::Writer::new();
        w.put_str(group);
        qos_wire::Encode::encode(member, &mut w);
        w.put_str(server);
        w.into_bytes()
    }

    /// Verify the attestation under the server's public key.
    pub fn verify(&self, server_pk: PublicKey) -> bool {
        server_pk.verify(
            &Self::payload(&self.group, &self.member, &self.server),
            &self.signature,
        )
    }
}

/// A group server: named groups with member sets, plus a signing key.
#[derive(Debug)]
pub struct GroupServer {
    name: String,
    key: KeyPair,
    groups: BTreeMap<String, BTreeSet<String>>,
}

impl GroupServer {
    /// Create a server with a signing key.
    pub fn new(name: &str, key: KeyPair) -> Self {
        Self {
            name: name.to_string(),
            key,
            groups: BTreeMap::new(),
        }
    }

    /// The server's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The server's public key.
    pub fn public_key(&self) -> PublicKey {
        self.key.public()
    }

    /// Add `member` (by common name, case-insensitive) to `group`.
    pub fn add_member(&mut self, group: &str, member: &str) {
        self.groups
            .entry(group.to_ascii_lowercase())
            .or_default()
            .insert(member.to_ascii_lowercase());
    }

    /// Remove `member` from `group`.
    pub fn remove_member(&mut self, group: &str, member: &str) {
        if let Some(set) = self.groups.get_mut(&group.to_ascii_lowercase()) {
            set.remove(&member.to_ascii_lowercase());
        }
    }

    /// Does `member` belong to `group`?
    pub fn is_member(&self, group: &str, member: &str) -> bool {
        self.groups
            .get(&group.to_ascii_lowercase())
            .is_some_and(|s| s.contains(&member.to_ascii_lowercase()))
    }

    /// Validate a membership claim and, if it holds, return a signed
    /// attestation the caller can forward downstream.
    pub fn attest(&self, group: &str, member: &DistinguishedName) -> Option<GroupAttestation> {
        let cn = member.common_name()?;
        if !self.is_member(group, cn) {
            return None;
        }
        let group = group.to_ascii_lowercase();
        let signature = self
            .key
            .sign(&GroupAttestation::payload(&group, member, &self.name));
        Some(GroupAttestation {
            group,
            member: member.clone(),
            server: self.name.clone(),
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> GroupServer {
        let mut s = GroupServer::new("LBNL-groups", KeyPair::from_seed(b"group-server"));
        s.add_member("physicists", "Charlie");
        s.add_member("ATLAS", "Alice");
        s
    }

    #[test]
    fn membership_is_case_insensitive() {
        let s = server();
        assert!(s.is_member("Physicists", "charlie"));
        assert!(s.is_member("atlas", "ALICE"));
        assert!(!s.is_member("physicists", "alice"));
        assert!(!s.is_member("nonexistent", "charlie"));
    }

    #[test]
    fn attestation_signs_and_verifies() {
        let s = server();
        let dn = DistinguishedName::user("Charlie", "LBNL");
        let att = s.attest("physicists", &dn).unwrap();
        assert!(att.verify(s.public_key()));
        // Non-members get no attestation.
        assert!(s
            .attest("physicists", &DistinguishedName::user("Alice", "ANL"))
            .is_none());
    }

    #[test]
    fn forged_attestation_fails() {
        let s = server();
        let dn = DistinguishedName::user("Charlie", "LBNL");
        let mut att = s.attest("physicists", &dn).unwrap();
        att.member = DistinguishedName::user("Mallory", "EVIL");
        assert!(!att.verify(s.public_key()));
    }

    #[test]
    fn removal_revokes_membership() {
        let mut s = server();
        s.remove_member("physicists", "Charlie");
        assert!(!s.is_member("physicists", "Charlie"));
        assert!(s
            .attest("physicists", &DistinguishedName::user("Charlie", "LBNL"))
            .is_none());
    }
}
