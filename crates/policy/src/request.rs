//! The request a policy decision point evaluates.
//!
//! Per §4 of the paper, a BB making a decision must consider: request
//! parameters, authentication information (the requestor's identity),
//! authorization information (assertions and verified capabilities), and
//! SLA information added by upstream brokers. All of that arrives here as
//! a [`PolicyRequest`].

use crate::attr::{AttributeSet, Value};
use qos_crypto::DistinguishedName;

/// An (unverified or third-party-verified) claim accompanying a request,
/// e.g. "I am a physicist" or a group membership asserted by the source
/// domain. The PDP decides whether and how to validate it (typically by
/// contacting a group server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assertion {
    /// Claim text, conventionally `kind:value` (e.g. `group:ATLAS`).
    pub claim: String,
}

qos_wire::impl_wire_struct!(Assertion { claim });

impl Assertion {
    /// A group-membership assertion.
    pub fn group(name: &str) -> Self {
        Self {
            claim: format!("group:{name}"),
        }
    }

    /// The group name if this is a group assertion.
    pub fn group_name(&self) -> Option<&str> {
        self.claim.strip_prefix("group:")
    }
}

/// A capability that has already been cryptographically verified by the
/// transport layer (chain checked per §6.5) before reaching the PDP. The
/// PDP "can directly use its attributes".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedCapability {
    /// Short name of the issuing community authorization server,
    /// e.g. `ESnet`.
    pub issuer: String,
    /// Attribute strings, e.g. `ESnet:member`.
    pub attributes: Vec<String>,
    /// Restriction strings accumulated during delegation.
    pub restrictions: Vec<String>,
}

qos_wire::impl_wire_struct!(VerifiedCapability {
    issuer,
    attributes,
    restrictions
});

/// Everything the PDP sees about one reservation request.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRequest {
    /// Authenticated identity of the original requestor.
    pub requestor: DistinguishedName,
    /// Request parameters (`bw`, `source_domain`, `dest_domain`,
    /// `reservation_type`, `cpu_reservation_id`, cost offers, …) plus
    /// anything upstream policy servers attached.
    pub attrs: AttributeSet,
    /// Unverified / third-party assertions travelling with the request.
    pub assertions: Vec<Assertion>,
    /// Capabilities already verified by the crypto layer.
    pub capabilities: Vec<VerifiedCapability>,
}

impl PolicyRequest {
    /// A request with just an identity; builder methods add the rest.
    pub fn new(requestor: DistinguishedName) -> Self {
        let mut attrs = AttributeSet::new();
        if let Some(cn) = requestor.common_name() {
            attrs.set("user", Value::Str(cn.to_string()));
        }
        Self {
            requestor,
            attrs,
            assertions: Vec::new(),
            capabilities: Vec::new(),
        }
    }

    /// Set a request attribute.
    pub fn with_attr(mut self, key: &str, value: Value) -> Self {
        self.attrs.set(key, value);
        self
    }

    /// Add an assertion.
    pub fn with_assertion(mut self, a: Assertion) -> Self {
        self.assertions.push(a);
        self
    }

    /// Add a verified capability.
    pub fn with_capability(mut self, c: VerifiedCapability) -> Self {
        self.capabilities.push(c);
        self
    }

    /// All group names claimed by assertions or granted by capabilities
    /// (`group:<name>` attributes).
    pub fn claimed_groups(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .assertions
            .iter()
            .filter_map(|a| a.group_name().map(str::to_string))
            .collect();
        for cap in &self.capabilities {
            for attr in &cap.attributes {
                if let Some(g) = attr.strip_prefix("group:") {
                    out.push(g.to_string());
                }
            }
        }
        out
    }

    /// Issuer names of all verified capabilities.
    pub fn capability_issuers(&self) -> Vec<String> {
        self.capabilities.iter().map(|c| c.issuer.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::bw;

    #[test]
    fn builder_sets_user_from_cn() {
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"));
        assert_eq!(req.attrs.get("user"), Some(&Value::Str("Alice".into())));
    }

    #[test]
    fn groups_from_assertions_and_capabilities() {
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"))
            .with_assertion(Assertion::group("ATLAS"))
            .with_capability(VerifiedCapability {
                issuer: "ESnet".into(),
                attributes: vec!["group:physicists".into(), "ESnet:member".into()],
                restrictions: vec![],
            });
        assert_eq!(req.claimed_groups(), vec!["ATLAS", "physicists"]);
        assert_eq!(req.capability_issuers(), vec!["ESnet"]);
    }

    #[test]
    fn attrs_accumulate() {
        let req = PolicyRequest::new(DistinguishedName::user("Alice", "ANL"))
            .with_attr("bw", bw::mbps(10))
            .with_attr("dest_domain", Value::Str("domain-c".into()));
        assert_eq!(req.attrs.get("bw"), Some(&bw::mbps(10)));
        assert_eq!(
            req.attrs.get("dest_domain"),
            Some(&Value::Str("domain-c".into()))
        );
    }
}
