//! Traditional access control lists.
//!
//! §5 of the paper lists, alongside group assertions and capabilities,
//! *"traditional access control lists … expressed in terms of the
//! identities of individuals who are allowed to use resources."* Domains
//! like Figure 1's domain A ("Alice can use the network, Bob cannot")
//! are exactly ACLs.

use qos_crypto::DistinguishedName;

/// Permit or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclAction {
    /// Allow the principal.
    Permit,
    /// Refuse the principal.
    Deny,
}

/// One ACL entry: a principal pattern and an action.
///
/// Patterns match against the principal's common name (case-insensitive)
/// or, when they contain `=`, against the full DN rendering. A trailing
/// `*` is a prefix wildcard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclEntry {
    /// The pattern, e.g. `alice`, `CN=BB,OU=domain-a*`, or `*`.
    pub pattern: String,
    /// What to do on match.
    pub action: AclAction,
}

impl AclEntry {
    fn matches(&self, dn: &DistinguishedName) -> bool {
        let candidates = [
            dn.common_name().unwrap_or_default().to_ascii_lowercase(),
            dn.to_string().to_ascii_lowercase(),
        ];
        let pat = self.pattern.to_ascii_lowercase();
        if let Some(prefix) = pat.strip_suffix('*') {
            candidates.iter().any(|c| c.starts_with(prefix))
        } else {
            candidates.contains(&pat)
        }
    }
}

/// A first-match ACL with a default action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessControlList {
    entries: Vec<AclEntry>,
    default: AclAction,
}

impl AccessControlList {
    /// An ACL with the given default (applied when nothing matches).
    pub fn new(default: AclAction) -> Self {
        Self {
            entries: Vec::new(),
            default,
        }
    }

    /// Append a permit entry.
    pub fn permit(mut self, pattern: &str) -> Self {
        self.entries.push(AclEntry {
            pattern: pattern.to_string(),
            action: AclAction::Permit,
        });
        self
    }

    /// Append a deny entry.
    pub fn deny(mut self, pattern: &str) -> Self {
        self.entries.push(AclEntry {
            pattern: pattern.to_string(),
            action: AclAction::Deny,
        });
        self
    }

    /// Evaluate the ACL for `principal` (first match wins).
    pub fn check(&self, principal: &DistinguishedName) -> AclAction {
        for e in &self.entries {
            if e.matches(principal) {
                return e.action;
            }
        }
        self.default
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the ACL has no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_domain_a_acl() {
        let acl = AccessControlList::new(AclAction::Deny)
            .permit("alice")
            .deny("bob");
        assert_eq!(
            acl.check(&DistinguishedName::user("Alice", "ANL")),
            AclAction::Permit
        );
        assert_eq!(
            acl.check(&DistinguishedName::user("Bob", "ANL")),
            AclAction::Deny
        );
        assert_eq!(
            acl.check(&DistinguishedName::user("Eve", "X")),
            AclAction::Deny
        );
    }

    #[test]
    fn first_match_wins() {
        let acl = AccessControlList::new(AclAction::Deny)
            .deny("alice")
            .permit("*");
        assert_eq!(
            acl.check(&DistinguishedName::user("Alice", "ANL")),
            AclAction::Deny
        );
        assert_eq!(
            acl.check(&DistinguishedName::user("Bob", "ANL")),
            AclAction::Permit
        );
    }

    #[test]
    fn dn_prefix_patterns() {
        let acl = AccessControlList::new(AclAction::Deny).permit("cn=bb,ou=domain-a*");
        assert_eq!(
            acl.check(&DistinguishedName::broker("domain-a")),
            AclAction::Permit
        );
        assert_eq!(
            acl.check(&DistinguishedName::broker("domain-b")),
            AclAction::Deny
        );
    }
}
