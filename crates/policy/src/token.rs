//! Lexer for the policy language.
//!
//! The token set covers the constructs appearing in the paper's policy
//! files (Figures 1 and 6): `If`/`Else`/`Return GRANT`/`Return DENY`,
//! comparisons, bandwidth literals (`10Mb/s`), time-of-day literals
//! (`8am`, `5pm`, `17:30`), predicate calls
//! (`Accredited_Physicist(requestor)`), and string/integer literals.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or attribute name.
    Ident(String),
    /// Quoted string literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Bandwidth literal in bits per second.
    Bandwidth(u64),
    /// Time-of-day literal in minutes since midnight.
    Time(u32),
    /// `if`
    If,
    /// `else`
    Else,
    /// `return`
    Return,
    /// `grant`
    Grant,
    /// `deny`
    Deny,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `true`
    True,
    /// `false`
    False,
    /// `attach` — records an attribute on the modified request.
    Attach,
    /// `=` (policy equality; `==` also accepted)
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Bandwidth(b) => write!(f, "{b}bps"),
            Token::Time(m) => write!(f, "{:02}:{:02}", m / 60, m % 60),
            Token::If => write!(f, "if"),
            Token::Else => write!(f, "else"),
            Token::Return => write!(f, "return"),
            Token::Grant => write!(f, "grant"),
            Token::Deny => write!(f, "deny"),
            Token::And => write!(f, "and"),
            Token::Or => write!(f, "or"),
            Token::Not => write!(f, "not"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::Attach => write!(f, "attach"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Le => write!(f, "<="),
            Token::Ge => write!(f, ">="),
            Token::Lt => write!(f, "<"),
            Token::Gt => write!(f, ">"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
        }
    }
}

/// A lexing failure with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Line the offending character is on.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize policy source text.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                i += 1;
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                }
                tokens.push(Token::Eq);
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected '=' after '!'".into(),
                        line,
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\n' {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            line,
                        });
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        line,
                    });
                }
                tokens.push(Token::Str(src[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(src, i, line)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &src[start..j];
                tokens.push(keyword_or_ident(word));
                i = j;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                });
            }
        }
    }
    Ok(tokens)
}

fn keyword_or_ident(word: &str) -> Token {
    match word.to_ascii_lowercase().as_str() {
        "if" => Token::If,
        "else" => Token::Else,
        "return" => Token::Return,
        "grant" => Token::Grant,
        "deny" => Token::Deny,
        "and" => Token::And,
        "or" => Token::Or,
        "not" => Token::Not,
        "true" => Token::True,
        "false" => Token::False,
        "attach" => Token::Attach,
        _ => Token::Ident(word.to_string()),
    }
}

/// Lex a numeric literal: plain integer, bandwidth (`10Mb/s`, `5MB/s`,
/// `500kb/s`, `2Gb/s`, `100bps`), or time (`8am`, `5pm`, `17:30`).
fn lex_number(src: &str, start: usize, line: usize) -> Result<(Token, usize), LexError> {
    let bytes = src.as_bytes();
    let mut j = start;
    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
        j += 1;
    }
    let digits: i64 = src[start..j].parse().map_err(|_| LexError {
        message: "integer literal out of range".into(),
        line,
    })?;

    // Time: HH:MM
    if j < bytes.len() && bytes[j] == b':' {
        let mstart = j + 1;
        let mut k = mstart;
        while k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
            k += 1;
        }
        if k == mstart {
            return Err(LexError {
                message: "expected minutes after ':'".into(),
                line,
            });
        }
        let minutes: u32 = src[mstart..k].parse().map_err(|_| LexError {
            message: "minutes out of range".into(),
            line,
        })?;
        if digits > 23 || minutes > 59 {
            return Err(LexError {
                message: format!("invalid time {digits}:{minutes:02}"),
                line,
            });
        }
        return Ok((Token::Time(digits as u32 * 60 + minutes), k));
    }

    // Suffix word (am/pm/units), letters plus optional "/s".
    let sstart = j;
    let mut k = j;
    while k < bytes.len() && (bytes[k] as char).is_ascii_alphabetic() {
        k += 1;
    }
    let suffix = &src[sstart..k];
    match suffix.to_ascii_lowercase().as_str() {
        "" => Ok((Token::Int(digits), j)),
        "am" => {
            if !(1..=12).contains(&digits) {
                return Err(LexError {
                    message: format!("invalid hour {digits}am"),
                    line,
                });
            }
            let h = if digits == 12 { 0 } else { digits as u32 };
            Ok((Token::Time(h * 60), k))
        }
        "pm" => {
            if !(1..=12).contains(&digits) {
                return Err(LexError {
                    message: format!("invalid hour {digits}pm"),
                    line,
                });
            }
            let h = if digits == 12 { 12 } else { digits as u32 + 12 };
            Ok((Token::Time(h * 60), k))
        }
        "bps" => Ok((Token::Bandwidth(digits as u64), k)),
        unit @ ("kb" | "mb" | "gb" | "b") => {
            // Expect "/s" after the unit. Case tells bits vs bytes: the
            // figures write both `10Mb/s` and `5MB/s`; an upper-case B is
            // treated as bytes (×8 bits), per convention.
            let bytes_unit = suffix.ends_with('B');
            let mut end = k;
            if end + 1 < bytes.len() && bytes[end] == b'/' && (bytes[end + 1] | 0x20) == b's' {
                end += 2;
            } else {
                return Err(LexError {
                    message: format!("expected '/s' after bandwidth unit {suffix:?}"),
                    line,
                });
            }
            let scale: u64 = match unit {
                "kb" => 1_000,
                "mb" => 1_000_000,
                "gb" => 1_000_000_000,
                _ => 1,
            };
            let mult = if bytes_unit { 8 } else { 1 };
            Ok((Token::Bandwidth(digits as u64 * scale * mult), end))
        }
        other => Err(LexError {
            message: format!("unknown numeric suffix {other:?}"),
            line,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_literals() {
        assert_eq!(lex("10Mb/s").unwrap(), vec![Token::Bandwidth(10_000_000)]);
        assert_eq!(lex("500kb/s").unwrap(), vec![Token::Bandwidth(500_000)]);
        assert_eq!(lex("2Gb/s").unwrap(), vec![Token::Bandwidth(2_000_000_000)]);
        // Upper-case B = bytes: 5MB/s = 40 Mbit/s.
        assert_eq!(lex("5MB/s").unwrap(), vec![Token::Bandwidth(40_000_000)]);
        assert_eq!(lex("100bps").unwrap(), vec![Token::Bandwidth(100)]);
    }

    #[test]
    fn time_literals() {
        assert_eq!(lex("8am").unwrap(), vec![Token::Time(8 * 60)]);
        assert_eq!(lex("5pm").unwrap(), vec![Token::Time(17 * 60)]);
        assert_eq!(lex("12am").unwrap(), vec![Token::Time(0)]);
        assert_eq!(lex("12pm").unwrap(), vec![Token::Time(12 * 60)]);
        assert_eq!(lex("17:30").unwrap(), vec![Token::Time(17 * 60 + 30)]);
        assert!(lex("25:00").is_err());
        assert!(lex("13pm").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            lex("If Return GRANT DENY Else").unwrap(),
            vec![
                Token::If,
                Token::Return,
                Token::Grant,
                Token::Deny,
                Token::Else
            ]
        );
    }

    #[test]
    fn operators_and_calls() {
        assert_eq!(
            lex("Issued_by(Capability) = ESnet").unwrap(),
            vec![
                Token::Ident("Issued_by".into()),
                Token::LParen,
                Token::Ident("Capability".into()),
                Token::RParen,
                Token::Eq,
                Token::Ident("ESnet".into()),
            ]
        );
        assert_eq!(lex("<= >= < > != = ==").unwrap().len(), 7);
    }

    #[test]
    fn comments_ignored() {
        let toks = lex("# full line\nif BW <= 10Mb/s // tail\n{ }").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::If,
                Token::Ident("BW".into()),
                Token::Le,
                Token::Bandwidth(10_000_000),
                Token::LBrace,
                Token::RBrace
            ]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(
            lex("\"hello world\"").unwrap(),
            vec![Token::Str("hello world".into())]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn error_reports_line() {
        let err = lex("if x\n  @").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
