//! The paper's policy files, transcribed into the concrete syntax.
//!
//! The paper stresses that "the actual syntax of the use conditions …
//! described as policy file in Figure 6 … represents one example scenario
//! of the propagation protocol" — these transcriptions preserve the
//! figures' semantics in this crate's brace-delimited syntax. They are
//! shared by the FIG1/FIG6 experiments, the examples, and the
//! integration tests.

use crate::parser::{parse, ParseError};
use crate::Policy;

/// Figure 1, domain A: "If User = Alice … GRANT; if User = Bob … DENY".
pub const FIG1_DOMAIN_A: &str = r#"
# Figure 1, Domain A policy file.
if User = Alice and Reservation_Type = Network { return grant }
if User = Bob and Reservation_Type = Network { return deny "domain A: Bob may not use the network" }
return deny "domain A: no matching rule"
"#;

/// Figure 1, domain B: "only accredited physicists can use the network".
pub const FIG1_DOMAIN_B: &str = r#"
# Figure 1, Domain B policy file.
if Reservation_Type = Network {
    if Accredited_Physicist(requestor) { return grant }
    return deny "domain B: requestor is not an accredited physicist"
}
return deny "domain B: no matching rule"
"#;

/// Figure 6, domain A (source): Alice gets up to the maximum available,
/// except during business hours when she is capped at 10 Mb/s.
pub const FIG6_DOMAIN_A: &str = r#"
# Figure 6, Policy File A (source domain).
if User = Alice {
    if Time > 8am and Time < 5pm {
        if BW <= 10Mb/s { return grant }
        return deny "domain A: business-hours cap is 10Mb/s"
    }
    if BW <= Avail_BW { return grant }
    return deny "domain A: exceeds available bandwidth"
}
return deny "domain A: unknown user"
"#;

/// Figure 6, domain B (transit): up to 10 Mb/s for ATLAS members or
/// holders of an ESnet capability.
pub const FIG6_DOMAIN_B: &str = r#"
# Figure 6, Policy File B (intermediate domain).
if Group = Atlas {
    if BW <= 10Mb/s { return grant }
}
if Issued_by(Capability) = ESnet {
    if BW <= 10Mb/s { return grant }
}
return deny "domain B: not authorized for this traffic profile"
"#;

/// Figure 6, domain C (destination): reservations of 5 Mb/s and above
/// require an ESnet capability *and* a valid coupled CPU reservation.
///
/// The figure prints the threshold as `5MB/s` while the prose says
/// "above 5 Mb/s"; we follow the prose (the figure's capitalization is a
/// typo — a bytes-per-second threshold would be inconsistent with every
/// other bandwidth in the paper).
pub const FIG6_DOMAIN_C: &str = r#"
# Figure 6, Policy File C (destination domain).
if BW >= 5Mb/s {
    if Issued_by(Capability) = ESnet and HasValidCPUResv(RAR) { return grant }
    return deny "domain C: >=5Mb/s requires ESnet capability and a valid CPU reservation"
}
return grant
"#;

/// Parse one of the sample policies (panics only on programmer error —
/// the constants are covered by tests).
pub fn parsed(src: &str) -> Result<Policy, ParseError> {
    parse(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_samples_parse() {
        for (name, src) in [
            ("fig1a", FIG1_DOMAIN_A),
            ("fig1b", FIG1_DOMAIN_B),
            ("fig6a", FIG6_DOMAIN_A),
            ("fig6b", FIG6_DOMAIN_B),
            ("fig6c", FIG6_DOMAIN_C),
        ] {
            let p = parsed(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(p.rule_count() > 0, "{name} has no rules");
        }
    }
}
