//! Policy evaluator.
//!
//! The evaluator walks a parsed [`Policy`] against a [`PolicyEnv`] — the
//! bridge to everything outside the policy text: request attributes,
//! domain state (`Avail_BW`, the current time), group-membership lookups
//! (`Accredited_Physicist(requestor)`), capability inspection
//! (`Issued_by(Capability)`), and coupled-reservation checks
//! (`HasValidCPUResv(RAR)`).
//!
//! Evaluation is **total** modulo environment errors: it terminates (the
//! AST is finite and there are no loops), never panics, and falls back to
//! a default deny when no `return` statement fires — deny-by-default is
//! the only safe posture for an admission-control PDP.

use crate::ast::{CmpOp, Decision, Expr, Policy, Stmt};
use crate::attr::{AttributeSet, Value};
use std::fmt;

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A comparison required an ordering between incomparable types.
    TypeMismatch {
        /// Operator that failed.
        op: String,
        /// Left operand type.
        left: &'static str,
        /// Right operand type.
        right: &'static str,
    },
    /// The environment knows no function of this name.
    UnknownFunction(String),
    /// A function was called with the wrong arguments.
    BadArguments {
        /// Function name.
        function: String,
        /// Problem description.
        message: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeMismatch { op, left, right } => {
                write!(f, "cannot apply {op} to {left} and {right}")
            }
            EvalError::UnknownFunction(name) => write!(f, "unknown function {name}"),
            EvalError::BadArguments { function, message } => {
                write!(f, "bad arguments to {function}: {message}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The evaluator's window onto the world.
pub trait PolicyEnv {
    /// Resolve an attribute (request parameter or domain variable).
    /// Names arrive as written in the policy; implementations should
    /// compare case-insensitively.
    fn attr(&self, name: &str) -> Option<Value>;

    /// Dispatch a predicate call such as `Accredited_Physicist(requestor)`.
    fn call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError>;
}

/// Result of evaluating a policy against a request.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Grant or deny.
    pub decision: Decision,
    /// Attributes attached by `attach` statements along the taken path —
    /// the "modified request" the paper's policy server passes back.
    pub attachments: AttributeSet,
    /// Human-readable trace of the conditions evaluated and the decision
    /// taken, for diagnostics and the experiment binaries.
    pub trace: Vec<String>,
}

/// Evaluate `policy` against `env`.
pub fn evaluate(policy: &Policy, env: &dyn PolicyEnv) -> Result<Outcome, EvalError> {
    let mut attachments = AttributeSet::new();
    let mut trace = Vec::new();
    let decision =
        eval_block(&policy.stmts, env, &mut attachments, &mut trace)?.unwrap_or_else(|| {
            trace.push("fell through: default deny".to_string());
            Decision::Deny(Some("no matching policy rule".to_string()))
        });
    trace.push(format!("decision: {decision}"));
    Ok(Outcome {
        decision,
        attachments,
        trace,
    })
}

fn eval_block(
    stmts: &[Stmt],
    env: &dyn PolicyEnv,
    attachments: &mut AttributeSet,
    trace: &mut Vec<String>,
) -> Result<Option<Decision>, EvalError> {
    for stmt in stmts {
        match stmt {
            Stmt::Return(d) => return Ok(Some(d.clone())),
            Stmt::Attach { key, value } => {
                let v = eval_expr(value, env)?;
                trace.push(format!("attach {key} = {v}"));
                attachments.set(key, v);
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                let c = eval_expr(cond, env)?.truthy();
                trace.push(format!("if {cond} => {c}"));
                let branch = if c { then } else { otherwise };
                if let Some(d) = eval_block(branch, env, attachments, trace)? {
                    return Ok(Some(d));
                }
            }
        }
    }
    Ok(None)
}

fn eval_expr(expr: &Expr, env: &dyn PolicyEnv) -> Result<Value, EvalError> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        // Unquoted identifiers double as string literals when the
        // environment has no binding — the figures write `User = Alice`,
        // not `User = "Alice"`.
        Expr::Attr(name) => Ok(env.attr(name).unwrap_or_else(|| Value::Str(name.clone()))),
        Expr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                // Call arguments resolve attribute-first as well; a bare
                // `requestor` or `RAR` resolves through the environment.
                vals.push(eval_expr(a, env)?);
            }
            env.call(name, &vals)
        }
        Expr::Cmp(l, op, r) => {
            let lv = eval_expr(l, env)?;
            let rv = eval_expr(r, env)?;
            let b = compare(&lv, *op, &rv)?;
            Ok(Value::Bool(b))
        }
        Expr::And(l, r) => {
            // Short-circuit: the right side may call out to group servers.
            if !eval_expr(l, env)?.truthy() {
                return Ok(Value::Bool(false));
            }
            Ok(Value::Bool(eval_expr(r, env)?.truthy()))
        }
        Expr::Or(l, r) => {
            if eval_expr(l, env)?.truthy() {
                return Ok(Value::Bool(true));
            }
            Ok(Value::Bool(eval_expr(r, env)?.truthy()))
        }
        Expr::Not(e) => Ok(Value::Bool(!eval_expr(e, env)?.truthy())),
    }
}

fn compare(l: &Value, op: CmpOp, r: &Value) -> Result<bool, EvalError> {
    use std::cmp::Ordering;
    match op {
        CmpOp::Eq => Ok(l.policy_eq(r)),
        CmpOp::Ne => Ok(!l.policy_eq(r)),
        _ => {
            let ord = l
                .partial_cmp_num(r)
                .ok_or_else(|| EvalError::TypeMismatch {
                    op: op.to_string(),
                    left: l.type_name(),
                    right: r.type_name(),
                })?;
            Ok(match op {
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::bw;
    use crate::parser::parse;
    use std::collections::HashMap;

    /// Test environment: a map plus a couple of canned predicates.
    struct Env {
        attrs: HashMap<String, Value>,
        physicists: Vec<String>,
    }

    impl Env {
        fn new() -> Self {
            Self {
                attrs: HashMap::new(),
                physicists: vec!["charlie".into()],
            }
        }

        fn with(mut self, k: &str, v: Value) -> Self {
            self.attrs.insert(k.to_ascii_lowercase(), v);
            self
        }
    }

    impl PolicyEnv for Env {
        fn attr(&self, name: &str) -> Option<Value> {
            self.attrs.get(&name.to_ascii_lowercase()).cloned()
        }

        fn call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
            match name.to_ascii_lowercase().as_str() {
                "accredited_physicist" => {
                    let who = match args.first() {
                        Some(Value::Str(s)) => s.to_ascii_lowercase(),
                        _ => {
                            return Err(EvalError::BadArguments {
                                function: name.into(),
                                message: "expected a user name".into(),
                            })
                        }
                    };
                    Ok(Value::Bool(self.physicists.contains(&who)))
                }
                _ => Err(EvalError::UnknownFunction(name.to_string())),
            }
        }
    }

    #[test]
    fn figure1_domain_a_policy() {
        let p = parse(
            r#"
            if User = Alice and Reservation_Type = Network { return grant }
            if User = Bob and Reservation_Type = Network { return deny "policy: Bob denied" }
            return deny
            "#,
        )
        .unwrap();
        let grant = evaluate(
            &p,
            &Env::new()
                .with("user", Value::Str("Alice".into()))
                .with("reservation_type", Value::Str("network".into())),
        )
        .unwrap();
        assert!(grant.decision.is_grant());
        let deny = evaluate(
            &p,
            &Env::new()
                .with("user", Value::Str("Bob".into()))
                .with("reservation_type", Value::Str("network".into())),
        )
        .unwrap();
        assert_eq!(
            deny.decision,
            Decision::Deny(Some("policy: Bob denied".into()))
        );
    }

    #[test]
    fn figure1_domain_b_policy_uses_group_server() {
        let p = parse(
            r#"
            if Reservation_Type = Network {
                if Accredited_Physicist(requestor) { return grant }
                return deny "not an accredited physicist"
            }
            return deny
            "#,
        )
        .unwrap();
        let env = Env::new()
            .with("reservation_type", Value::Str("network".into()))
            .with("requestor", Value::Str("charlie".into()));
        assert!(evaluate(&p, &env).unwrap().decision.is_grant());
        let env = Env::new()
            .with("reservation_type", Value::Str("network".into()))
            .with("requestor", Value::Str("alice".into()));
        assert!(!evaluate(&p, &env).unwrap().decision.is_grant());
    }

    #[test]
    fn figure6_policy_a_business_hours() {
        let p = parse(
            r#"
            if User = Alice {
                if Time > 8am and Time < 5pm {
                    if BW <= 10Mb/s { return grant }
                    return deny "business-hours cap is 10Mb/s"
                }
                if BW <= Avail_BW { return grant }
                return deny "exceeds available bandwidth"
            }
            return deny
            "#,
        )
        .unwrap();
        let base = || {
            Env::new()
                .with("user", Value::Str("Alice".into()))
                .with("avail_bw", bw::mbps(100))
        };
        // Business hours, under the cap: grant.
        let env = base()
            .with("time", Value::TimeOfDay(10 * 60))
            .with("bw", bw::mbps(10));
        assert!(evaluate(&p, &env).unwrap().decision.is_grant());
        // Business hours, over the cap: deny.
        let env = base()
            .with("time", Value::TimeOfDay(10 * 60))
            .with("bw", bw::mbps(20));
        assert!(!evaluate(&p, &env).unwrap().decision.is_grant());
        // Night, up to available: grant.
        let env = base()
            .with("time", Value::TimeOfDay(22 * 60))
            .with("bw", bw::mbps(80));
        assert!(evaluate(&p, &env).unwrap().decision.is_grant());
        // Night, beyond available: deny.
        let env = base()
            .with("time", Value::TimeOfDay(22 * 60))
            .with("bw", bw::mbps(200));
        assert!(!evaluate(&p, &env).unwrap().decision.is_grant());
    }

    #[test]
    fn default_deny_on_fallthrough() {
        let p = parse("if User = Nobody { return grant }").unwrap();
        let out = evaluate(&p, &Env::new().with("user", Value::Str("alice".into()))).unwrap();
        assert_eq!(
            out.decision,
            Decision::Deny(Some("no matching policy rule".into()))
        );
    }

    #[test]
    fn attachments_collected_only_on_taken_path() {
        let p = parse(
            r#"
            if User = Alice {
                attach cost_offer = 42
                return grant
            }
            attach never = 1
            return deny
            "#,
        )
        .unwrap();
        let out = evaluate(&p, &Env::new().with("user", Value::Str("alice".into()))).unwrap();
        assert_eq!(out.attachments.get("cost_offer"), Some(&Value::Int(42)));
        assert_eq!(out.attachments.get("never"), None);
    }

    #[test]
    fn type_mismatch_is_an_error_not_a_panic() {
        let p = parse("if User < 5 { return grant } return deny").unwrap();
        let err = evaluate(&p, &Env::new().with("user", Value::Str("alice".into()))).unwrap_err();
        assert!(matches!(err, EvalError::TypeMismatch { .. }));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let p = parse("if Frobnicate(requestor) { return grant } return deny").unwrap();
        assert!(matches!(
            evaluate(&p, &Env::new()),
            Err(EvalError::UnknownFunction(_))
        ));
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        // `false and Unknown()` must not call the unknown function.
        let p = parse("if User = Bob and Frobnicate(x) { return grant } return deny").unwrap();
        let out = evaluate(&p, &Env::new().with("user", Value::Str("alice".into()))).unwrap();
        assert!(!out.decision.is_grant());
    }

    #[test]
    fn trace_records_path() {
        let p = parse("if User = Alice { return grant } return deny").unwrap();
        let out = evaluate(&p, &Env::new().with("user", Value::Str("alice".into()))).unwrap();
        assert!(out.trace.iter().any(|t| t.contains("=> true")));
        assert!(out.trace.last().unwrap().contains("GRANT"));
    }
}
