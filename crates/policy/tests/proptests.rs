//! Property tests for the policy language and evaluator.

use proptest::prelude::*;
use qos_crypto::{DistinguishedName, KeyPair};
use qos_policy::attr::Value;
use qos_policy::{parse, DomainVars, GroupServer, NoReservations, PolicyRequest, PolicyServer};

/// Strategy for random (but syntactically valid) policy sources.
fn arb_policy_src() -> impl Strategy<Value = String> {
    let cond = prop_oneof![
        Just("User = Alice".to_string()),
        Just("BW <= 10Mb/s".to_string()),
        Just("BW > 500kb/s".to_string()),
        Just("Time > 8am and Time < 5pm".to_string()),
        Just("Group = Atlas".to_string()),
        Just("Issued_by(Capability) = ESnet".to_string()),
        Just("not (User = Bob)".to_string()),
        Just("Avail_BW >= 1Mb/s or User = root".to_string()),
    ];
    let stmt = cond.prop_flat_map(|c| {
        prop_oneof![
            Just(format!("if {c} {{ return grant }}")),
            Just(format!("if {c} {{ return deny \"nope\" }}")),
            Just(format!("if {c} {{ attach cost_offer = 3 return grant }}")),
            Just(format!(
                "if {c} {{ if BW <= 1Mb/s {{ return grant }} }} else {{ return deny }}"
            )),
        ]
    });
    proptest::collection::vec(stmt, 1..8).prop_map(|stmts| {
        let mut src = stmts.join("\n");
        src.push_str("\nreturn deny \"fallthrough\"\n");
        src
    })
}

fn arb_request() -> impl Strategy<Value = PolicyRequest> {
    (
        prop_oneof![Just("Alice"), Just("Bob"), Just("Eve")],
        0u64..200_000_000,
        proptest::bool::ANY,
    )
        .prop_map(|(user, bw, atlas)| {
            let mut req = PolicyRequest::new(DistinguishedName::user(user, "ANL"))
                .with_attr("bw", Value::Bandwidth(bw));
            if atlas {
                req = req.with_assertion(qos_policy::Assertion::group("Atlas"));
            }
            req
        })
}

proptest! {
    /// The evaluator is total over generated policies and requests: it
    /// never panics and always returns GRANT or DENY.
    #[test]
    fn evaluator_is_total(src in arb_policy_src(), req in arb_request(), hour in 0u32..24, avail in 0u64..1_000_000_000) {
        let policy = parse(&src).expect("generated policies parse");
        let pdp = PolicyServer::new(policy, GroupServer::new("g", KeyPair::from_seed(b"g")));
        let vars = DomainVars {
            avail_bw_bps: avail,
            now_minutes: hour * 60,
            domain: "prop".into(),
        };
        let out = pdp.decide(&req, &vars, &NoReservations);
        prop_assert!(out.is_ok(), "{out:?}");
    }

    /// Parsing is deterministic and stable under re-parsing its own
    /// recorded source.
    #[test]
    fn parse_is_deterministic(src in arb_policy_src()) {
        let a = parse(&src).unwrap();
        let b = parse(&src).unwrap();
        prop_assert_eq!(a.stmts, b.stmts);
    }

    /// Arbitrary byte soup either fails to parse or (if it parses)
    /// evaluates without panicking — the lexer/parser never crash.
    #[test]
    fn parser_never_panics(garbage in ".{0,200}") {
        if let Ok(policy) = parse(&garbage) {
            let pdp = PolicyServer::new(policy, GroupServer::new("g", KeyPair::from_seed(b"g")));
            let req = PolicyRequest::new(DistinguishedName::user("X", "Y"));
            let vars = DomainVars { avail_bw_bps: 0, now_minutes: 0, domain: "g".into() };
            let _ = pdp.decide(&req, &vars, &NoReservations);
        }
    }

    /// Policy equality on values is symmetric.
    #[test]
    fn policy_eq_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.policy_eq(&b), b.policy_eq(&a));
    }

    /// A generation bump (policy reload) always invalidates the decision
    /// cache: the identical request replays from the memo before the
    /// bump, and after it is re-evaluated fresh — matching what a brand
    /// new PDP loaded with the new policy would decide.
    #[test]
    fn generation_bump_always_invalidates_cached_decisions(
        src1 in arb_policy_src(),
        src2 in arb_policy_src(),
        req in arb_request(),
        hour in 0u32..24,
        avail in 0u64..1_000_000_000,
    ) {
        let vars = DomainVars {
            avail_bw_bps: avail,
            now_minutes: hour * 60,
            domain: "prop".into(),
        };
        let mut pdp = PolicyServer::new(
            parse(&src1).unwrap(),
            GroupServer::new("g", KeyPair::from_seed(b"g")),
        );
        let g0 = pdp.generation();
        let first = pdp.decide(&req, &vars, &NoReservations).unwrap();
        let (h0, _, _) = pdp.cache_stats();
        let replay = pdp.decide(&req, &vars, &NoReservations).unwrap();
        let (h1, _, _) = pdp.cache_stats();
        prop_assert_eq!(h1, h0 + 1, "identical request must replay from the memo");
        prop_assert_eq!(&replay, &first);

        pdp.set_policy(parse(&src2).unwrap());
        prop_assert!(pdp.generation() > g0, "reload must advance the generation");
        prop_assert_eq!(pdp.cache_len(), 0, "reload must empty the memo");

        let (_, m0, _) = pdp.cache_stats();
        let after = pdp.decide(&req, &vars, &NoReservations).unwrap();
        let (_, m1, _) = pdp.cache_stats();
        prop_assert_eq!(m1, m0 + 1, "post-bump decision must miss the cache");

        let fresh = PolicyServer::new(
            parse(&src2).unwrap(),
            GroupServer::new("g", KeyPair::from_seed(b"g")),
        );
        let expected = fresh.decide(&req, &vars, &NoReservations).unwrap();
        prop_assert_eq!(&after, &expected);
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(Value::Bandwidth),
        (0u32..1440).prop_map(Value::TimeOfDay),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z]{0,8}".prop_map(Value::Str),
    ];
    leaf.clone().prop_recursive(2, 8, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

proptest! {
    /// `parse(pretty(p))` reproduces the AST for every generated policy.
    #[test]
    fn pretty_round_trips(src in arb_policy_src()) {
        let p1 = parse(&src).unwrap();
        let rendered = qos_policy::pretty(&p1);
        let p2 = parse(&rendered).unwrap();
        prop_assert_eq!(p1.stmts, p2.stmts);
    }
}
