//! Property tests for the crypto substrate.

use proptest::prelude::*;
use qos_crypto::cert::{Extension, TbsCertificate, Validity};
use qos_crypto::{
    Certificate, CertificateAuthority, DelegationChain, DistinguishedName, KeyPair, Restriction,
    Timestamp,
};

proptest! {
    /// Any message signs and verifies; any other message fails.
    #[test]
    fn sign_verify_holds_for_arbitrary_messages(
        seed in any::<[u8; 8]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        other in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let kp = KeyPair::from_seed(&seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public().verify(&msg, &sig));
        if other != msg {
            prop_assert!(!kp.public().verify(&other, &sig));
        }
    }

    /// Flipping any single bit of a signed certificate's TBS bytes breaks
    /// verification (byte-level integrity of the canonical encoding).
    #[test]
    fn certificate_bitflip_breaks_signature(
        bit in 0usize..64,
        name in "[a-z]{1,12}",
    ) {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("CA"),
            KeyPair::from_seed(b"ca"),
        );
        let cert = ca.issue_identity(
            DistinguishedName::user(&name, "ORG"),
            KeyPair::from_seed(name.as_bytes()).public(),
            Validity::unbounded(),
        );
        let mut bytes = qos_wire::to_bytes(&cert.tbs);
        let idx = bit % (bytes.len() * 8);
        bytes[idx / 8] ^= 1 << (idx % 8);
        // Either the mutated bytes no longer decode, or they decode to a
        // TBS whose signature fails.
        if let Ok(mutated) = qos_wire::from_bytes::<TbsCertificate>(&bytes) {
            let forged = Certificate { tbs: mutated, signature: cert.signature };
            prop_assert!(forged.verify_signature(ca.public_key()).is_err());
        }
    }

    /// Delegation never widens capabilities regardless of the subsets each
    /// hop retains.
    #[test]
    fn delegation_monotonic(
        caps in proptest::collection::btree_set("[a-z]{1,8}", 1..6),
        keep_mask in any::<u8>(),
    ) {
        let mut cas = qos_crypto::CommunityAuthorizationServer::new(
            "CAS",
            KeyPair::from_seed(b"cas"),
        );
        let proxy = KeyPair::from_seed(b"proxy");
        let caps: Vec<String> = caps.into_iter().collect();
        let grant = cas.grant(
            &DistinguishedName::user("U", "O"),
            proxy.public(),
            caps.clone(),
            Validity::unbounded(),
        );
        let bb = KeyPair::from_seed(b"bb");
        let chain = DelegationChain::new(grant)
            .delegate_filtered(
                &proxy,
                DistinguishedName::broker("d"),
                bb.public(),
                vec![Restriction::ValidForRar(1)],
                Validity::unbounded(),
                |c| {
                    let i = caps.iter().position(|x| x == c).unwrap_or(0);
                    keep_mask & (1 << (i % 8)) != 0
                },
            )
            .unwrap();
        let verified = chain
            .verify_links(cas.public_key(), Timestamp(0))
            .unwrap();
        for c in &verified.capabilities {
            prop_assert!(caps.contains(c), "capability {c} appeared from nowhere");
        }
        prop_assert!(verified.restrictions.contains(&Restriction::ValidForRar(1)));
    }

    /// Batch verification accepts exactly when every signature verifies
    /// individually, under arbitrary per-item tampering.
    #[test]
    fn batch_agrees_with_individual_verdicts(
        n in 1usize..6,
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 6..7),
        tamper in proptest::collection::vec(any::<bool>(), 6..7),
    ) {
        let owned: Vec<(Vec<u8>, qos_crypto::PublicKey, qos_crypto::Signature)> = (0..n)
            .map(|i| {
                let kp = KeyPair::from_seed(&[i as u8, 0xB, 0xA, 0x7]);
                let msg = msgs[i].clone();
                let mut sig = kp.sign(&msg);
                if tamper[i] {
                    sig.s ^= 1;
                }
                (msg, kp.public(), sig)
            })
            .collect();
        let items: Vec<(&[u8], qos_crypto::PublicKey, qos_crypto::Signature)> = owned
            .iter()
            .map(|(m, pk, s)| (m.as_slice(), *pk, *s))
            .collect();
        let individual = items.iter().all(|(m, pk, s)| pk.verify(m, s));
        prop_assert_eq!(qos_crypto::verify_batch(&items), individual);
    }

    /// The verification cache is verdict-transparent: across arbitrary
    /// interleavings of valid and corrupted signatures — with repeats,
    /// so both the hit and the miss path are exercised — a cached
    /// verification agrees bit-for-bit with a fresh Schnorr
    /// verification.
    #[test]
    fn cached_verification_agrees_with_fresh_schnorr(
        ops in proptest::collection::vec((0usize..3, 0usize..3, any::<bool>()), 1..40),
    ) {
        let cache = qos_crypto::vcache::VerifyCache::new(16);
        let keys: Vec<KeyPair> = (0..3u8).map(|i| KeyPair::from_seed(&[i, 0xCA])).collect();
        let msgs: [&[u8]; 3] = [b"msg-0", b"msg-one", b"message-two"];
        let sigs: Vec<Vec<qos_crypto::Signature>> = keys
            .iter()
            .map(|k| msgs.iter().map(|m| k.sign(m)).collect())
            .collect();
        for (ki, mi, tamper) in ops {
            let mut sig = sigs[ki][mi];
            if tamper {
                sig.s ^= 1;
            }
            let fresh = keys[ki].public().verify(msgs[mi], &sig);
            prop_assert_eq!(cache.verify(msgs[mi], keys[ki].public(), &sig), fresh);
        }
    }

    /// Certificate verification through the cache agrees with the fresh
    /// verdict across valid and tampered certificates and arbitrary
    /// clock positions relative to the validity window (the cache's
    /// expiry-eviction must never change a verdict — validity itself is
    /// the caller's check).
    #[test]
    fn cached_cert_verification_agrees_with_fresh(
        ops in proptest::collection::vec((0usize..3, any::<bool>(), 0u64..2000), 1..32),
    ) {
        let cache = qos_crypto::vcache::VerifyCache::new(16);
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("CA"),
            KeyPair::from_seed(b"pc-ca"),
        );
        let certs: Vec<Certificate> = (0..3u8)
            .map(|i| {
                ca.issue_identity(
                    DistinguishedName::user(&format!("u{i}"), "O"),
                    KeyPair::from_seed(&[i, 0xCE]).public(),
                    Validity::starting_at(Timestamp(0), 1000),
                )
            })
            .collect();
        for (ci, tamper, now) in ops {
            let mut cert = certs[ci].clone();
            if tamper {
                cert.signature.s ^= 1;
            }
            let fresh = cert.verify_signature(ca.public_key()).is_ok();
            let cached = cache.verify_cert(&cert, ca.public_key(), Timestamp(now)).is_ok();
            prop_assert_eq!(cached, fresh);
        }
    }

    /// Certificates round-trip through the wire encoding with extensions
    /// of every kind.
    #[test]
    fn certificate_wire_round_trip(
        serial in any::<u64>(),
        caps in proptest::collection::vec("[a-z]{1,8}", 0..4),
        rar in any::<u64>(),
    ) {
        let key = KeyPair::from_seed(b"issuer");
        let tbs = TbsCertificate {
            serial,
            issuer: DistinguishedName::authority("I"),
            subject: DistinguishedName::user("S", "O"),
            validity: Validity::unbounded(),
            subject_public_key: KeyPair::from_seed(b"s").public(),
            extensions: vec![
                Extension::CapabilityCertificateFlag,
                Extension::Capabilities(caps),
                Extension::Restriction(Restriction::ValidForRar(rar)),
                Extension::BasicConstraints { is_ca: false },
            ],
        };
        let cert = Certificate::issue(tbs, &key);
        let bytes = qos_wire::to_bytes(&cert);
        let back: Certificate = qos_wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &cert);
        prop_assert!(back.verify_signature(key.public()).is_ok());
    }
}
