//! Errors raised while validating certificates, chains, and introductions.

use crate::dn::DistinguishedName;
use crate::time::Timestamp;
use std::fmt;

/// A certificate / trust validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature did not verify under the expected public key.
    BadSignature {
        /// Whose signature failed.
        signer: DistinguishedName,
    },
    /// A certificate was used outside its validity window.
    Expired {
        /// Subject of the offending certificate.
        subject: DistinguishedName,
        /// The instant at which it was checked.
        at: Timestamp,
    },
    /// A chain link's issuer does not match the previous certificate's
    /// subject.
    IssuerMismatch {
        /// What the link claims.
        expected: DistinguishedName,
        /// What the previous certificate says.
        found: DistinguishedName,
    },
    /// A delegation step *widened* the capability set, which the Neuman
    /// cascade forbids.
    CapabilityWidened {
        /// The capability that appeared out of nowhere.
        capability: String,
    },
    /// A delegation step *dropped* a restriction inherited from upstream.
    RestrictionDropped {
        /// Human-readable restriction description.
        restriction: String,
    },
    /// The chain is empty or otherwise structurally malformed.
    MalformedChain(&'static str),
    /// The first certificate of a capability chain is not flagged as a
    /// capability certificate.
    NotACapabilityCertificate,
    /// The trust chain exceeded the verifier's maximum accepted depth.
    ChainTooDeep {
        /// Observed depth.
        depth: usize,
        /// Verifier's limit.
        limit: usize,
    },
    /// No trust anchor could start the introduction chain.
    NoTrustAnchor {
        /// The DN we had no anchor for.
        subject: DistinguishedName,
    },
    /// A required proof of private-key possession was missing or invalid.
    PossessionProofInvalid {
        /// Who failed to prove possession.
        subject: DistinguishedName,
    },
    /// A directory lookup found no certificate for the DN.
    UnknownSubject {
        /// The DN that was looked up.
        subject: DistinguishedName,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadSignature { signer } => {
                write!(f, "signature by {signer} failed verification")
            }
            CryptoError::Expired { subject, at } => {
                write!(f, "certificate for {subject} not valid at {at}")
            }
            CryptoError::IssuerMismatch { expected, found } => {
                write!(f, "issuer mismatch: expected {expected}, found {found}")
            }
            CryptoError::CapabilityWidened { capability } => {
                write!(f, "delegation widened capabilities: added {capability:?}")
            }
            CryptoError::RestrictionDropped { restriction } => {
                write!(f, "delegation dropped restriction {restriction:?}")
            }
            CryptoError::MalformedChain(why) => write!(f, "malformed chain: {why}"),
            CryptoError::NotACapabilityCertificate => {
                write!(f, "first chain certificate lacks the capability flag")
            }
            CryptoError::ChainTooDeep { depth, limit } => {
                write!(f, "trust chain depth {depth} exceeds local limit {limit}")
            }
            CryptoError::NoTrustAnchor { subject } => {
                write!(f, "no trust anchor for {subject}")
            }
            CryptoError::PossessionProofInvalid { subject } => {
                write!(f, "invalid proof of key possession by {subject}")
            }
            CryptoError::UnknownSubject { subject } => {
                write!(f, "no certificate on file for {subject}")
            }
        }
    }
}

impl std::error::Error for CryptoError {}
