//! Schnorr signatures over the fixed safe-prime group.
//!
//! The scheme is the classic Schnorr identification protocol made
//! non-interactive with the Fiat–Shamir transform:
//!
//! * secret key `x ∈ [1, q)`, public key `y = g^x mod p`;
//! * sign(m): `k = H(x ‖ m) mod q` (deterministic, RFC-6979 style),
//!   `r = g^k`, `e = H(r ‖ y ‖ m) mod q`, `s = k + e·x mod q`;
//! * verify(m, (e, s)): `r' = g^s · y^(q−e)`, accept iff
//!   `H(r' ‖ y ‖ m) mod q == e`.
//!
//! Binding the public key into the challenge hash prevents cross-key
//! signature transplantation, which matters here because the protocol of
//! the paper moves signatures *between* administrative domains.

use crate::group::{self, P, Q};
use crate::sha256::{sha256, Sha256};
use qos_wire::{Decode, Encode, Reader, WireError, Writer};
use rand::Rng;

/// A Schnorr public key (a group element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub u64);

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Fiat–Shamir challenge.
    pub e: u64,
    /// Response scalar.
    pub s: u64,
}

/// A private/public key pair.
///
/// The private scalar is deliberately not `Copy` and is excluded from
/// `Debug` output to keep accidental leakage out of logs.
#[derive(Clone)]
pub struct KeyPair {
    secret: u64,
    public: PublicKey,
}

impl std::fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyPair")
            .field("public", &self.public)
            .field("secret", &"<redacted>")
            .finish()
    }
}

impl KeyPair {
    /// Generate a key pair from a caller-supplied RNG.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        Self::from_secret(group::scalar_from_wide(wide))
    }

    /// Derive a key pair deterministically from a byte seed (hashed to a
    /// scalar). Used by tests and deterministic experiments so that runs
    /// are reproducible.
    pub fn from_seed(seed: &[u8]) -> Self {
        let d = sha256(seed);
        let wide = u128::from_be_bytes(d[..16].try_into().unwrap());
        Self::from_secret(group::scalar_from_wide(wide))
    }

    fn from_secret(secret: u64) -> Self {
        debug_assert!((1..Q).contains(&secret));
        Self {
            secret,
            public: PublicKey(group::g_pow(secret)),
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Sign a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        // Deterministic nonce: k = H(x ‖ m), never reused across messages.
        let mut h = Sha256::new();
        h.update(&self.secret.to_le_bytes());
        h.update(msg);
        let kd = h.finalize();
        let k = group::scalar_from_wide(u128::from_be_bytes(kd[..16].try_into().unwrap()));
        let r = group::g_pow(k);
        let e = challenge(r, self.public, msg);
        let s = group::add_mod(k, group::mul_mod(e, self.secret, Q), Q);
        Signature { e, s }
    }

    /// Prove knowledge of the private key for `nonce` (a challenge-response
    /// step; the paper's capability model requires holders to "prove the
    /// knowledge of the related private key").
    pub fn prove_possession(&self, nonce: &[u8]) -> Signature {
        let mut msg = b"possession-proof:".to_vec();
        msg.extend_from_slice(nonce);
        self.sign(&msg)
    }
}

impl PublicKey {
    /// Verify a signature over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        if self.0 == 0 || self.0 >= P || sig.e >= Q || sig.s >= Q {
            return false;
        }
        // r' = g^s * y^(q - e); y has order q so y^(q-e) = y^(-e).
        let gs = group::g_pow(sig.s);
        let ye = group::pow_mod(self.0, Q - sig.e, P);
        let r = group::mul_mod(gs, ye, P);
        challenge(r, *self, msg) == sig.e
    }

    /// Check a possession proof produced by [`KeyPair::prove_possession`].
    pub fn check_possession(&self, nonce: &[u8], proof: &Signature) -> bool {
        let mut msg = b"possession-proof:".to_vec();
        msg.extend_from_slice(nonce);
        self.verify(&msg, proof)
    }

    /// Short hex fingerprint of the key (first 8 bytes of SHA-256).
    pub fn fingerprint(&self) -> String {
        let d = sha256(&self.0.to_le_bytes());
        crate::sha256::to_hex(&d[..8])
    }
}

fn challenge(r: u64, pk: PublicKey, msg: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(&r.to_le_bytes());
    h.update(&pk.0.to_le_bytes());
    h.update(msg);
    let d = h.finalize();
    group::scalar_from_wide(u128::from_be_bytes(d[..16].try_into().unwrap()))
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PublicKey(r.get_u64()?))
    }
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.e);
        w.put_u64(self.s);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Signature {
            e: r.get_u64()?,
            s: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(name: &str) -> KeyPair {
        KeyPair::from_seed(name.as_bytes())
    }

    #[test]
    fn sign_verify_round_trip() {
        let alice = kp("alice");
        let sig = alice.sign(b"reserve 10 Mb/s");
        assert!(alice.public().verify(b"reserve 10 Mb/s", &sig));
    }

    #[test]
    fn tampered_message_fails() {
        let alice = kp("alice");
        let sig = alice.sign(b"reserve 10 Mb/s");
        assert!(!alice.public().verify(b"reserve 99 Mb/s", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let alice = kp("alice");
        let bob = kp("bob");
        let sig = alice.sign(b"msg");
        assert!(!bob.public().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let alice = kp("alice");
        let mut sig = alice.sign(b"msg");
        sig.s ^= 1;
        assert!(!alice.public().verify(b"msg", &sig));
        let mut sig2 = alice.sign(b"msg");
        sig2.e ^= 1;
        assert!(!alice.public().verify(b"msg", &sig2));
    }

    #[test]
    fn signature_is_deterministic() {
        let alice = kp("alice");
        assert_eq!(alice.sign(b"m"), alice.sign(b"m"));
        assert_ne!(alice.sign(b"m"), alice.sign(b"n"));
    }

    #[test]
    fn signature_not_transplantable_across_keys() {
        // Even if two parties signed the same message, the challenge binds
        // the public key, so one's signature never verifies under the other.
        let a = kp("a");
        let b = kp("b");
        let sig_a = a.sign(b"shared text");
        assert!(!b.public().verify(b"shared text", &sig_a));
    }

    #[test]
    fn possession_proof() {
        let a = kp("a");
        let proof = a.prove_possession(b"nonce-123");
        assert!(a.public().check_possession(b"nonce-123", &proof));
        assert!(!a.public().check_possession(b"nonce-456", &proof));
        assert!(!kp("b").public().check_possession(b"nonce-123", &proof));
    }

    #[test]
    fn degenerate_public_keys_rejected() {
        let sig = kp("x").sign(b"m");
        assert!(!PublicKey(0).verify(b"m", &sig));
        assert!(!PublicKey(crate::group::P).verify(b"m", &sig));
    }

    #[test]
    fn generate_with_rng_produces_valid_keys() {
        let mut rng = rand::rng();
        for _ in 0..8 {
            let kp = KeyPair::generate(&mut rng);
            let sig = kp.sign(b"hello");
            assert!(kp.public().verify(b"hello", &sig));
        }
    }

    #[test]
    fn wire_round_trip() {
        let kp = kp("w");
        let sig = kp.sign(b"m");
        let pk_bytes = qos_wire::to_bytes(&kp.public());
        let sig_bytes = qos_wire::to_bytes(&sig);
        assert_eq!(
            qos_wire::from_bytes::<PublicKey>(&pk_bytes).unwrap(),
            kp.public()
        );
        assert_eq!(qos_wire::from_bytes::<Signature>(&sig_bytes).unwrap(), sig);
    }
}
