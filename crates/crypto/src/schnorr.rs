//! Schnorr signatures over the fixed safe-prime group.
//!
//! The scheme is the classic Schnorr identification protocol made
//! non-interactive with the Fiat–Shamir transform, in the
//! **commitment form** `(r, s)`:
//!
//! * secret key `x ∈ [1, q)`, public key `y = g^x mod p`;
//! * sign(m): `k = H(x ‖ m) mod q` (deterministic, RFC-6979 style),
//!   `r = g^k`, `e = H(r ‖ y ‖ m) mod q`, `s = k + e·x mod q`;
//! * verify(m, (r, s)): `e = H(r ‖ y ‖ m) mod q`, accept iff
//!   `g^s == r · y^e mod p`.
//!
//! The commitment form is what makes **batch verification** possible:
//! because `r` travels in the signature (instead of being recovered from
//! `e`), `n` verification equations can be combined with random
//! coefficients `c_i` into the single multi-exponentiation check
//!
//! ```text
//! g^(Σ c_i·s_i) == Π r_i^(c_i) · Π y_i^(c_i·e_i)   (mod p)
//! ```
//!
//! — see [`verify_batch`]. Both forms are 16 bytes on the wire.
//!
//! Binding the public key into the challenge hash prevents cross-key
//! signature transplantation, which matters here because the protocol of
//! the paper moves signatures *between* administrative domains.
//!
//! All exponentiations from the generator use the process-wide
//! fixed-base window table ([`group::g_table`]); exponentiations from a
//! public key use a per-key table when one has been pinned with
//! [`PublicKey::precompute`] (worthwhile for long-lived SLA peer keys
//! that verify many envelopes).

use crate::group::{self, FixedBase, P, Q};
use crate::sha256::{sha256, Sha256};
use qos_wire::{Decode, Encode, Reader, WireError, Writer};
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Process-wide count of signing operations. Cheap enough to keep always
/// on (one relaxed add per sign); lets tests and benches assert how much
/// public-key crypto a protocol exchange actually performed — e.g. that
/// a resumed transport handshake signs *nothing*.
static SIGN_OPS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of single-signature verification operations
/// (batch verifications count one per item they actually check).
static VERIFY_OPS: AtomicU64 = AtomicU64::new(0);

/// Total [`KeyPair::sign`] calls in this process so far.
pub fn sign_ops() -> u64 {
    SIGN_OPS.load(Ordering::Relaxed)
}

/// Total signature verifications in this process so far.
pub fn verify_ops() -> u64 {
    VERIFY_OPS.load(Ordering::Relaxed)
}

/// A Schnorr public key (a group element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub u64);

/// A Schnorr signature in commitment form `(r, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Commitment `r = g^k`.
    pub r: u64,
    /// Response scalar `s = k + e·x mod q`.
    pub s: u64,
}

/// A private/public key pair.
///
/// The private scalar is deliberately not `Copy` and is excluded from
/// `Debug` output to keep accidental leakage out of logs.
#[derive(Clone)]
pub struct KeyPair {
    secret: u64,
    public: PublicKey,
}

impl std::fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyPair")
            .field("public", &self.public)
            .field("secret", &"<redacted>")
            .finish()
    }
}

impl KeyPair {
    /// Generate a key pair from a caller-supplied RNG.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        Self::from_secret(group::scalar_from_wide(wide))
    }

    /// Derive a key pair deterministically from a byte seed (hashed to a
    /// scalar). Used by tests and deterministic experiments so that runs
    /// are reproducible.
    pub fn from_seed(seed: &[u8]) -> Self {
        let d = sha256(seed);
        let wide = u128::from_be_bytes(d[..16].try_into().unwrap());
        Self::from_secret(group::scalar_from_wide(wide))
    }

    fn from_secret(secret: u64) -> Self {
        debug_assert!((1..Q).contains(&secret));
        Self {
            secret,
            public: PublicKey(group::g_pow(secret)),
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Sign a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        SIGN_OPS.fetch_add(1, Ordering::Relaxed);
        // Deterministic nonce: k = H(x ‖ m), never reused across messages.
        let mut h = Sha256::new();
        h.update(&self.secret.to_le_bytes());
        h.update(msg);
        let kd = h.finalize();
        let k = group::scalar_from_wide(u128::from_be_bytes(kd[..16].try_into().unwrap()));
        let r = group::g_pow(k);
        let e = challenge(r, self.public, msg);
        let s = group::add_mod(k, group::mul_mod(e, self.secret, Q), Q);
        Signature { r, s }
    }

    /// Prove knowledge of the private key for `nonce` (a challenge-response
    /// step; the paper's capability model requires holders to "prove the
    /// knowledge of the related private key").
    pub fn prove_possession(&self, nonce: &[u8]) -> Signature {
        let mut msg = b"possession-proof:".to_vec();
        msg.extend_from_slice(nonce);
        self.sign(&msg)
    }
}

/// Cap on distinct pinned keys; past this, [`PublicKey::precompute`]
/// becomes a no-op rather than letting the cache grow without bound.
const KEY_TABLE_CAP: usize = 1024;

fn key_tables() -> &'static RwLock<HashMap<u64, Arc<FixedBase>>> {
    static TABLES: OnceLock<RwLock<HashMap<u64, Arc<FixedBase>>>> = OnceLock::new();
    TABLES.get_or_init(Default::default)
}

fn pinned_table(key: u64) -> Option<Arc<FixedBase>> {
    let map = key_tables().read().unwrap_or_else(|e| e.into_inner());
    map.get(&key).cloned()
}

impl PublicKey {
    fn in_range(&self, sig: &Signature) -> bool {
        self.0 != 0 && self.0 < P && sig.r != 0 && sig.r < P && sig.s < Q
    }

    /// `y^exp mod p`, through this key's pinned window table if present.
    fn pow(&self, exp: u64) -> u64 {
        match pinned_table(self.0) {
            Some(t) => t.pow(exp),
            None => group::pow_mod(self.0, exp, P),
        }
    }

    /// Pin this key: build and cache a fixed-base window table so that
    /// every later verification under it costs table lookups instead of a
    /// full square-and-multiply ladder.
    ///
    /// Worth calling for long-lived keys that verify many messages — SLA
    /// peer brokers, direct users, the CA — and wasteful for one-shot
    /// keys (the table costs ~2 048 multiplies to build).
    pub fn precompute(&self) {
        if self.0 == 0 || self.0 >= P {
            return;
        }
        {
            let map = key_tables().read().unwrap_or_else(|e| e.into_inner());
            if map.contains_key(&self.0) || map.len() >= KEY_TABLE_CAP {
                return;
            }
        }
        // Build outside any lock; racing builders produce identical tables.
        let table = Arc::new(FixedBase::new(self.0));
        let mut map = key_tables().write().unwrap_or_else(|e| e.into_inner());
        if map.len() < KEY_TABLE_CAP {
            map.entry(self.0).or_insert(table);
        }
    }

    /// Verify a signature over `msg`: `g^s == r · y^e`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        VERIFY_OPS.fetch_add(1, Ordering::Relaxed);
        if !self.in_range(sig) {
            return false;
        }
        let e = challenge(sig.r, *self, msg);
        let lhs = group::g_pow(sig.s);
        group::mul_mod(sig.r, self.pow(e), P) == lhs
    }

    /// Check a possession proof produced by [`KeyPair::prove_possession`].
    pub fn check_possession(&self, nonce: &[u8], proof: &Signature) -> bool {
        let mut msg = b"possession-proof:".to_vec();
        msg.extend_from_slice(nonce);
        self.verify(&msg, proof)
    }

    /// Short hex fingerprint of the key (first 8 bytes of SHA-256).
    pub fn fingerprint(&self) -> String {
        let d = sha256(&self.0.to_le_bytes());
        crate::sha256::to_hex(&d[..8])
    }
}

/// Verify `n` signatures with one multi-exponentiation.
///
/// Each item is `(message, key, signature)`. The equations
/// `g^(s_i) == r_i · y_i^(e_i)` are combined with deterministic 32-bit
/// random coefficients `c_i` (Fiat–Shamir over the whole batch, so a
/// forger cannot choose signatures after seeing the coefficients):
///
/// ```text
/// g^(Σ c_i·s_i mod q) == Π r_i^(c_i) · Π y_i^(c_i·e_i mod q)   (mod p)
/// ```
///
/// The right-hand side shares a single squaring chain across all `2n`
/// bases ([`group::multi_pow`]), so a depth-`d` envelope chain costs one
/// multi-exponentiation instead of `d` independent verifies.
///
/// Returns `true` iff the combined check passes. A `false` says *some*
/// item is bad without naming it; callers that need attribution fall
/// back to per-item [`PublicKey::verify`] (see `qos_core::trust`). A
/// batch accepts with overwhelming probability exactly when every item
/// verifies individually (false acceptance of a bad batch requires
/// guessing a 32-bit coefficient relation).
pub fn verify_batch(items: &[(&[u8], PublicKey, Signature)]) -> bool {
    // Small batches: the RLC machinery costs more than it saves.
    match items {
        [] => return true,
        [(msg, pk, sig)] => return pk.verify(msg, sig),
        _ => {}
    }
    VERIFY_OPS.fetch_add(items.len() as u64, Ordering::Relaxed);

    for (_, pk, sig) in items {
        if !pk.in_range(sig) {
            return false;
        }
    }
    let es: Vec<u64> = items
        .iter()
        .map(|&(msg, pk, sig)| challenge(sig.r, pk, msg))
        .collect();

    // Coefficient seed over the full batch transcript.
    let mut h = Sha256::new();
    h.update(b"qos-schnorr-batch-v1");
    h.update(&(items.len() as u64).to_le_bytes());
    for (&(_, pk, sig), e) in items.iter().zip(&es) {
        h.update(&sig.r.to_le_bytes());
        h.update(&sig.s.to_le_bytes());
        h.update(&pk.0.to_le_bytes());
        h.update(&e.to_le_bytes());
    }
    let seed = h.finalize();
    let coeff = |i: usize| -> u64 {
        let mut h = Sha256::new();
        h.update(&seed);
        h.update(&(i as u64).to_le_bytes());
        let d = h.finalize();
        // 32-bit, forced odd so it is never zero.
        (u64::from_be_bytes(d[..8].try_into().unwrap()) >> 32) | 1
    };

    let mut s_sum = 0u64;
    let mut pairs = Vec::with_capacity(items.len() * 2);
    for (i, (&(_, pk, sig), &e)) in items.iter().zip(&es).enumerate() {
        let c = coeff(i);
        s_sum = group::add_mod(s_sum, group::mul_mod(c, sig.s, Q), Q);
        pairs.push((sig.r, c));
        pairs.push((pk.0, group::mul_mod(c, e, Q)));
    }
    group::g_pow(s_sum) == group::multi_pow(&pairs)
}

fn challenge(r: u64, pk: PublicKey, msg: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(&r.to_le_bytes());
    h.update(&pk.0.to_le_bytes());
    h.update(msg);
    let d = h.finalize();
    group::scalar_from_wide(u128::from_be_bytes(d[..16].try_into().unwrap()))
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PublicKey(r.get_u64()?))
    }
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.r);
        w.put_u64(self.s);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Signature {
            r: r.get_u64()?,
            s: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(name: &str) -> KeyPair {
        KeyPair::from_seed(name.as_bytes())
    }

    #[test]
    fn sign_verify_round_trip() {
        let alice = kp("alice");
        let sig = alice.sign(b"reserve 10 Mb/s");
        assert!(alice.public().verify(b"reserve 10 Mb/s", &sig));
    }

    #[test]
    fn tampered_message_fails() {
        let alice = kp("alice");
        let sig = alice.sign(b"reserve 10 Mb/s");
        assert!(!alice.public().verify(b"reserve 99 Mb/s", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let alice = kp("alice");
        let bob = kp("bob");
        let sig = alice.sign(b"msg");
        assert!(!bob.public().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let alice = kp("alice");
        let mut sig = alice.sign(b"msg");
        sig.s ^= 1;
        assert!(!alice.public().verify(b"msg", &sig));
        let mut sig2 = alice.sign(b"msg");
        sig2.r ^= 1;
        assert!(!alice.public().verify(b"msg", &sig2));
    }

    #[test]
    fn verify_agrees_with_and_without_pinned_table() {
        let alice = kp("alice-pinned");
        let sig = alice.sign(b"pin me");
        assert!(alice.public().verify(b"pin me", &sig));
        alice.public().precompute();
        assert!(alice.public().verify(b"pin me", &sig));
        assert!(!alice.public().verify(b"pin you", &sig));
    }

    fn batch_items(n: usize) -> Vec<(Vec<u8>, PublicKey, Signature)> {
        (0..n)
            .map(|i| {
                let k = kp(&format!("batch-{i}"));
                let msg = format!("message number {i}").into_bytes();
                let sig = k.sign(&msg);
                (msg, k.public(), sig)
            })
            .collect()
    }

    fn as_refs(items: &[(Vec<u8>, PublicKey, Signature)]) -> Vec<(&[u8], PublicKey, Signature)> {
        items
            .iter()
            .map(|(m, pk, sig)| (m.as_slice(), *pk, *sig))
            .collect()
    }

    #[test]
    fn batch_accepts_valid_signatures() {
        for n in [0usize, 1, 2, 3, 8, 16] {
            let items = batch_items(n);
            assert!(verify_batch(&as_refs(&items)), "n={n}");
        }
    }

    #[test]
    fn batch_rejects_any_tampered_item() {
        let items = batch_items(5);
        for i in 0..items.len() {
            // Tampered message.
            let mut bad = items.clone();
            bad[i].0[0] ^= 0xFF;
            assert!(!verify_batch(&as_refs(&bad)), "msg tamper at {i}");
            // Tampered response scalar.
            let mut bad = items.clone();
            bad[i].2.s ^= 1;
            assert!(!verify_batch(&as_refs(&bad)), "sig tamper at {i}");
            // Wrong key.
            let mut bad = items.clone();
            bad[i].1 = kp("intruder").public();
            assert!(!verify_batch(&as_refs(&bad)), "key swap at {i}");
        }
    }

    #[test]
    fn batch_rejects_out_of_range_items() {
        let mut items = batch_items(3);
        items[1].2.s = Q; // out of scalar range
        assert!(!verify_batch(&as_refs(&items)));
        let mut items = batch_items(3);
        items[2].2.r = 0; // degenerate commitment
        assert!(!verify_batch(&as_refs(&items)));
    }

    #[test]
    fn batch_rejects_cross_item_signature_swap() {
        // Swapping two valid signatures between items must fail even
        // though every (r, s) pair is individually well-formed.
        let mut items = batch_items(4);
        let tmp = items[0].2;
        items[0].2 = items[3].2;
        items[3].2 = tmp;
        assert!(!verify_batch(&as_refs(&items)));
    }

    #[test]
    fn signature_is_deterministic() {
        let alice = kp("alice");
        assert_eq!(alice.sign(b"m"), alice.sign(b"m"));
        assert_ne!(alice.sign(b"m"), alice.sign(b"n"));
    }

    #[test]
    fn signature_not_transplantable_across_keys() {
        // Even if two parties signed the same message, the challenge binds
        // the public key, so one's signature never verifies under the other.
        let a = kp("a");
        let b = kp("b");
        let sig_a = a.sign(b"shared text");
        assert!(!b.public().verify(b"shared text", &sig_a));
    }

    #[test]
    fn possession_proof() {
        let a = kp("a");
        let proof = a.prove_possession(b"nonce-123");
        assert!(a.public().check_possession(b"nonce-123", &proof));
        assert!(!a.public().check_possession(b"nonce-456", &proof));
        assert!(!kp("b").public().check_possession(b"nonce-123", &proof));
    }

    #[test]
    fn degenerate_public_keys_rejected() {
        let sig = kp("x").sign(b"m");
        assert!(!PublicKey(0).verify(b"m", &sig));
        assert!(!PublicKey(crate::group::P).verify(b"m", &sig));
    }

    #[test]
    fn generate_with_rng_produces_valid_keys() {
        let mut rng = rand::rng();
        for _ in 0..8 {
            let kp = KeyPair::generate(&mut rng);
            let sig = kp.sign(b"hello");
            assert!(kp.public().verify(b"hello", &sig));
        }
    }

    #[test]
    fn wire_round_trip() {
        let kp = kp("w");
        let sig = kp.sign(b"m");
        let pk_bytes = qos_wire::to_bytes(&kp.public());
        let sig_bytes = qos_wire::to_bytes(&sig);
        assert_eq!(
            qos_wire::from_bytes::<PublicKey>(&pk_bytes).unwrap(),
            kp.public()
        );
        assert_eq!(qos_wire::from_bytes::<Signature>(&sig_bytes).unwrap(), sig);
    }
}
