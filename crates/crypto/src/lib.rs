//! # qos-crypto — PKI substrate for the signalling protocol
//!
//! The HPDC 2001 paper's protocol rests on an OpenSSL-era PKI: X.509v3
//! certificates, digital signatures, TLS-authenticated channels, capability
//! certificates delegated hop-by-hop, and a web of trust built from "key
//! introducers". This crate rebuilds that substrate from scratch at
//! *simulation strength* (see DESIGN.md §2 for the substitution rationale):
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 and RFC 2104 HMAC, vector-tested;
//! * [`group`] — arithmetic in a fixed 63-bit safe-prime group;
//! * [`schnorr`] — deterministic Schnorr signatures and possession proofs;
//! * [`dn`] — X.500 distinguished names;
//! * [`cert`] — X.509v3-shaped certificates, extensions, CAs;
//! * [`delegation`] — Neuman-style cascaded capability delegation and the
//!   §6.5 verification checklist;
//! * [`introducer`] — web-of-trust key acceptance with chain-depth policy;
//! * [`keystore`] — the "secure LDAP" certificate-directory alternative;
//! * [`time`] — timestamps for validity windows.
//!
//! All wire-visible types encode canonically via [`qos_wire`], so nested
//! signatures are byte-exact.

pub mod cert;
pub mod delegation;
pub mod dn;
pub mod error;
pub mod group;
pub mod introducer;
pub mod keystore;
pub mod schnorr;
pub mod sha256;
pub mod time;
pub mod vcache;

pub use cert::{
    Certificate, CertificateAuthority, Extension, Restriction, TbsCertificate, Validity,
};
pub use delegation::{CommunityAuthorizationServer, DelegationChain, VerifiedCapabilities};
pub use dn::DistinguishedName;
pub use error::CryptoError;
pub use group::FixedBase;
pub use introducer::{Introduction, TrustAnchors, TrustPolicy};
pub use keystore::CertificateDirectory;
pub use schnorr::{verify_batch, KeyPair, PublicKey, Signature};
pub use time::Timestamp;
