//! X.509v3-shaped certificates.
//!
//! The paper's protocol carries "the certificates of the peered BBs as well
//! as the certificate of the issuing certificate authority" and encodes
//! capability attributes "in the extension field of an ITU X.509v3
//! certificate". We reproduce that *shape* — issuer/subject DNs, validity,
//! subject public key, an extensible extension list, and an issuer
//! signature over the to-be-signed (TBS) body — over the canonical
//! [`qos_wire`] encoding instead of DER.

use crate::dn::DistinguishedName;
use crate::error::CryptoError;
use crate::schnorr::{KeyPair, PublicKey, Signature};
use crate::time::Timestamp;

/// A certificate validity window (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validity {
    /// First instant at which the certificate is valid.
    pub not_before: Timestamp,
    /// Last instant at which the certificate is valid.
    pub not_after: Timestamp,
}

qos_wire::impl_wire_struct!(Validity {
    not_before,
    not_after
});

impl Validity {
    /// A window spanning the whole simulation.
    pub fn unbounded() -> Self {
        Self {
            not_before: Timestamp::ZERO,
            not_after: Timestamp::MAX,
        }
    }

    /// A window from `start` lasting `secs` seconds.
    pub fn starting_at(start: Timestamp, secs: u64) -> Self {
        Self {
            not_before: start,
            not_after: start + secs,
        }
    }

    /// Is `t` inside the window?
    pub fn contains(&self, t: Timestamp) -> bool {
        self.not_before <= t && t <= self.not_after
    }
}

/// A restriction added during capability delegation (never removed by
/// later hops — the Neuman cascade only narrows).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Restriction {
    /// "Valid for Reservation in Domain X" (Figure 7).
    ValidForDomain(String),
    /// "valid for RAR" — bound to one specific resource allocation request.
    ValidForRar(u64),
    /// Bandwidth ceiling in bits/s the delegate may request.
    MaxBandwidthBps(u64),
}

qos_wire::impl_wire_enum!(Restriction {
    0 => ValidForDomain(t0: String),
    1 => ValidForRar(t0: u64),
    2 => MaxBandwidthBps(t0: u64),
});

impl std::fmt::Display for Restriction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Restriction::ValidForDomain(d) => write!(f, "valid-for-domain:{d}"),
            Restriction::ValidForRar(id) => write!(f, "valid-for-rar:{id}"),
            Restriction::MaxBandwidthBps(b) => write!(f, "max-bandwidth:{b}bps"),
        }
    }
}

/// An X.509v3-style extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extension {
    /// "Capability Certificate Flag" from Figure 7: marks the certificate
    /// as carrying authorization attributes rather than pure identity.
    CapabilityCertificateFlag,
    /// Capability attributes, e.g. `"ESnet:member"` or
    /// `"group:ATLAS experiment"`.
    Capabilities(Vec<String>),
    /// A delegation restriction.
    Restriction(Restriction),
    /// CA bit: may this subject issue further identity certificates?
    BasicConstraints {
        /// True if the subject is a certificate authority.
        is_ca: bool,
    },
}

qos_wire::impl_wire_enum!(Extension {
    0 => CapabilityCertificateFlag,
    1 => Capabilities(t0: Vec<String>),
    2 => Restriction(t0: Restriction),
    3 => BasicConstraints { is_ca },
});

/// The to-be-signed body of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    /// Issuer-assigned serial number.
    pub serial: u64,
    /// Who signed this certificate.
    pub issuer: DistinguishedName,
    /// Whom this certificate describes.
    pub subject: DistinguishedName,
    /// When the certificate is valid.
    pub validity: Validity,
    /// The subject's public key (or public *proxy* key for capability
    /// certificates issued to users).
    pub subject_public_key: PublicKey,
    /// X.509v3 extensions.
    pub extensions: Vec<Extension>,
}

qos_wire::impl_wire_struct!(TbsCertificate {
    serial,
    issuer,
    subject,
    validity,
    subject_public_key,
    extensions
});

/// A signed certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Signed body.
    pub tbs: TbsCertificate,
    /// Issuer's signature over the canonical encoding of `tbs`.
    pub signature: Signature,
}

qos_wire::impl_wire_struct!(Certificate { tbs, signature });

impl Certificate {
    /// Sign `tbs` with `issuer_key`, producing a certificate.
    pub fn issue(tbs: TbsCertificate, issuer_key: &KeyPair) -> Self {
        let signature = issuer_key.sign(&qos_wire::to_bytes(&tbs));
        Self { tbs, signature }
    }

    /// Verify the issuer signature under `issuer_pk`.
    pub fn verify_signature(&self, issuer_pk: PublicKey) -> Result<(), CryptoError> {
        if issuer_pk.verify(&qos_wire::to_bytes(&self.tbs), &self.signature) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature {
                signer: self.tbs.issuer.clone(),
            })
        }
    }

    /// Verify the issuer signature through the process-wide verification
    /// cache ([`crate::vcache`]): a certificate already verified under
    /// `issuer_pk` costs one hash and a map lookup instead of a Schnorr
    /// verification. `now` is used only to expire cached entries whose
    /// validity window has lapsed — callers still enforce validity with
    /// [`Certificate::check_validity`].
    pub fn verify_signature_cached(
        &self,
        issuer_pk: PublicKey,
        now: Timestamp,
    ) -> Result<(), CryptoError> {
        crate::vcache::global().verify_cert(self, issuer_pk, now)
    }

    /// Check the validity window.
    pub fn check_validity(&self, at: Timestamp) -> Result<(), CryptoError> {
        if self.tbs.validity.contains(at) {
            Ok(())
        } else {
            Err(CryptoError::Expired {
                subject: self.tbs.subject.clone(),
                at,
            })
        }
    }

    /// True if the capability-certificate flag extension is present.
    pub fn is_capability_certificate(&self) -> bool {
        self.tbs
            .extensions
            .iter()
            .any(|e| matches!(e, Extension::CapabilityCertificateFlag))
    }

    /// True if the CA bit is set.
    pub fn is_ca(&self) -> bool {
        self.tbs
            .extensions
            .iter()
            .any(|e| matches!(e, Extension::BasicConstraints { is_ca: true }))
    }

    /// All capability attribute strings carried by this certificate.
    pub fn capabilities(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for e in &self.tbs.extensions {
            if let Extension::Capabilities(caps) = e {
                out.extend(caps.iter().map(String::as_str));
            }
        }
        out
    }

    /// All delegation restrictions carried by this certificate.
    pub fn restrictions(&self) -> Vec<&Restriction> {
        self.tbs
            .extensions
            .iter()
            .filter_map(|e| match e {
                Extension::Restriction(r) => Some(r),
                _ => None,
            })
            .collect()
    }
}

/// A certificate authority: a DN, a key pair, and a serial counter.
///
/// Models both identity CAs and the paper's community authorization
/// servers (which sign capability certificates).
pub struct CertificateAuthority {
    dn: DistinguishedName,
    key: KeyPair,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Create a CA with the given DN and key pair.
    pub fn new(dn: DistinguishedName, key: KeyPair) -> Self {
        Self {
            dn,
            key,
            next_serial: 1,
        }
    }

    /// The CA's DN.
    pub fn dn(&self) -> &DistinguishedName {
        &self.dn
    }

    /// The CA's public key (the trust anchor its relying parties pin).
    pub fn public_key(&self) -> PublicKey {
        self.key.public()
    }

    /// The CA's key pair (needed when a CA also acts as a protocol
    /// principal, e.g. a CAS signing capability certificates).
    pub fn key_pair(&self) -> &KeyPair {
        &self.key
    }

    /// Produce the CA's self-signed root certificate.
    pub fn self_signed(&mut self) -> Certificate {
        let serial = self.bump_serial();
        Certificate::issue(
            TbsCertificate {
                serial,
                issuer: self.dn.clone(),
                subject: self.dn.clone(),
                validity: Validity::unbounded(),
                subject_public_key: self.key.public(),
                extensions: vec![Extension::BasicConstraints { is_ca: true }],
            },
            &self.key,
        )
    }

    /// Issue an identity certificate binding `subject` to `subject_pk`.
    pub fn issue_identity(
        &mut self,
        subject: DistinguishedName,
        subject_pk: PublicKey,
        validity: Validity,
    ) -> Certificate {
        let serial = self.bump_serial();
        Certificate::issue(
            TbsCertificate {
                serial,
                issuer: self.dn.clone(),
                subject,
                validity,
                subject_public_key: subject_pk,
                extensions: vec![Extension::BasicConstraints { is_ca: false }],
            },
            &self.key,
        )
    }

    fn bump_serial(&mut self) -> u64 {
        let s = self.next_serial;
        self.next_serial += 1;
        s
    }
}

#[allow(dead_code)]
fn _assert_wire_impls() {
    fn takes_wire<T: qos_wire::Encode + qos_wire::Decode>() {}
    takes_wire::<Certificate>();
    takes_wire::<Extension>();
    takes_wire::<Restriction>();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new(
            DistinguishedName::authority("RootCA"),
            KeyPair::from_seed(b"root-ca"),
        )
    }

    #[test]
    fn issue_and_verify_identity() {
        let mut ca = ca();
        let alice = KeyPair::from_seed(b"alice");
        let cert = ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            alice.public(),
            Validity::unbounded(),
        );
        assert!(cert.verify_signature(ca.public_key()).is_ok());
        assert!(!cert.is_ca());
        assert!(!cert.is_capability_certificate());
    }

    #[test]
    fn wrong_issuer_key_rejected() {
        let mut ca1 = ca();
        let other = KeyPair::from_seed(b"other-ca");
        let cert = ca1.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            KeyPair::from_seed(b"alice").public(),
            Validity::unbounded(),
        );
        assert_eq!(
            cert.verify_signature(other.public()),
            Err(CryptoError::BadSignature {
                signer: DistinguishedName::authority("RootCA"),
            })
        );
    }

    #[test]
    fn tampering_with_tbs_invalidates() {
        let mut ca = ca();
        let mut cert = ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            KeyPair::from_seed(b"alice").public(),
            Validity::unbounded(),
        );
        cert.tbs.subject = DistinguishedName::user("Mallory", "EVIL");
        assert!(cert.verify_signature(ca.public_key()).is_err());
    }

    #[test]
    fn validity_window_enforced() {
        let mut ca = ca();
        let cert = ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            KeyPair::from_seed(b"alice").public(),
            Validity::starting_at(Timestamp(100), 50),
        );
        assert!(cert.check_validity(Timestamp(99)).is_err());
        assert!(cert.check_validity(Timestamp(100)).is_ok());
        assert!(cert.check_validity(Timestamp(150)).is_ok());
        assert!(cert.check_validity(Timestamp(151)).is_err());
    }

    #[test]
    fn self_signed_root_verifies_under_own_key() {
        let mut ca = ca();
        let root = ca.self_signed();
        assert!(root.verify_signature(ca.public_key()).is_ok());
        assert!(root.is_ca());
        assert_eq!(root.tbs.issuer, root.tbs.subject);
    }

    #[test]
    fn serials_are_unique_and_increasing() {
        let mut ca = ca();
        let pk = KeyPair::from_seed(b"x").public();
        let c1 = ca.issue_identity(DistinguishedName::user("A", "O"), pk, Validity::unbounded());
        let c2 = ca.issue_identity(DistinguishedName::user("B", "O"), pk, Validity::unbounded());
        assert!(c2.tbs.serial > c1.tbs.serial);
    }

    #[test]
    fn capability_accessors() {
        let key = KeyPair::from_seed(b"cas");
        let tbs = TbsCertificate {
            serial: 1,
            issuer: DistinguishedName::authority("CAS"),
            subject: DistinguishedName::user("Alice", "ANL").annotated("capability"),
            validity: Validity::unbounded(),
            subject_public_key: KeyPair::from_seed(b"proxy").public(),
            extensions: vec![
                Extension::CapabilityCertificateFlag,
                Extension::Capabilities(vec!["ESnet:member".into()]),
                Extension::Restriction(Restriction::ValidForDomain("domain-c".into())),
            ],
        };
        let cert = Certificate::issue(tbs, &key);
        assert!(cert.is_capability_certificate());
        assert_eq!(cert.capabilities(), vec!["ESnet:member"]);
        assert_eq!(
            cert.restrictions(),
            vec![&Restriction::ValidForDomain("domain-c".into())]
        );
    }

    #[test]
    fn certificate_wire_round_trip() {
        let mut ca = ca();
        let cert = ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            KeyPair::from_seed(b"alice").public(),
            Validity::starting_at(Timestamp(5), 500),
        );
        let bytes = qos_wire::to_bytes(&cert);
        let back: Certificate = qos_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, cert);
        assert!(back.verify_signature(ca.public_key()).is_ok());
    }
}
