//! Process-wide signature-verification cache.
//!
//! The protocol's steady state re-verifies the same bytes under the same
//! keys over and over: every envelope at every hop carries the upstream
//! broker's certificate, every capability chain re-presents the CAS
//! certs, and every handshake re-checks the SLA-pinned peer certificate.
//! A Schnorr verification costs two modular exponentiations; a cache hit
//! costs one SHA-256 of the signed bytes and a sharded map lookup.
//!
//! Design (DESIGN.md §D10):
//!
//! * **Key** — `(sha256(signed_bytes), public key)`. The digest stands
//!   in for the message so entries are small and lookups never compare
//!   payloads.
//! * **Verdict soundness** — only *successful* verifications are cached,
//!   and a hit additionally requires the stored signature to equal the
//!   presented one. A forged signature over previously verified bytes
//!   therefore never short-circuits: it mismatches the stored signature
//!   and falls through to a real verification.
//! * **Bounded + sharded** — [`SHARDS`] shards, each an LRU map behind
//!   its own mutex, with a global capacity split evenly across shards.
//!   Eviction removes the least-recently-hit entry of the full shard.
//! * **Validity-window invalidation** — entries created from
//!   certificates carry the certificate's `not_after`; a lookup past
//!   that instant evicts the entry and re-verifies. (Validity itself is
//!   *always* enforced by `check_validity` at the call sites — the
//!   cache only memoizes the time-invariant signature predicate.)
//!
//! The cache is process-global (like the fixed-base key tables in
//! [`crate::schnorr`]): [`set_capacity`] sizes or disables it, and the
//! hit/miss/eviction cells can be registered with a telemetry registry
//! through [`counter_cells`].

use crate::cert::Certificate;
use crate::error::CryptoError;
use crate::schnorr::{verify_batch, PublicKey, Signature};
use crate::sha256::{sha256, Digest};
use crate::time::Timestamp;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independently locked shards.
const SHARDS: usize = 8;

/// Default cache capacity (entries, across all shards).
pub const DEFAULT_CAPACITY: usize = 4096;

struct Entry {
    sig: Signature,
    /// Entries derived from certificates expire with the certificate.
    not_after: Option<Timestamp>,
    /// Last-touch tick for LRU eviction.
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<(Digest, u64), Entry>,
    tick: u64,
}

/// A bounded, sharded cache of positive signature-verification verdicts.
pub struct VerifyCache {
    shards: Vec<Mutex<Shard>>,
    capacity: AtomicUsize,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
}

impl VerifyCache {
    /// An empty cache holding up to `capacity` verdicts (0 disables it).
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity: AtomicUsize::new(capacity),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            evictions: Arc::new(AtomicU64::new(0)),
        }
    }

    fn per_shard_cap(&self) -> usize {
        self.capacity.load(Ordering::Relaxed).div_ceil(SHARDS)
    }

    fn enabled(&self) -> bool {
        self.capacity.load(Ordering::Relaxed) > 0
    }

    fn shard(&self, digest: &Digest) -> &Mutex<Shard> {
        // The digest's first bytes are uniformly distributed; any byte
        // picks a shard without bias.
        &self.shards[digest[0] as usize % SHARDS]
    }

    /// Resize the cache; `0` disables it. Existing entries are dropped so
    /// the new bound holds immediately.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        self.clear();
    }

    /// Drop every cached verdict (counters are preserved).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut g = s.lock().unwrap_or_else(|e| e.into_inner());
            g.map.clear();
        }
    }

    /// `(hits, misses, evictions)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// True when no verdicts are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared counter cells, for registering with a metrics registry
    /// (`cache_{hits,misses,evictions}_total{cache="verify"}`).
    pub fn counter_cells(&self) -> (Arc<AtomicU64>, Arc<AtomicU64>, Arc<AtomicU64>) {
        (
            Arc::clone(&self.hits),
            Arc::clone(&self.misses),
            Arc::clone(&self.evictions),
        )
    }

    /// True if `(digest, pk, sig)` holds a live cached positive verdict.
    /// Expired entries are evicted on sight.
    fn lookup(&self, digest: &Digest, pk: PublicKey, sig: &Signature, now: Timestamp) -> bool {
        let key = (*digest, pk.0);
        let mut g = self.shard(digest).lock().unwrap_or_else(|e| e.into_inner());
        g.tick += 1;
        let tick = g.tick;
        match g.map.get_mut(&key) {
            Some(e) if e.not_after.is_some_and(|t| now > t) => {
                g.map.remove(&key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
            Some(e) if e.sig == *sig => {
                e.stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Record a positive verdict.
    fn insert(&self, digest: Digest, pk: PublicKey, sig: Signature, not_after: Option<Timestamp>) {
        let cap = self.per_shard_cap();
        if cap == 0 {
            return;
        }
        let mut g = self
            .shard(&digest)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        g.tick += 1;
        let tick = g.tick;
        if g.map.len() >= cap && !g.map.contains_key(&(digest, pk.0)) {
            // Evict the least-recently-hit entry; shards are small enough
            // that the linear scan is cheaper than auxiliary order
            // bookkeeping on every hit.
            if let Some(victim) = g.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) {
                g.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        g.map.insert(
            (digest, pk.0),
            Entry {
                sig,
                not_after,
                stamp: tick,
            },
        );
    }

    /// Verify `sig` over `msg` under `pk`, consulting the cache first.
    /// Bit-identical to [`PublicKey::verify`] in verdict; only the cost
    /// differs.
    pub fn verify(&self, msg: &[u8], pk: PublicKey, sig: &Signature) -> bool {
        if !self.enabled() {
            return pk.verify(msg, sig);
        }
        let digest = sha256(msg);
        if self.lookup(&digest, pk, sig, Timestamp::ZERO) {
            return true;
        }
        let ok = pk.verify(msg, sig);
        if ok {
            self.insert(digest, pk, *sig, None);
        }
        ok
    }

    /// Verify a certificate's issuer signature through the cache. The
    /// cached entry expires with the certificate's validity window, so a
    /// certificate that has lapsed since it was first seen is re-verified
    /// rather than served from memory. `now` drives only that eviction —
    /// callers still enforce validity via
    /// [`Certificate::check_validity`].
    pub fn verify_cert(
        &self,
        cert: &Certificate,
        issuer_pk: PublicKey,
        now: Timestamp,
    ) -> Result<(), CryptoError> {
        if !self.enabled() {
            return cert.verify_signature(issuer_pk);
        }
        let tbs = qos_wire::to_bytes(&cert.tbs);
        let digest = sha256(&tbs);
        if self.lookup(&digest, issuer_pk, &cert.signature, now) {
            return Ok(());
        }
        cert.verify_signature(issuer_pk)?;
        self.insert(
            digest,
            issuer_pk,
            cert.signature,
            Some(cert.tbs.validity.not_after),
        );
        Ok(())
    }

    /// Verify a batch of `(message, key, signature)` triples, serving
    /// repeats from the cache and running one batch equation
    /// ([`verify_batch`]) over the misses only. Returns the same verdict
    /// the plain batch check would: true iff *every* item verifies.
    pub fn verify_batch(&self, items: &[(&[u8], PublicKey, Signature)]) -> bool {
        if !self.enabled() {
            return verify_batch(items);
        }
        let mut missed: Vec<(&[u8], PublicKey, Signature)> = Vec::new();
        let mut missed_digests: Vec<Digest> = Vec::new();
        for &(msg, pk, sig) in items {
            let digest = sha256(msg);
            if !self.lookup(&digest, pk, &sig, Timestamp::ZERO) {
                missed.push((msg, pk, sig));
                missed_digests.push(digest);
            }
        }
        if missed.is_empty() {
            return true;
        }
        if !verify_batch(&missed) {
            return false;
        }
        for (&(_, pk, sig), digest) in missed.iter().zip(missed_digests) {
            self.insert(digest, pk, sig, None);
        }
        true
    }
}

/// The process-wide cache every verification fast path consults.
pub fn global() -> &'static VerifyCache {
    static CACHE: OnceLock<VerifyCache> = OnceLock::new();
    CACHE.get_or_init(|| VerifyCache::new(DEFAULT_CAPACITY))
}

/// Resize (or, with `0`, disable) the process-wide cache.
pub fn set_capacity(capacity: usize) {
    global().set_capacity(capacity);
}

/// Drop every cached verdict from the process-wide cache.
pub fn clear() {
    global().clear();
}

/// `(hits, misses, evictions)` of the process-wide cache.
pub fn stats() -> (u64, u64, u64) {
    global().stats()
}

/// The process-wide cache's counter cells, for telemetry registration.
pub fn counter_cells() -> (Arc<AtomicU64>, Arc<AtomicU64>, Arc<AtomicU64>) {
    global().counter_cells()
}

/// [`VerifyCache::verify`] on the process-wide cache.
pub fn verify(msg: &[u8], pk: PublicKey, sig: &Signature) -> bool {
    global().verify(msg, pk, sig)
}

/// [`VerifyCache::verify_batch`] on the process-wide cache.
pub fn verify_batch_cached(items: &[(&[u8], PublicKey, Signature)]) -> bool {
    global().verify_batch(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertificateAuthority, Validity};
    use crate::dn::DistinguishedName;
    use crate::schnorr::KeyPair;

    #[test]
    fn hit_after_miss_same_verdict() {
        let cache = VerifyCache::new(64);
        let key = KeyPair::from_seed(b"vc-1");
        let sig = key.sign(b"payload");
        assert!(cache.verify(b"payload", key.public(), &sig));
        assert!(cache.verify(b"payload", key.public(), &sig));
        let (hits, misses, _) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn forged_signature_never_served_from_cache() {
        let cache = VerifyCache::new(64);
        let key = KeyPair::from_seed(b"vc-2");
        let sig = key.sign(b"payload");
        assert!(cache.verify(b"payload", key.public(), &sig));
        // Same bytes, same key, different signature: must re-verify and
        // fail, not hit.
        let forged = Signature {
            r: sig.r ^ 1,
            s: sig.s,
        };
        assert!(!cache.verify(b"payload", key.public(), &forged));
        // And the good entry is still intact.
        assert!(cache.verify(b"payload", key.public(), &sig));
    }

    #[test]
    fn negative_verdicts_are_not_cached() {
        let cache = VerifyCache::new(64);
        let key = KeyPair::from_seed(b"vc-3");
        let bad = Signature { r: 2, s: 3 };
        assert!(!cache.verify(b"msg", key.public(), &bad));
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bound_holds_and_evictions_count() {
        let cache = VerifyCache::new(SHARDS); // one entry per shard
        let key = KeyPair::from_seed(b"vc-4");
        for i in 0..64u64 {
            let msg = i.to_le_bytes();
            let sig = key.sign(&msg);
            assert!(cache.verify(&msg, key.public(), &sig));
        }
        assert!(cache.len() <= SHARDS);
        let (_, _, evictions) = cache.stats();
        assert!(evictions > 0);
    }

    #[test]
    fn lru_keeps_the_recently_hit_entry() {
        let cache = VerifyCache::new(SHARDS * 2);
        let key = KeyPair::from_seed(b"vc-5");
        // Find three messages landing in the same shard.
        let mut same_shard: Vec<Vec<u8>> = Vec::new();
        let mut shard0: Option<usize> = None;
        let mut i = 0u64;
        while same_shard.len() < 3 {
            let msg = i.to_le_bytes().to_vec();
            let s = sha256(&msg)[0] as usize % SHARDS;
            match shard0 {
                None => {
                    shard0 = Some(s);
                    same_shard.push(msg);
                }
                Some(s0) if s == s0 => same_shard.push(msg),
                _ => {}
            }
            i += 1;
        }
        let sigs: Vec<Signature> = same_shard.iter().map(|m| key.sign(m)).collect();
        // Fill the shard (cap 2), keep touching entry 0, then overflow.
        assert!(cache.verify(&same_shard[0], key.public(), &sigs[0]));
        assert!(cache.verify(&same_shard[1], key.public(), &sigs[1]));
        assert!(cache.verify(&same_shard[0], key.public(), &sigs[0]));
        assert!(cache.verify(&same_shard[2], key.public(), &sigs[2]));
        // Entry 1 was least recently hit; entry 0 must still be cached.
        let (hits_before, _, _) = cache.stats();
        assert!(cache.verify(&same_shard[0], key.public(), &sigs[0]));
        let (hits_after, _, _) = cache.stats();
        assert_eq!(hits_after, hits_before + 1);
    }

    #[test]
    fn expired_certificate_entry_is_invalidated() {
        let cache = VerifyCache::new(64);
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("CA"),
            KeyPair::from_seed(b"ca"),
        );
        let subject = KeyPair::from_seed(b"subject");
        let cert = ca.issue_identity(
            DistinguishedName::broker("domain-a"),
            subject.public(),
            Validity::starting_at(Timestamp(0), 100),
        );
        assert!(cache
            .verify_cert(&cert, ca.public_key(), Timestamp(10))
            .is_ok());
        assert_eq!(cache.stats().0, 0);
        // Within the window: a hit.
        assert!(cache
            .verify_cert(&cert, ca.public_key(), Timestamp(50))
            .is_ok());
        assert_eq!(cache.stats().0, 1);
        // Past the window: the entry is evicted and the signature
        // re-verified (the verdict itself is still Ok — validity is the
        // caller's check).
        assert!(cache
            .verify_cert(&cert, ca.public_key(), Timestamp(200))
            .is_ok());
        let (hits, _, evictions) = cache.stats();
        assert_eq!(hits, 1);
        assert!(evictions >= 1);
    }

    #[test]
    fn batch_with_partial_hits_matches_plain_batch() {
        let cache = VerifyCache::new(64);
        let keys: Vec<KeyPair> = (0..4).map(|i| KeyPair::from_seed(&[i as u8])).collect();
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let sigs: Vec<Signature> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
        // Warm half the entries.
        assert!(cache.verify(&msgs[0], keys[0].public(), &sigs[0]));
        assert!(cache.verify(&msgs[1], keys[1].public(), &sigs[1]));
        let items: Vec<(&[u8], PublicKey, Signature)> = msgs
            .iter()
            .zip(&keys)
            .zip(&sigs)
            .map(|((m, k), s)| (m.as_slice(), k.public(), *s))
            .collect();
        assert!(cache.verify_batch(&items));
        // One corrupted item fails the whole batch, hits or not.
        let mut bad = items.clone();
        bad[3].2.s ^= 1;
        assert!(!cache.verify_batch(&bad));
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = VerifyCache::new(0);
        let key = KeyPair::from_seed(b"vc-6");
        let sig = key.sign(b"payload");
        assert!(cache.verify(b"payload", key.public(), &sig));
        assert!(cache.verify(b"payload", key.public(), &sig));
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0, 0));
    }
}
