//! Certificate directory — the paper's §6.4 alternative 2: "Maintain a
//! certificate repository accessible through secure LDAP."
//!
//! The destination extracts the source's DN from the reservation
//! specification and looks the certificate up in a repository it has "a
//! strong trust relationship" with. Implemented here as an in-memory map;
//! the D3 ablation benchmark compares this against the web-of-trust
//! introducer chain.

use crate::cert::Certificate;
use crate::dn::DistinguishedName;
use crate::error::CryptoError;
use crate::schnorr::PublicKey;
use crate::time::Timestamp;
use std::collections::HashMap;

/// An in-memory certificate repository keyed by subject DN.
#[derive(Debug, Default, Clone)]
pub struct CertificateDirectory {
    by_dn: HashMap<DistinguishedName, Certificate>,
}

impl CertificateDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish (or replace) a certificate.
    pub fn publish(&mut self, cert: Certificate) {
        self.by_dn.insert(cert.tbs.subject.clone(), cert);
    }

    /// Remove a certificate (revocation by de-listing).
    pub fn revoke(&mut self, dn: &DistinguishedName) -> Option<Certificate> {
        self.by_dn.remove(dn)
    }

    /// Number of published certificates.
    pub fn len(&self) -> usize {
        self.by_dn.len()
    }

    /// True if the directory holds no certificates.
    pub fn is_empty(&self) -> bool {
        self.by_dn.is_empty()
    }

    /// Look up the public key for `dn`, checking validity at `now`.
    ///
    /// The repository itself is trusted (per the paper's caveat), so no
    /// further chain validation happens here.
    pub fn lookup(&self, dn: &DistinguishedName, now: Timestamp) -> Result<PublicKey, CryptoError> {
        let cert = self
            .by_dn
            .get(dn)
            .ok_or_else(|| CryptoError::UnknownSubject {
                subject: dn.clone(),
            })?;
        cert.check_validity(now)?;
        Ok(cert.tbs.subject_public_key)
    }

    /// Fetch the full certificate for `dn`.
    pub fn certificate(&self, dn: &DistinguishedName) -> Option<&Certificate> {
        self.by_dn.get(dn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertificateAuthority, Validity};
    use crate::schnorr::KeyPair;

    #[test]
    fn publish_lookup_revoke() {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("RootCA"),
            KeyPair::from_seed(b"ca"),
        );
        let bb = KeyPair::from_seed(b"bb");
        let dn = DistinguishedName::broker("domain-a");
        let cert = ca.issue_identity(dn.clone(), bb.public(), Validity::unbounded());

        let mut dir = CertificateDirectory::new();
        assert!(dir.lookup(&dn, Timestamp(0)).is_err());
        dir.publish(cert);
        assert_eq!(dir.lookup(&dn, Timestamp(0)).unwrap(), bb.public());
        dir.revoke(&dn);
        assert!(matches!(
            dir.lookup(&dn, Timestamp(0)),
            Err(CryptoError::UnknownSubject { .. })
        ));
    }

    #[test]
    fn expired_entries_not_served() {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("RootCA"),
            KeyPair::from_seed(b"ca"),
        );
        let dn = DistinguishedName::broker("domain-a");
        let cert = ca.issue_identity(
            dn.clone(),
            KeyPair::from_seed(b"bb").public(),
            Validity::starting_at(Timestamp(0), 10),
        );
        let mut dir = CertificateDirectory::new();
        dir.publish(cert);
        assert!(dir.lookup(&dn, Timestamp(5)).is_ok());
        assert!(matches!(
            dir.lookup(&dn, Timestamp(20)),
            Err(CryptoError::Expired { .. })
        ));
    }

    #[test]
    fn republish_replaces() {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("RootCA"),
            KeyPair::from_seed(b"ca"),
        );
        let dn = DistinguishedName::broker("domain-a");
        let k1 = KeyPair::from_seed(b"k1");
        let k2 = KeyPair::from_seed(b"k2");
        let mut dir = CertificateDirectory::new();
        dir.publish(ca.issue_identity(dn.clone(), k1.public(), Validity::unbounded()));
        dir.publish(ca.issue_identity(dn.clone(), k2.public(), Validity::unbounded()));
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.lookup(&dn, Timestamp(0)).unwrap(), k2.public());
    }
}
