//! Wall-clock instants for certificate validity.

use qos_wire::{Decode, Encode, Reader, WireError, Writer};
use std::fmt;
use std::ops::{Add, Sub};

/// Seconds since an arbitrary epoch (the simulation's t=0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The epoch.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The greatest representable instant (used for "no expiry").
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Construct from whole hours since the epoch (convenient for the
    /// paper's business-hours policies).
    pub fn from_hours(h: u64) -> Self {
        Timestamp(h * 3600)
    }

    /// The hour-of-day component (0–23), for time-of-day policies such as
    /// Figure 6's "If Time > 8am and Time < 5pm".
    pub fn hour_of_day(&self) -> u64 {
        (self.0 / 3600) % 24
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    fn add(self, secs: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(secs))
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;
    fn sub(self, rhs: Timestamp) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl Encode for Timestamp {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
}

impl Decode for Timestamp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Timestamp(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_of_day_wraps_at_midnight() {
        assert_eq!(Timestamp::from_hours(0).hour_of_day(), 0);
        assert_eq!(Timestamp::from_hours(9).hour_of_day(), 9);
        assert_eq!(Timestamp::from_hours(25).hour_of_day(), 1);
        assert_eq!(Timestamp::from_hours(48).hour_of_day(), 0);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Timestamp::MAX + 10, Timestamp::MAX);
        assert_eq!(Timestamp(5) - Timestamp(10), 0);
        assert_eq!(Timestamp(10) - Timestamp(4), 6);
    }
}
