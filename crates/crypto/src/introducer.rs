//! Web-of-trust key introduction (§6.4, option 1 — the paper's preferred
//! mechanism for accessing the public keys of entities without a direct
//! trust relationship).
//!
//! Each domain "add[s] the certificate of the upstream domain — known
//! because of the SSL handshake — and sign[s] it". The next domain thereby
//! receives a *list of key introducers*: a chain of vouchers rooted at a
//! peer it already trusts through an SLA. A verifier walks the chain,
//! checking each voucher under the previously accepted key, and applies a
//! local policy that "might limit the depth of an acceptable trust chain".

use crate::cert::Certificate;
use crate::dn::DistinguishedName;
use crate::error::CryptoError;
use crate::schnorr::{KeyPair, PublicKey, Signature};
use crate::time::Timestamp;
use std::collections::HashMap;

/// One voucher: `introducer` asserts that `subject_cert` is genuine,
/// having verified it first-hand (e.g. during a mutually authenticated
/// handshake with its owner).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Introduction {
    /// The certificate being vouched for.
    pub subject_cert: Certificate,
    /// DN of the vouching party.
    pub introducer: DistinguishedName,
    /// Introducer's signature over the canonical bytes of `subject_cert`.
    pub signature: Signature,
}

qos_wire::impl_wire_struct!(Introduction {
    subject_cert,
    introducer,
    signature
});

impl Introduction {
    /// Vouch for `subject_cert` with `introducer_key`.
    pub fn vouch(
        subject_cert: Certificate,
        introducer: DistinguishedName,
        introducer_key: &KeyPair,
    ) -> Self {
        let signature = introducer_key.sign(&qos_wire::to_bytes(&subject_cert));
        Self {
            subject_cert,
            introducer,
            signature,
        }
    }

    fn check(&self, introducer_pk: PublicKey) -> Result<(), CryptoError> {
        if introducer_pk.verify(&qos_wire::to_bytes(&self.subject_cert), &self.signature) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature {
                signer: self.introducer.clone(),
            })
        }
    }
}

/// Local trust policy: how long an introduction chain a verifier accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrustPolicy {
    /// Maximum number of introduction links between a trust anchor and the
    /// target key. Zero means "direct trust relationships only".
    pub max_chain_depth: usize,
}

impl Default for TrustPolicy {
    fn default() -> Self {
        // End-to-end paths in the paper's scenarios span a handful of
        // domains; depth 8 comfortably covers them while still bounding
        // transitive exposure.
        Self { max_chain_depth: 8 }
    }
}

/// A verifier's set of directly trusted keys: its CA(s) and the peers it
/// has SLAs with (whose certificates the SLA pins).
#[derive(Debug, Default, Clone)]
pub struct TrustAnchors {
    anchors: HashMap<DistinguishedName, PublicKey>,
}

impl TrustAnchors {
    /// Empty anchor set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin `dn` ↦ `pk` as directly trusted.
    pub fn insert(&mut self, dn: DistinguishedName, pk: PublicKey) {
        self.anchors.insert(dn, pk);
    }

    /// Look up a directly trusted key.
    pub fn get(&self, dn: &DistinguishedName) -> Option<PublicKey> {
        self.anchors.get(dn).copied()
    }

    /// Number of pinned anchors — the "trust table size" measured by the
    /// FIG3/FIG5 experiments.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// True if no anchors are pinned.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }

    /// Decide whether to accept `target`'s public key given a chain of
    /// introductions ordered **from the anchor side towards the target**:
    /// `chain[0]`'s introducer must be a trust anchor, each subsequent
    /// introduction's introducer must be the subject of the previous one,
    /// and the final introduction's subject must be `target`.
    ///
    /// Returns the accepted public key. A `target` that is itself an
    /// anchor needs no chain.
    pub fn accept_key(
        &self,
        target: &Certificate,
        chain: &[Introduction],
        policy: TrustPolicy,
        now: Timestamp,
    ) -> Result<PublicKey, CryptoError> {
        // Directly trusted?
        if let Some(pk) = self.get(&target.tbs.subject) {
            if pk == target.tbs.subject_public_key {
                target.check_validity(now)?;
                return Ok(pk);
            }
        }
        if chain.is_empty() {
            return Err(CryptoError::NoTrustAnchor {
                subject: target.tbs.subject.clone(),
            });
        }
        if chain.len() > policy.max_chain_depth {
            return Err(CryptoError::ChainTooDeep {
                depth: chain.len(),
                limit: policy.max_chain_depth,
            });
        }
        // The first introducer must be an anchor.
        let first = &chain[0];
        let mut current_pk =
            self.get(&first.introducer)
                .ok_or_else(|| CryptoError::NoTrustAnchor {
                    subject: first.introducer.clone(),
                })?;
        let mut current_dn = first.introducer.clone();
        for intro in chain {
            if intro.introducer != current_dn {
                return Err(CryptoError::IssuerMismatch {
                    expected: current_dn,
                    found: intro.introducer.clone(),
                });
            }
            intro.check(current_pk)?;
            intro.subject_cert.check_validity(now)?;
            current_pk = intro.subject_cert.tbs.subject_public_key;
            current_dn = intro.subject_cert.tbs.subject.clone();
        }
        // The chain must terminate at the target's certificate.
        if current_dn != target.tbs.subject || current_pk != target.tbs.subject_public_key {
            return Err(CryptoError::MalformedChain(
                "introduction chain does not terminate at the target",
            ));
        }
        target.check_validity(now)?;
        Ok(current_pk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertificateAuthority, Validity};

    struct Fixture {
        ca: CertificateAuthority,
        bb_a: KeyPair,
        bb_b: KeyPair,
        bb_c: KeyPair,
        cert_a: Certificate,
        cert_b: Certificate,
    }

    fn fixture() -> Fixture {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("RootCA"),
            KeyPair::from_seed(b"ca"),
        );
        let bb_a = KeyPair::from_seed(b"bb-a");
        let bb_b = KeyPair::from_seed(b"bb-b");
        let bb_c = KeyPair::from_seed(b"bb-c");
        let cert_a = ca.issue_identity(
            DistinguishedName::broker("domain-a"),
            bb_a.public(),
            Validity::unbounded(),
        );
        let cert_b = ca.issue_identity(
            DistinguishedName::broker("domain-b"),
            bb_b.public(),
            Validity::unbounded(),
        );
        Fixture {
            ca,
            bb_a,
            bb_b,
            bb_c,
            cert_a,
            cert_b,
        }
    }

    /// BB_C trusts BB_B (SLA peer). BB_B introduces BB_A's certificate.
    /// BB_C should accept BB_A's key through the single-link chain.
    #[test]
    fn one_hop_introduction_accepted() {
        let f = fixture();
        let mut anchors = TrustAnchors::new();
        anchors.insert(DistinguishedName::broker("domain-b"), f.bb_b.public());
        let intro = Introduction::vouch(
            f.cert_a.clone(),
            DistinguishedName::broker("domain-b"),
            &f.bb_b,
        );
        let pk = anchors
            .accept_key(&f.cert_a, &[intro], TrustPolicy::default(), Timestamp(0))
            .unwrap();
        assert_eq!(pk, f.bb_a.public());
    }

    #[test]
    fn directly_trusted_peer_needs_no_chain() {
        let f = fixture();
        let mut anchors = TrustAnchors::new();
        anchors.insert(DistinguishedName::broker("domain-a"), f.bb_a.public());
        let pk = anchors
            .accept_key(&f.cert_a, &[], TrustPolicy::default(), Timestamp(0))
            .unwrap();
        assert_eq!(pk, f.bb_a.public());
    }

    #[test]
    fn unknown_introducer_rejected() {
        let f = fixture();
        let anchors = TrustAnchors::new(); // trusts no one
        let intro = Introduction::vouch(
            f.cert_a.clone(),
            DistinguishedName::broker("domain-b"),
            &f.bb_b,
        );
        assert!(matches!(
            anchors.accept_key(&f.cert_a, &[intro], TrustPolicy::default(), Timestamp(0)),
            Err(CryptoError::NoTrustAnchor { .. })
        ));
    }

    #[test]
    fn forged_voucher_rejected() {
        let f = fixture();
        let mut anchors = TrustAnchors::new();
        anchors.insert(DistinguishedName::broker("domain-b"), f.bb_b.public());
        // Mallory forges the voucher with her own key but claims to be B.
        let mallory = KeyPair::from_seed(b"mallory");
        let intro = Introduction::vouch(
            f.cert_a.clone(),
            DistinguishedName::broker("domain-b"),
            &mallory,
        );
        assert!(matches!(
            anchors.accept_key(&f.cert_a, &[intro], TrustPolicy::default(), Timestamp(0)),
            Err(CryptoError::BadSignature { .. })
        ));
    }

    #[test]
    fn two_hop_chain_and_depth_policy() {
        let f = fixture();
        // BB_C trusts only BB_B. BB_B introduces BB_A; BB_A introduces a
        // fourth broker D.
        let bb_d = KeyPair::from_seed(b"bb-d");
        let mut ca = f.ca;
        let cert_d = ca.issue_identity(
            DistinguishedName::broker("domain-d"),
            bb_d.public(),
            Validity::unbounded(),
        );
        let mut anchors = TrustAnchors::new();
        anchors.insert(DistinguishedName::broker("domain-b"), f.bb_b.public());
        let chain = vec![
            Introduction::vouch(
                f.cert_a.clone(),
                DistinguishedName::broker("domain-b"),
                &f.bb_b,
            ),
            Introduction::vouch(
                cert_d.clone(),
                DistinguishedName::broker("domain-a"),
                &f.bb_a,
            ),
        ];
        // Accepted at default depth…
        assert!(anchors
            .accept_key(&cert_d, &chain, TrustPolicy::default(), Timestamp(0))
            .is_ok());
        // …rejected when local policy caps the depth at 1.
        assert!(matches!(
            anchors.accept_key(
                &cert_d,
                &chain,
                TrustPolicy { max_chain_depth: 1 },
                Timestamp(0)
            ),
            Err(CryptoError::ChainTooDeep { depth: 2, limit: 1 })
        ));
    }

    #[test]
    fn chain_must_terminate_at_target() {
        let f = fixture();
        let mut anchors = TrustAnchors::new();
        anchors.insert(DistinguishedName::broker("domain-b"), f.bb_b.public());
        // B introduces B's own cert, but we ask about A.
        let intro = Introduction::vouch(
            f.cert_b.clone(),
            DistinguishedName::broker("domain-b"),
            &f.bb_b,
        );
        assert!(matches!(
            anchors.accept_key(&f.cert_a, &[intro], TrustPolicy::default(), Timestamp(0)),
            Err(CryptoError::MalformedChain(_))
        ));
    }

    #[test]
    fn expired_introduced_certificate_rejected() {
        let mut f = fixture();
        let short = f.ca.issue_identity(
            DistinguishedName::broker("domain-a"),
            f.bb_a.public(),
            Validity::starting_at(Timestamp(0), 10),
        );
        let mut anchors = TrustAnchors::new();
        anchors.insert(DistinguishedName::broker("domain-b"), f.bb_b.public());
        let intro = Introduction::vouch(
            short.clone(),
            DistinguishedName::broker("domain-b"),
            &f.bb_b,
        );
        assert!(anchors
            .accept_key(
                &short,
                std::slice::from_ref(&intro),
                TrustPolicy::default(),
                Timestamp(5)
            )
            .is_ok());
        assert!(matches!(
            anchors.accept_key(&short, &[intro], TrustPolicy::default(), Timestamp(11)),
            Err(CryptoError::Expired { .. })
        ));
    }

    #[test]
    fn unused_broker_c_key_is_distinct() {
        // Sanity guard for the fixture itself.
        let f = fixture();
        assert_ne!(f.bb_c.public(), f.bb_a.public());
        assert_ne!(f.bb_c.public(), f.bb_b.public());
    }
}
