//! Cascaded capability delegation (Neuman '93, as used in §6.5 of the
//! paper).
//!
//! A Community Authorization Server (CAS) issues the user a capability
//! certificate whose subject key is a fresh **proxy key**; the user holds
//! the private proxy key. At each signalling hop the current holder
//! delegates onward by minting a new capability certificate whose subject
//! is the next hop and whose subject key is the next hop's **real** public
//! key (learned during the secure-channel handshake), copying the
//! capability attributes and *adding* restrictions (e.g. "valid for RAR"),
//! and signing with the private key matching the *current* certificate's
//! subject key.
//!
//! The destination then holds a chain CAS→user→BB_A→BB_B→BB_C (Figure 7
//! shows the per-hop capability lists growing 2 → 3 → 4) and can run the
//! seven-step verification checklist of §6.5, implemented in
//! [`DelegationChain::verify`].

use crate::cert::{Certificate, Extension, Restriction, TbsCertificate, Validity};
use crate::dn::DistinguishedName;
use crate::error::CryptoError;
use crate::schnorr::{KeyPair, PublicKey, Signature};
use crate::time::Timestamp;
use std::collections::BTreeSet;

/// A capability certificate chain, first element issued by the CAS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelegationChain {
    /// Certificates in delegation order (CAS-issued first).
    pub certs: Vec<Certificate>,
}

qos_wire::impl_wire_struct!(DelegationChain { certs });

/// What a successful verification yields: the attributes the destination's
/// policy engine may rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedCapabilities {
    /// Capability attributes of the final certificate (never wider than
    /// the CAS grant).
    pub capabilities: Vec<String>,
    /// Union of all restrictions accumulated along the chain.
    pub restrictions: Vec<Restriction>,
    /// The final holder's DN.
    pub holder: DistinguishedName,
}

impl DelegationChain {
    /// Start a chain from the CAS-issued certificate.
    pub fn new(cas_issued: Certificate) -> Self {
        Self {
            certs: vec![cas_issued],
        }
    }

    /// Number of certificates in the chain.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// True if the chain holds no certificates (never the case for chains
    /// built through [`DelegationChain::new`]).
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }

    /// The certificate currently at the end of the chain.
    pub fn tip(&self) -> &Certificate {
        self.certs.last().expect("chain never empty")
    }

    /// Delegate the capability to `delegatee` (identified by DN and real
    /// public key), signing with `holder_key` — which must match the tip
    /// certificate's subject public key — and adding `new_restrictions`.
    ///
    /// Returns the extended chain. Capabilities are copied verbatim from
    /// the tip (narrowing is allowed via `retain_capabilities`).
    pub fn delegate(
        &self,
        holder_key: &KeyPair,
        delegatee: DistinguishedName,
        delegatee_pk: PublicKey,
        new_restrictions: Vec<Restriction>,
        validity: Validity,
    ) -> Result<Self, CryptoError> {
        self.delegate_filtered(
            holder_key,
            delegatee,
            delegatee_pk,
            new_restrictions,
            validity,
            |_| true,
        )
    }

    /// Like [`DelegationChain::delegate`] but keeps only the capabilities
    /// for which `retain` returns true (a delegator may narrow, never
    /// widen).
    pub fn delegate_filtered(
        &self,
        holder_key: &KeyPair,
        delegatee: DistinguishedName,
        delegatee_pk: PublicKey,
        new_restrictions: Vec<Restriction>,
        validity: Validity,
        retain: impl Fn(&str) -> bool,
    ) -> Result<Self, CryptoError> {
        let tip = self.tip();
        if holder_key.public() != tip.tbs.subject_public_key {
            return Err(CryptoError::PossessionProofInvalid {
                subject: tip.tbs.subject.clone(),
            });
        }
        let caps: Vec<String> = tip
            .capabilities()
            .into_iter()
            .filter(|c| retain(c))
            .map(str::to_string)
            .collect();
        let mut extensions = vec![
            Extension::CapabilityCertificateFlag,
            Extension::Capabilities(caps),
        ];
        // Restrictions are inherited …
        for r in tip.restrictions() {
            extensions.push(Extension::Restriction(r.clone()));
        }
        // … and extended, never dropped.
        for r in new_restrictions {
            if !tip.restrictions().contains(&&r) {
                extensions.push(Extension::Restriction(r));
            }
        }
        let tbs = TbsCertificate {
            serial: tip.tbs.serial,
            issuer: tip.tbs.subject.clone(),
            subject: delegatee,
            validity,
            subject_public_key: delegatee_pk,
            extensions,
        };
        let cert = Certificate::issue(tbs, holder_key);
        let mut certs = self.certs.clone();
        certs.push(cert);
        Ok(Self { certs })
    }

    /// Run the §6.5 verification checklist.
    ///
    /// * `cas_pk` — pinned public key of the issuing CAS;
    /// * `now` — validity-check instant;
    /// * `possession` — the final holder's proof of knowledge of the tip
    ///   certificate's private key, over `nonce` (checklist step: "checks
    ///   that BB_C actually owns the capability certificate by requesting a
    ///   prove of the knowledge of pkey_BB_C").
    pub fn verify(
        &self,
        cas_pk: PublicKey,
        now: Timestamp,
        nonce: &[u8],
        possession: &Signature,
    ) -> Result<VerifiedCapabilities, CryptoError> {
        let verified = self.verify_links(cas_pk, now)?;
        // Step 6: tip holder proves possession of the matching private key.
        let tip = self.tip();
        if !tip
            .tbs
            .subject_public_key
            .check_possession(nonce, possession)
        {
            return Err(CryptoError::PossessionProofInvalid {
                subject: tip.tbs.subject.clone(),
            });
        }
        Ok(verified)
    }

    /// The structural subset of [`DelegationChain::verify`]: signature
    /// chain, issuer/subject continuity, capability monotonicity,
    /// restriction accumulation, and validity windows — everything except
    /// the live possession proof.
    pub fn verify_links(
        &self,
        cas_pk: PublicKey,
        now: Timestamp,
    ) -> Result<VerifiedCapabilities, CryptoError> {
        let first = self
            .certs
            .first()
            .ok_or(CryptoError::MalformedChain("empty chain"))?;
        // Step 1: the CAS issued a capability certificate for the user.
        if !first.is_capability_certificate() {
            return Err(CryptoError::NotACapabilityCertificate);
        }
        // Chains are re-presented at every hop of every RAR using them;
        // the verification cache makes the steady-state link checks one
        // hash each (validity is still re-checked on every pass).
        first.verify_signature_cached(cas_pk, now)?;
        first.check_validity(now)?;

        let mut prev = first;
        for cert in &self.certs[1..] {
            // Steps 2–4: each delegation was signed with the private key
            // corresponding to the *previous* certificate's subject key
            // (the proxy key for the user, pkey_BB_n afterwards).
            if !cert.is_capability_certificate() {
                return Err(CryptoError::NotACapabilityCertificate);
            }
            if !cert.tbs.issuer.same_principal(&prev.tbs.subject) {
                return Err(CryptoError::IssuerMismatch {
                    expected: prev.tbs.subject.clone(),
                    found: cert.tbs.issuer.clone(),
                });
            }
            cert.verify_signature_cached(prev.tbs.subject_public_key, now)?;
            cert.check_validity(now)?;

            // Step 7 ("validity of all capabilities … whether some entity
            // did change them inappropriately"): capabilities must never
            // widen, restrictions must never be dropped.
            let prev_caps: BTreeSet<&str> = prev.capabilities().into_iter().collect();
            for cap in cert.capabilities() {
                if !prev_caps.contains(cap) {
                    return Err(CryptoError::CapabilityWidened {
                        capability: cap.to_string(),
                    });
                }
            }
            let cur_restrictions: BTreeSet<&Restriction> =
                cert.restrictions().into_iter().collect();
            for r in prev.restrictions() {
                if !cur_restrictions.contains(r) {
                    return Err(CryptoError::RestrictionDropped {
                        restriction: r.to_string(),
                    });
                }
            }
            prev = cert;
        }

        let tip = self.tip();
        Ok(VerifiedCapabilities {
            capabilities: tip.capabilities().into_iter().map(str::to_string).collect(),
            restrictions: tip.restrictions().into_iter().cloned().collect(),
            holder: tip.tbs.subject.clone(),
        })
    }
}

/// A Community Authorization Server: issues capability certificates to
/// users at "grid-login" time (Figure 7's CAS).
pub struct CommunityAuthorizationServer {
    dn: DistinguishedName,
    key: KeyPair,
    next_serial: u64,
}

impl CommunityAuthorizationServer {
    /// Create a CAS.
    pub fn new(name: &str, key: KeyPair) -> Self {
        Self {
            dn: DistinguishedName::authority(name),
            key,
            next_serial: 1,
        }
    }

    /// The CAS's DN.
    pub fn dn(&self) -> &DistinguishedName {
        &self.dn
    }

    /// The CAS's public key (what relying parties pin).
    pub fn public_key(&self) -> PublicKey {
        self.key.public()
    }

    /// Grant `capabilities` to `user`, binding them to the supplied public
    /// proxy key. The user receives the certificate; the private proxy key
    /// stays with the user (created client-side, as at grid-login).
    pub fn grant(
        &mut self,
        user: &DistinguishedName,
        proxy_pk: PublicKey,
        capabilities: Vec<String>,
        validity: Validity,
    ) -> Certificate {
        let serial = self.next_serial;
        self.next_serial += 1;
        Certificate::issue(
            TbsCertificate {
                serial,
                issuer: self.dn.clone(),
                subject: user.annotated("capability"),
                validity,
                subject_public_key: proxy_pk,
                extensions: vec![
                    Extension::CapabilityCertificateFlag,
                    Extension::Capabilities(capabilities),
                ],
            },
            &self.key,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        cas: CommunityAuthorizationServer,
        user_proxy: KeyPair,
        user_dn: DistinguishedName,
        bb_a: KeyPair,
        bb_b: KeyPair,
        bb_c: KeyPair,
    }

    fn fixture() -> Fixture {
        Fixture {
            cas: CommunityAuthorizationServer::new("ESnet-CAS", KeyPair::from_seed(b"cas")),
            user_proxy: KeyPair::from_seed(b"alice-proxy"),
            user_dn: DistinguishedName::user("Alice", "ANL"),
            bb_a: KeyPair::from_seed(b"bb-a"),
            bb_b: KeyPair::from_seed(b"bb-b"),
            bb_c: KeyPair::from_seed(b"bb-c"),
        }
    }

    fn full_chain(f: &mut Fixture) -> DelegationChain {
        let grant = f.cas.grant(
            &f.user_dn,
            f.user_proxy.public(),
            vec!["ESnet:member".into()],
            Validity::unbounded(),
        );
        let chain = DelegationChain::new(grant);
        let chain = chain
            .delegate(
                &f.user_proxy,
                DistinguishedName::broker("domain-a"),
                f.bb_a.public(),
                vec![Restriction::ValidForDomain("domain-c".into())],
                Validity::unbounded(),
            )
            .unwrap();
        let chain = chain
            .delegate(
                &f.bb_a,
                DistinguishedName::broker("domain-b"),
                f.bb_b.public(),
                vec![],
                Validity::unbounded(),
            )
            .unwrap();
        chain
            .delegate(
                &f.bb_b,
                DistinguishedName::broker("domain-c"),
                f.bb_c.public(),
                vec![Restriction::ValidForRar(111)],
                Validity::unbounded(),
            )
            .unwrap()
    }

    #[test]
    fn figure7_chain_lengths() {
        let mut f = fixture();
        let grant = f.cas.grant(
            &f.user_dn,
            f.user_proxy.public(),
            vec!["ESnet:member".into()],
            Validity::unbounded(),
        );
        // A receives 2 certificates (CAS's + the user's delegation), B
        // receives 3, C receives 4 — as in Figure 7.
        let at_a = DelegationChain::new(grant)
            .delegate(
                &f.user_proxy,
                DistinguishedName::broker("domain-a"),
                f.bb_a.public(),
                vec![],
                Validity::unbounded(),
            )
            .unwrap();
        assert_eq!(at_a.len(), 2);
        let at_b = at_a
            .delegate(
                &f.bb_a,
                DistinguishedName::broker("domain-b"),
                f.bb_b.public(),
                vec![],
                Validity::unbounded(),
            )
            .unwrap();
        assert_eq!(at_b.len(), 3);
        let at_c = at_b
            .delegate(
                &f.bb_b,
                DistinguishedName::broker("domain-c"),
                f.bb_c.public(),
                vec![],
                Validity::unbounded(),
            )
            .unwrap();
        assert_eq!(at_c.len(), 4);
    }

    #[test]
    fn full_checklist_passes() {
        let mut f = fixture();
        let chain = full_chain(&mut f);
        let proof = f.bb_c.prove_possession(b"challenge");
        let verified = chain
            .verify(f.cas.public_key(), Timestamp(0), b"challenge", &proof)
            .unwrap();
        assert_eq!(verified.capabilities, vec!["ESnet:member"]);
        assert!(verified
            .restrictions
            .contains(&Restriction::ValidForDomain("domain-c".into())));
        assert!(verified
            .restrictions
            .contains(&Restriction::ValidForRar(111)));
        assert_eq!(verified.holder, DistinguishedName::broker("domain-c"));
    }

    #[test]
    fn wrong_holder_key_cannot_delegate() {
        let mut f = fixture();
        let grant = f.cas.grant(
            &f.user_dn,
            f.user_proxy.public(),
            vec!["ESnet:member".into()],
            Validity::unbounded(),
        );
        let chain = DelegationChain::new(grant);
        // Mallory doesn't own the proxy key.
        let mallory = KeyPair::from_seed(b"mallory");
        assert!(chain
            .delegate(
                &mallory,
                DistinguishedName::broker("domain-a"),
                f.bb_a.public(),
                vec![],
                Validity::unbounded(),
            )
            .is_err());
    }

    #[test]
    fn widened_capability_detected() {
        let mut f = fixture();
        let mut chain = full_chain(&mut f);
        // Tamper: BB_B's certificate suddenly claims an extra capability —
        // and is re-signed by BB_A's key (signature valid, but the widening
        // itself must be caught).
        let tip = chain.certs[2].clone();
        let mut tbs = tip.tbs.clone();
        for e in &mut tbs.extensions {
            if let Extension::Capabilities(caps) = e {
                caps.push("ESnet:admin".into());
            }
        }
        chain.certs[2] = Certificate::issue(tbs, &f.bb_a);
        // Re-signing breaks the downstream signature anyway; truncate to
        // isolate the widening check.
        chain.certs.truncate(3);
        let err = chain
            .verify_links(f.cas.public_key(), Timestamp(0))
            .unwrap_err();
        assert_eq!(
            err,
            CryptoError::CapabilityWidened {
                capability: "ESnet:admin".into()
            }
        );
    }

    #[test]
    fn dropped_restriction_detected() {
        let mut f = fixture();
        let chain = full_chain(&mut f);
        // BB_C strips the ValidForDomain restriction when "delegating" to
        // itself (signature-valid because BB_C holds the tip key).
        let tip = chain.tip().clone();
        let mut tbs = tip.tbs.clone();
        tbs.issuer = tip.tbs.subject.clone();
        tbs.subject = DistinguishedName::broker("domain-x");
        tbs.subject_public_key = KeyPair::from_seed(b"x").public();
        tbs.extensions
            .retain(|e| !matches!(e, Extension::Restriction(Restriction::ValidForDomain(_))));
        let forged = Certificate::issue(tbs, &f.bb_c);
        let mut certs = chain.certs.clone();
        certs.push(forged);
        let chain = DelegationChain { certs };
        let err = chain
            .verify_links(f.cas.public_key(), Timestamp(0))
            .unwrap_err();
        assert!(matches!(err, CryptoError::RestrictionDropped { .. }));
    }

    #[test]
    fn tampered_link_signature_detected() {
        let mut f = fixture();
        let mut chain = full_chain(&mut f);
        chain.certs[1].signature.s ^= 1;
        assert!(matches!(
            chain.verify_links(f.cas.public_key(), Timestamp(0)),
            Err(CryptoError::BadSignature { .. })
        ));
    }

    #[test]
    fn issuer_discontinuity_detected() {
        let mut f = fixture();
        let mut chain = full_chain(&mut f);
        chain.certs.remove(2); // gap: user→BB_A, then BB_B→BB_C
        assert!(matches!(
            chain.verify_links(f.cas.public_key(), Timestamp(0)),
            Err(CryptoError::IssuerMismatch { .. })
        ));
    }

    #[test]
    fn expired_link_detected() {
        let mut f = fixture();
        let grant = f.cas.grant(
            &f.user_dn,
            f.user_proxy.public(),
            vec!["ESnet:member".into()],
            Validity::starting_at(Timestamp(0), 100),
        );
        let chain = DelegationChain::new(grant);
        assert!(chain.verify_links(f.cas.public_key(), Timestamp(0)).is_ok());
        assert!(matches!(
            chain.verify_links(f.cas.public_key(), Timestamp(101)),
            Err(CryptoError::Expired { .. })
        ));
    }

    #[test]
    fn possession_proof_required() {
        let mut f = fixture();
        let chain = full_chain(&mut f);
        // BB_B (not the tip holder) cannot prove possession.
        let wrong_proof = f.bb_b.prove_possession(b"challenge");
        assert!(matches!(
            chain.verify(f.cas.public_key(), Timestamp(0), b"challenge", &wrong_proof),
            Err(CryptoError::PossessionProofInvalid { .. })
        ));
        // Replayed proof over a different nonce also fails.
        let stale = f.bb_c.prove_possession(b"old-challenge");
        assert!(chain
            .verify(f.cas.public_key(), Timestamp(0), b"challenge", &stale)
            .is_err());
    }

    #[test]
    fn capability_narrowing_is_allowed() {
        let mut f = fixture();
        let grant = f.cas.grant(
            &f.user_dn,
            f.user_proxy.public(),
            vec!["ESnet:member".into(), "ESnet:priority".into()],
            Validity::unbounded(),
        );
        let chain = DelegationChain::new(grant)
            .delegate_filtered(
                &f.user_proxy,
                DistinguishedName::broker("domain-a"),
                f.bb_a.public(),
                vec![],
                Validity::unbounded(),
                |c| c == "ESnet:member",
            )
            .unwrap();
        let verified = chain
            .verify_links(f.cas.public_key(), Timestamp(0))
            .unwrap();
        assert_eq!(verified.capabilities, vec!["ESnet:member"]);
    }

    #[test]
    fn chain_wire_round_trip() {
        let mut f = fixture();
        let chain = full_chain(&mut f);
        let bytes = qos_wire::to_bytes(&chain);
        let back: DelegationChain = qos_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, chain);
        assert!(back.verify_links(f.cas.public_key(), Timestamp(0)).is_ok());
    }
}
