//! Arithmetic in a fixed safe-prime group.
//!
//! The group is `G = <g>`, the order-`q` subgroup of `Z_p*` where
//! `p = 2q + 1` is a safe prime. Constants were generated once with a
//! primality search (`q` is the next prime above the Mersenne prime `M61`
//! for which `2q+1` is also prime) and are fixed so that the encoding of
//! keys and signatures is stable.
//!
//! **Security note.** A 63-bit group is *simulation strength only*: it
//! preserves the structure of a real discrete-log signature scheme
//! (correct signatures verify, tampered data does not, keys compose into
//! certificate chains) but offers no security margin. DESIGN.md documents
//! this substitution for the paper's production PKI.

/// The safe prime `p = 2q + 1` (63 bits).
pub const P: u64 = 4_611_686_018_427_394_499;

/// The prime group order `q = (p - 1) / 2` (62 bits).
pub const Q: u64 = 2_305_843_009_213_697_249;

/// Generator of the order-`q` subgroup (`g = 2² mod p`, a quadratic
/// residue, hence of order `q`).
pub const G: u64 = 4;

/// Modular multiplication `a * b mod m` via 128-bit intermediates.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular addition `a + b mod m` (inputs must already be `< m`).
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    let (s, carry) = a.overflowing_add(b);
    if carry || s >= m {
        s.wrapping_sub(m)
    } else {
        s
    }
}

/// Modular exponentiation `base^exp mod m` by square-and-multiply.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    debug_assert!(m > 1);
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Precomputed table for fast exponentiation from one fixed base.
///
/// Classic fixed-base windowed method with 8-bit windows: entry
/// `table[w][d]` holds `base^(d · 256^w) mod p`, so `base^e` for a 64-bit
/// exponent is the product of at most 8 table entries — no squarings at
/// all, versus ~62 squarings plus ~31 multiplies for a generic
/// square-and-multiply ladder. The table is 8 × 256 × 8 bytes = 16 KiB
/// and costs ~2 048 multiplies to build, so it pays off after a few dozen
/// exponentiations; build one for long-lived bases (the group generator,
/// SLA-pinned peer public keys), not for one-shot values.
pub struct FixedBase {
    table: Box<[[u64; 256]; 8]>,
}

impl FixedBase {
    /// Build the window table for `base`.
    pub fn new(base: u64) -> Self {
        let mut table = Box::new([[1u64; 256]; 8]);
        // step = base^(256^w) at the top of each iteration.
        let mut step = base % P;
        for row in table.iter_mut() {
            for d in 1..256 {
                row[d] = mul_mod(row[d - 1], step, P);
            }
            step = mul_mod(row[255], step, P);
        }
        Self { table }
    }

    /// `base^exp mod p` from the table (at most 7 multiplies).
    #[inline]
    pub fn pow(&self, exp: u64) -> u64 {
        let mut acc = 1u64;
        for (row, byte) in self.table.iter().zip(exp.to_le_bytes()) {
            if byte != 0 {
                acc = mul_mod(acc, row[byte as usize], P);
            }
        }
        acc
    }
}

/// The process-wide fixed-base table for the generator `g`.
pub fn g_table() -> &'static FixedBase {
    static G_TABLE: std::sync::OnceLock<FixedBase> = std::sync::OnceLock::new();
    G_TABLE.get_or_init(|| FixedBase::new(G))
}

/// `g^exp mod p` — exponentiation from the fixed generator, via the
/// precomputed window table.
#[inline]
pub fn g_pow(exp: u64) -> u64 {
    g_table().pow(exp)
}

/// `g^exp mod p` by generic square-and-multiply, bypassing the table.
///
/// Retained as the comparison baseline for benchmarks and tests; prefer
/// [`g_pow`] everywhere else.
#[inline]
pub fn g_pow_generic(exp: u64) -> u64 {
    pow_mod(G, exp, P)
}

/// `Π bases[i]^exps[i] mod p` by interleaved square-and-multiply
/// (Straus' trick): all exponents share one squaring chain, so a product
/// of `n` exponentiations costs ~62 squarings total instead of ~62·n.
///
/// This is what makes batch signature verification cheaper than serial
/// verification: the random-linear-combination check is one multi-
/// exponentiation over `2n` bases.
pub fn multi_pow(pairs: &[(u64, u64)]) -> u64 {
    let top = pairs
        .iter()
        .map(|&(_, e)| 64 - e.leading_zeros())
        .max()
        .unwrap_or(0);
    let mut acc = 1u64;
    for bit in (0..top).rev() {
        acc = mul_mod(acc, acc, P);
        for &(base, exp) in pairs {
            if (exp >> bit) & 1 == 1 {
                acc = mul_mod(acc, base, P);
            }
        }
    }
    acc
}

/// Reduce arbitrary 128 bits to a nonzero scalar in `[1, q)`.
///
/// Used to derive scalars from hash output; the probability of the
/// pre-reduction value mapping to zero is negligible, but we map zero to
/// one anyway so callers never receive a degenerate scalar.
pub fn scalar_from_wide(wide: u128) -> u64 {
    let s = (wide % Q as u128) as u64;
    if s == 0 {
        1
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_is_safe_prime_relation() {
        assert_eq!(P, 2 * Q + 1);
    }

    #[test]
    fn generator_has_order_q() {
        assert_eq!(pow_mod(G, Q, P), 1);
        assert_ne!(pow_mod(G, 1, P), 1);
        // G generates a group of order exactly q (q prime ⇒ order divides q
        // and isn't 1).
    }

    #[test]
    fn fermat_little_theorem_spot_checks() {
        for a in [2u64, 3, 12345, 987_654_321, P - 2] {
            assert_eq!(pow_mod(a, P - 1, P), 1, "a={a}");
        }
    }

    #[test]
    fn pow_mod_agrees_with_naive() {
        let m = 1_000_003;
        for (b, e) in [(2u64, 10u64), (7, 13), (999_999, 3), (123, 0)] {
            let mut naive = 1u64;
            for _ in 0..e {
                naive = naive * b % m;
            }
            assert_eq!(pow_mod(b, e, m), naive);
        }
    }

    #[test]
    fn add_mod_handles_wraparound() {
        assert_eq!(add_mod(Q - 1, Q - 1, Q), Q - 2);
        assert_eq!(add_mod(0, 0, Q), 0);
        assert_eq!(add_mod(1, Q - 1, Q), 0);
    }

    #[test]
    fn group_is_closed_under_multiplication() {
        // Products of subgroup elements stay in the subgroup (order divides q).
        let a = g_pow(123_456);
        let b = g_pow(987_654);
        let c = mul_mod(a, b, P);
        assert_eq!(pow_mod(c, Q, P), 1);
    }

    #[test]
    fn fixed_base_matches_generic_pow() {
        let fb = FixedBase::new(G);
        for e in [0u64, 1, 2, 255, 256, 65_537, Q - 1, Q, u64::MAX] {
            assert_eq!(fb.pow(e), pow_mod(G, e, P), "e={e}");
        }
        let fb7 = FixedBase::new(7_777_777);
        for e in [3u64, 1 << 20, Q - 2] {
            assert_eq!(fb7.pow(e), pow_mod(7_777_777, e, P), "e={e}");
        }
    }

    #[test]
    fn g_pow_uses_table_consistently() {
        for e in [0u64, 5, 123_456_789, Q - 1] {
            assert_eq!(g_pow(e), g_pow_generic(e));
        }
    }

    #[test]
    fn multi_pow_matches_product_of_pows() {
        let pairs = [
            (g_pow(12), 345u64),
            (g_pow(67), 8_910_111_213),
            (g_pow(14), Q - 3),
        ];
        let expected = pairs
            .iter()
            .fold(1u64, |acc, &(b, e)| mul_mod(acc, pow_mod(b, e, P), P));
        assert_eq!(multi_pow(&pairs), expected);
        assert_eq!(multi_pow(&[]), 1);
        assert_eq!(multi_pow(&[(123, 0)]), 1);
    }

    #[test]
    fn scalar_from_wide_never_zero() {
        assert_eq!(scalar_from_wide(0), 1);
        assert_eq!(scalar_from_wide(Q as u128), 1);
        assert!(scalar_from_wide(u128::MAX) < Q);
    }
}
