//! From-scratch SHA-256 (FIPS 180-4) and HMAC-SHA-256.
//!
//! The signalling protocol signs nested message envelopes; SHA-256 is the
//! digest those signatures are computed over. Implemented here rather than
//! pulled in as a dependency because the paper's substrate (OpenSSL-era
//! PKI) is rebuilt from scratch in this reproduction. Verified against the
//! NIST/FIPS test vectors in the unit tests below.
//!
//! Every nested layer's signature hashes the complete inner envelope, so
//! destination-side verification is hash-bound once encoding is cached
//! (DESIGN.md D6). On x86-64 with the SHA extensions the compression
//! function therefore dispatches at runtime to a SHA-NI implementation
//! (~5-10× the portable ladder); the portable block function is the
//! fallback everywhere else and the reference the hardware path is
//! tested against.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// A 32-byte SHA-256 digest.
pub type Digest = [u8; DIGEST_LEN];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish the hash and return the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update_padding(bit_len);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self, bit_len: u64) {
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Pad to 56 mod 64.
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        // Bypass total_len accounting: re-implement the absorb loop inline.
        let data = &pad[..pad_len + 8];
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            let mut merged = self.buf;
            merged[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf = merged;
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        debug_assert!(data.is_empty() && self.buf_len == 0);
    }

    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // SAFETY: `available()` confirmed the sha/ssse3/sse4.1
            // target features at runtime.
            unsafe { shani::compress(&mut self.state, block) };
            return;
        }
        compress_portable(&mut self.state, block);
    }
}

/// One compression round on the portable square-and-rotate ladder —
/// the reference implementation and the fallback on targets without
/// hashing extensions.
fn compress_portable(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// SHA-NI compression (x86-64 SHA extensions), selected at runtime.
///
/// Follows Intel's canonical schedule: state lives in two XMM registers
/// as (ABEF, CDGH); `sha256rnds2` retires four rounds per instruction
/// pair and `sha256msg1`/`sha256msg2` extend the message schedule four
/// words at a time.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    use core::arch::x86_64::*;

    /// Runtime feature check, cached by the std detection macro.
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Four rounds: the low two WK words feed the CDGH update, the high
    /// two (moved down) feed the ABEF update.
    #[inline]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn rounds4(state0: &mut __m128i, state1: &mut __m128i, wk: __m128i) {
        *state1 = _mm_sha256rnds2_epu32(*state1, *state0, wk);
        let wk_hi = _mm_shuffle_epi32(wk, 0x0E);
        *state0 = _mm_sha256rnds2_epu32(*state0, *state1, wk_hi);
    }

    /// Next four message-schedule words from the previous sixteen.
    #[inline]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn sched(w0: __m128i, w1: __m128i, w2: __m128i, w3: __m128i) -> __m128i {
        let t = _mm_add_epi32(_mm_sha256msg1_epu32(w0, w1), _mm_alignr_epi8(w3, w2, 4));
        _mm_sha256msg2_epu32(t, w3)
    }

    #[inline]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn k4(i: usize) -> __m128i {
        _mm_loadu_si128(K.as_ptr().add(i) as *const __m128i)
    }

    /// # Safety
    /// Caller must have verified [`available`].
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        // Big-endian word loads.
        let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);

        // Re-order [a b c d | e f g h] into (ABEF, CDGH).
        let abcd = _mm_shuffle_epi32(_mm_loadu_si128(state.as_ptr() as *const __m128i), 0xB1);
        let efgh = _mm_shuffle_epi32(
            _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i),
            0x1B,
        );
        let mut state0 = _mm_alignr_epi8(abcd, efgh, 8);
        let mut state1 = _mm_blend_epi16(efgh, abcd, 0xF0);
        let save0 = state0;
        let save1 = state1;

        let p = block.as_ptr() as *const __m128i;
        let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
        let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
        let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
        let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);

        rounds4(&mut state0, &mut state1, _mm_add_epi32(w0, k4(0)));
        rounds4(&mut state0, &mut state1, _mm_add_epi32(w1, k4(4)));
        rounds4(&mut state0, &mut state1, _mm_add_epi32(w2, k4(8)));
        rounds4(&mut state0, &mut state1, _mm_add_epi32(w3, k4(12)));
        for group in 1..4 {
            w0 = sched(w0, w1, w2, w3);
            rounds4(&mut state0, &mut state1, _mm_add_epi32(w0, k4(16 * group)));
            w1 = sched(w1, w2, w3, w0);
            rounds4(
                &mut state0,
                &mut state1,
                _mm_add_epi32(w1, k4(16 * group + 4)),
            );
            w2 = sched(w2, w3, w0, w1);
            rounds4(
                &mut state0,
                &mut state1,
                _mm_add_epi32(w2, k4(16 * group + 8)),
            );
            w3 = sched(w3, w0, w1, w2);
            rounds4(
                &mut state0,
                &mut state1,
                _mm_add_epi32(w3, k4(16 * group + 12)),
            );
        }

        state0 = _mm_add_epi32(state0, save0);
        state1 = _mm_add_epi32(state1, save1);

        // Back to [a b c d | e f g h].
        let feba = _mm_shuffle_epi32(state0, 0x1B);
        let dchg = _mm_shuffle_epi32(state1, 0xB1);
        let abcd = _mm_blend_epi16(feba, dchg, 0xF0);
        let efgh = _mm_alignr_epi8(dchg, feba, 8);
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, abcd);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, efgh);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA-256 (RFC 2104), used by [`crate::session`]-style message
/// authentication on secure channels.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Render a digest as lowercase hex (for fingerprints and debugging).
pub fn to_hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP test vectors.
    #[test]
    fn nist_empty() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_blocks() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    /// Full digest computed with only the portable compression function
    /// (padding done by hand) — used to cross-check the dispatched path.
    fn sha256_portable_only(data: &[u8]) -> [u8; 32] {
        let mut state = H0;
        let mut padded = data.to_vec();
        padded.push(0x80);
        while padded.len() % 64 != 56 {
            padded.push(0);
        }
        padded.extend_from_slice(&((data.len() as u64) * 8).to_be_bytes());
        for block in padded.chunks_exact(64) {
            compress_portable(&mut state, block.try_into().unwrap());
        }
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// The runtime-dispatched compression (SHA-NI where available) must
    /// agree with the portable reference at every block-boundary shape.
    #[test]
    fn dispatched_compress_matches_portable() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for len in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 129, 1000, 4096] {
            assert_eq!(
                sha256(&data[..len]),
                sha256_portable_only(&data[..len]),
                "len {len}"
            );
        }
    }

    // RFC 4231 HMAC-SHA-256 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            to_hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            to_hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: 131-byte key (forces key hashing).
        let key = [0xaau8; 131];
        assert_eq!(
            to_hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }
}
