//! X.500-style distinguished names.
//!
//! The signalling protocol identifies every principal — users, bandwidth
//! brokers, policy/authorization servers — by distinguished name (DN), and
//! each hop records the DN of the *next* downstream broker in the envelope
//! it signs (`DN_BB_{n+2}` in the paper's notation).

use qos_wire::{Decode, Encode, Reader, WireError, Writer};
use std::fmt;

/// One relative distinguished name component, e.g. `CN=Alice`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rdn {
    /// Attribute type (`CN`, `O`, `OU`, `C`, …).
    pub attr: String,
    /// Attribute value.
    pub value: String,
}

qos_wire::impl_wire_struct!(Rdn { attr, value });

/// An ordered sequence of RDN components.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DistinguishedName {
    components: Vec<Rdn>,
}

impl DistinguishedName {
    /// Build a DN from `(attr, value)` pairs, most-specific first.
    pub fn new<I, A, V>(components: I) -> Self
    where
        I: IntoIterator<Item = (A, V)>,
        A: Into<String>,
        V: Into<String>,
    {
        Self {
            components: components
                .into_iter()
                .map(|(a, v)| Rdn {
                    attr: a.into(),
                    value: v.into(),
                })
                .collect(),
        }
    }

    /// Shorthand for a user principal: `CN=<name>,OU=Users,O=<org>`.
    pub fn user(name: &str, org: &str) -> Self {
        Self::new([("CN", name), ("OU", "Users"), ("O", org)])
    }

    /// Shorthand for a bandwidth broker: `CN=BB,OU=<domain>,O=QoS`.
    pub fn broker(domain: &str) -> Self {
        Self::new([("CN", "BB"), ("OU", domain), ("O", "QoS")])
    }

    /// Shorthand for a certificate authority / authorization server.
    pub fn authority(name: &str) -> Self {
        Self::new([("CN", name), ("OU", "Authorities"), ("O", "QoS")])
    }

    /// The common-name component, if present.
    pub fn common_name(&self) -> Option<&str> {
        self.components
            .iter()
            .find(|c| c.attr == "CN")
            .map(|c| c.value.as_str())
    }

    /// The organizational-unit component, if present. For broker DNs this
    /// carries the administrative domain name.
    pub fn org_unit(&self) -> Option<&str> {
        self.components
            .iter()
            .find(|c| c.attr == "OU")
            .map(|c| c.value.as_str())
    }

    /// All components, most-specific first.
    pub fn components(&self) -> &[Rdn] {
        &self.components
    }

    /// Return a copy with the CN annotated, as the paper's capability
    /// certificates do ("the DN of the user (potentially modified to
    /// indicate that this is a capability certificate)").
    pub fn annotated(&self, marker: &str) -> Self {
        let components = self
            .components
            .iter()
            .map(|c| {
                if c.attr == "CN" {
                    Rdn {
                        attr: c.attr.clone(),
                        value: format!("{}+{}", c.value, marker),
                    }
                } else {
                    c.clone()
                }
            })
            .collect();
        Self { components }
    }

    /// True if `self` equals `other` after stripping any CN annotations.
    pub fn same_principal(&self, other: &Self) -> bool {
        fn strip(dn: &DistinguishedName) -> Vec<(String, String)> {
            dn.components
                .iter()
                .map(|c| {
                    let v = if c.attr == "CN" {
                        c.value.split('+').next().unwrap_or("").to_string()
                    } else {
                        c.value.clone()
                    };
                    (c.attr.clone(), v)
                })
                .collect()
        }
        strip(self) == strip(other)
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}={}", c.attr, c.value)?;
        }
        Ok(())
    }
}

impl Encode for DistinguishedName {
    fn encode(&self, w: &mut Writer) {
        self.components.encode(w);
    }
}

impl Decode for DistinguishedName {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            components: Vec::<Rdn>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let dn = DistinguishedName::user("Alice", "ANL");
        assert_eq!(dn.to_string(), "CN=Alice,OU=Users,O=ANL");
    }

    #[test]
    fn accessors() {
        let dn = DistinguishedName::broker("domain-b");
        assert_eq!(dn.common_name(), Some("BB"));
        assert_eq!(dn.org_unit(), Some("domain-b"));
    }

    #[test]
    fn annotation_preserves_principal_identity() {
        let dn = DistinguishedName::user("Alice", "ANL");
        let marked = dn.annotated("capability");
        assert_ne!(dn, marked);
        assert!(dn.same_principal(&marked));
        assert!(marked.same_principal(&dn));
        assert!(!dn.same_principal(&DistinguishedName::user("Bob", "ANL")));
    }

    #[test]
    fn wire_round_trip() {
        let dn = DistinguishedName::new([("CN", "BB"), ("OU", "esnet"), ("O", "QoS"), ("C", "US")]);
        let bytes = qos_wire::to_bytes(&dn);
        assert_eq!(
            qos_wire::from_bytes::<DistinguishedName>(&bytes).unwrap(),
            dn
        );
    }

    #[test]
    fn ordering_matters() {
        let a = DistinguishedName::new([("CN", "x"), ("O", "y")]);
        let b = DistinguishedName::new([("O", "y"), ("CN", "x")]);
        assert_ne!(a, b);
    }
}
