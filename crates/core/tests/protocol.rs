//! End-to-end protocol tests over the virtual-time mesh: hop-by-hop
//! signalling (§6), denials with rollback, Figure 6 policies, tunnels,
//! the Approach-1 baseline with misreservation, STARS, and billing.

use qos_core::drive::Mesh;
use qos_core::node::Completion;
use qos_core::scenario::{build_chain, ChainOptions, Scenario};
use qos_core::source::{AgentMode, ReservationCoordinator, SourceBasedRun};
use qos_core::RarId;
use qos_crypto::Timestamp;
use qos_net::{SimDuration, SimTime};
use qos_policy::samples;
use std::collections::HashMap;

const MBPS: u64 = 1_000_000;

fn mesh_from(scenario: &mut Scenario, hop_latency_ms: u64) -> Mesh {
    let mut mesh = Mesh::new();
    let domains = scenario.domains.clone();
    for node in scenario.nodes.drain(..) {
        mesh.add_node(node);
    }
    for w in domains.windows(2) {
        mesh.set_latency(&w[0], &w[1], SimDuration::from_millis(hop_latency_ms));
    }
    mesh
}

fn approval_of(
    mesh: &Mesh,
    domain: &str,
    rar: RarId,
) -> Result<qos_core::Approval, qos_core::Denial> {
    let (_, c) = mesh
        .reservation_outcome(domain, rar)
        .unwrap_or_else(|| panic!("no completion for {rar:?} at {domain}"));
    match c {
        Completion::Reservation { result, .. } => result.clone(),
        other => panic!("unexpected completion {other:?}"),
    }
}

#[test]
fn hop_by_hop_reservation_grants_end_to_end() {
    let mut s = build_chain(ChainOptions::default());
    let spec = s.spec("alice", 7, 10 * MBPS, Timestamp(0), 3600);
    let rar_id = spec.rar_id;
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    let mut mesh = mesh_from(&mut s, 5);

    mesh.submit_in(SimDuration::ZERO, "domain-a", rar, cert);
    mesh.run_until_idle();

    let approval = approval_of(&mesh, "domain-a", rar_id).expect("granted");
    // Approval endorsed by C (origin), then B, then A.
    let path: Vec<&str> = approval.entries.iter().map(|e| e.domain.as_str()).collect();
    assert_eq!(path, vec!["domain-c", "domain-b", "domain-a"]);
    // The endorsement chain verifies with the brokers' keys.
    let keys: HashMap<String, qos_crypto::PublicKey> = ["domain-a", "domain-b", "domain-c"]
        .iter()
        .map(|d| (d.to_string(), mesh.node(d).public_key()))
        .collect();
    approval
        .verify(|dn| dn.org_unit().and_then(|ou| keys.get(ou)).copied())
        .unwrap();

    // Capacity is committed in every domain.
    for d in ["domain-a", "domain-b", "domain-c"] {
        assert_eq!(
            mesh.node(d).core().available_bw_at(Timestamp(10)),
            1_000_000_000 - 10 * MBPS,
            "domain {d}"
        );
    }

    // Alice contacted one broker; each transit peer saw exactly one
    // Request and one Approve.
    assert_eq!(mesh.messages_to("domain-b", "Request"), 1);
    assert_eq!(mesh.messages_to("domain-c", "Request"), 1);
    assert_eq!(mesh.messages_to("domain-b", "Approve"), 1);
    assert_eq!(mesh.messages_to("domain-a", "Approve"), 1);

    // Round trip across 2 hops of 5 ms each: 20 ms.
    let (t, _) = mesh.reservation_outcome("domain-a", rar_id).unwrap();
    assert_eq!(t, SimTime(20_000_000));
}

#[test]
fn downstream_denial_propagates_and_rolls_back() {
    // Domain C denies everything.
    let mut policies = HashMap::new();
    policies.insert(
        2,
        r#"return deny "domain C is closed for maintenance""#.to_string(),
    );
    let mut s = build_chain(ChainOptions {
        policies,
        ..ChainOptions::default()
    });
    let spec = s.spec("alice", 7, 10 * MBPS, Timestamp(0), 3600);
    let rar_id = spec.rar_id;
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    let mut mesh = mesh_from(&mut s, 5);

    mesh.submit_in(SimDuration::ZERO, "domain-a", rar, cert);
    mesh.run_until_idle();

    let denial = approval_of(&mesh, "domain-a", rar_id).expect_err("denied");
    assert_eq!(denial.domain, "domain-c");
    assert!(denial.reason.contains("maintenance"), "{}", denial.reason);

    // The holds in A and B were rolled back.
    for d in ["domain-a", "domain-b", "domain-c"] {
        assert_eq!(
            mesh.node(d).core().available_bw_at(Timestamp(10)),
            1_000_000_000,
            "domain {d} must have released its hold"
        );
    }
}

#[test]
fn sla_exhaustion_denies_at_the_bottleneck() {
    let mut s = build_chain(ChainOptions {
        sla_rate_bps: 15 * MBPS,
        ..ChainOptions::default()
    });
    let spec1 = s.spec("alice", 1, 10 * MBPS, Timestamp(0), 3600);
    let spec2 = s.spec("alice", 2, 10 * MBPS, Timestamp(0), 3600);
    let id1 = spec1.rar_id;
    let id2 = spec2.rar_id;
    let rar1 = s.users["alice"].sign_request(spec1, &s.nodes[0]);
    let rar2 = s.users["alice"].sign_request(spec2, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    let mut mesh = mesh_from(&mut s, 5);

    mesh.submit_in(SimDuration::ZERO, "domain-a", rar1, cert.clone());
    mesh.submit_in(SimDuration::from_millis(100), "domain-a", rar2, cert);
    mesh.run_until_idle();

    assert!(approval_of(&mesh, "domain-a", id1).is_ok());
    let denial = approval_of(&mesh, "domain-a", id2).expect_err("second must not fit 15 Mb/s SLA");
    assert!(
        denial.reason.contains("insufficient capacity"),
        "{}",
        denial.reason
    );
}

#[test]
fn figure6_policies_govern_the_chain() {
    // The exact policy files of Figure 6 on the three domains.
    let mut policies = HashMap::new();
    policies.insert(0, samples::FIG6_DOMAIN_A.to_string());
    policies.insert(1, samples::FIG6_DOMAIN_B.to_string());
    policies.insert(2, samples::FIG6_DOMAIN_C.to_string());
    let mut s = build_chain(ChainOptions {
        policies,
        ..ChainOptions::default()
    });

    // Alice, 10 Mb/s, with her ESnet capability and a coupled CPU
    // reservation 111 in domain C — the exact request of Figure 6.
    let spec = s
        .spec("alice", 7, 10 * MBPS, Timestamp(0), 3600)
        .with_cpu_reservation(111);
    let rar_id = spec.rar_id;
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    let mut mesh = mesh_from(&mut s, 5);
    mesh.node_mut("domain-c").add_cpu_reservation(111);

    // At 10:00 business time.
    mesh.submit_in(SimDuration::ZERO, "domain-a", rar, cert.clone());
    mesh.run_until_idle();
    assert!(
        approval_of(&mesh, "domain-a", rar_id).is_ok(),
        "Figure 6's request must be granted"
    );

    // Same request without the CPU reservation: C denies.
    let mut s2 = {
        let mut policies = HashMap::new();
        policies.insert(0, samples::FIG6_DOMAIN_A.to_string());
        policies.insert(1, samples::FIG6_DOMAIN_B.to_string());
        policies.insert(2, samples::FIG6_DOMAIN_C.to_string());
        build_chain(ChainOptions {
            policies,
            ..ChainOptions::default()
        })
    };
    let spec = s2.spec("alice", 8, 10 * MBPS, Timestamp(0), 3600); // no cpu resv
    let rar_id2 = spec.rar_id;
    let rar = s2.users["alice"].sign_request(spec, &s2.nodes[0]);
    let cert2 = s2.users["alice"].cert.clone();
    let mut mesh2 = mesh_from(&mut s2, 5);
    mesh2.submit_in(SimDuration::ZERO, "domain-a", rar, cert2);
    mesh2.run_until_idle();
    let denial = approval_of(&mesh2, "domain-a", rar_id2).expect_err("no CPU resv");
    assert_eq!(denial.domain, "domain-c");
    assert!(denial.reason.contains("CPU"), "{}", denial.reason);
}

#[test]
fn business_hours_cap_denies_at_source() {
    let mut policies = HashMap::new();
    policies.insert(0, samples::FIG6_DOMAIN_A.to_string());
    let mut s = build_chain(ChainOptions {
        policies,
        ..ChainOptions::default()
    });
    // 20 Mb/s at 10:00 — above Alice's business-hours cap.
    let spec = s.spec("alice", 7, 20 * MBPS, Timestamp::from_hours(10), 3600);
    let rar_id = spec.rar_id;
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    let mut mesh = mesh_from(&mut s, 5);
    // Submit at simulated 10:00 so `Time` is inside business hours.
    mesh.submit_in(SimDuration::from_secs(10 * 3600), "domain-a", rar, cert);
    mesh.run_until_idle();
    let denial = approval_of(&mesh, "domain-a", rar_id).expect_err("capped");
    assert_eq!(denial.domain, "domain-a");
    assert!(denial.reason.contains("10Mb/s"), "{}", denial.reason);
    // Denied at the source: no downstream broker was ever contacted.
    assert_eq!(mesh.messages_to("domain-b", "Request"), 0);
}

#[test]
fn tunnel_subflows_touch_only_end_domains() {
    let mut s = build_chain(ChainOptions::default());
    let spec = s
        .spec("alice", 0, 50 * MBPS, Timestamp(0), 3600)
        .as_tunnel();
    let tunnel_id = spec.rar_id;
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    let alice_dn = s.users["alice"].dn.clone();
    let mut mesh = mesh_from(&mut s, 5);
    // Direct channel A↔C crosses the same wires: 10 ms one-way (derived
    // automatically from the route).
    mesh.submit_in(SimDuration::ZERO, "domain-a", rar, cert);
    mesh.run_until_idle();
    assert!(approval_of(&mesh, "domain-a", tunnel_id).is_ok());

    let transit_before = mesh.node("domain-b").counters().rx;

    // Ten 5 Mb/s sub-flows: all fit in the 50 Mb/s aggregate.
    for flow in 1..=10u64 {
        mesh.tunnel_flow_in(
            SimDuration::ZERO,
            "domain-a",
            tunnel_id,
            flow,
            5 * MBPS,
            alice_dn.clone(),
        );
    }
    mesh.run_until_idle();

    let accepted = mesh
        .completions()
        .iter()
        .filter(|(_, _, c)| matches!(c, Completion::TunnelFlow { accepted: true, .. }))
        .count();
    assert_eq!(accepted, 10);
    // The transit broker processed NO additional messages.
    assert_eq!(mesh.node("domain-b").counters().rx, transit_before);
    // The 11th sub-flow exceeds the aggregate and is refused at the
    // source without any signalling.
    mesh.tunnel_flow_in(
        SimDuration::ZERO,
        "domain-a",
        tunnel_id,
        11,
        5 * MBPS,
        alice_dn,
    );
    mesh.run_until_idle();
    let rejected = mesh
        .completions()
        .iter()
        .filter(|(_, _, c)| {
            matches!(
                c,
                Completion::TunnelFlow {
                    accepted: false,
                    flow: 11,
                    ..
                }
            )
        })
        .count();
    assert_eq!(rejected, 1);
    assert_eq!(
        mesh.node("domain-a").tunnel_remaining_bps(tunnel_id),
        Some(0)
    );
}

#[test]
fn source_based_concurrent_beats_hop_by_hop_latency() {
    // 5 domains, 5 ms per hop.
    let n = 5;
    let mut s = build_chain(ChainOptions {
        domains: n,
        ..ChainOptions::default()
    });
    let domains = s.domains.clone();
    let alice_pk = s.users["alice"].key.public();
    let alice_dn = s.users["alice"].dn.clone();

    // Hop-by-hop run.
    let spec = s.spec("alice", 7, 10 * MBPS, Timestamp(0), 3600);
    let hb_id = spec.rar_id;
    let rar_hb = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();

    // Approach-1 run (all BBs must know Alice).
    let spec2 = s.spec("alice", 8, 10 * MBPS, Timestamp(0), 3600);
    let rar_direct = s.users["alice"].sign_request(spec2, &s.nodes[0]);
    for node in &mut s.nodes {
        node.add_direct_user(alice_dn.clone(), alice_pk);
    }

    let mut mesh = mesh_from(&mut s, 5);
    mesh.submit_in(SimDuration::ZERO, "domain-a", rar_hb, cert);
    mesh.run_until_idle();
    let (t_hb, _) = mesh.reservation_outcome("domain-a", hb_id).unwrap();
    // 4 hops × 5 ms × 2 directions = 40 ms.
    assert_eq!(t_hb, SimTime(40_000_000));

    let t0 = mesh.now();
    let outcome = SourceBasedRun::honest(rar_direct, domains.clone(), AgentMode::Concurrent)
        .execute(&mut mesh);
    assert!(outcome.all_accepted, "{:?}", outcome.replies);
    // Concurrent: bounded by the farthest broker, 4 hops × 5 ms × 2 = 40 ms
    // …but all requests run in parallel, so the whole batch is 40 ms too —
    // while hop-by-hop serializes processing at every hop. With zero
    // processing cost they tie; the advantage appears in the per-domain
    // message pattern (and with nonzero processing time, in EXP-L).
    assert_eq!(outcome.finished - t0, SimDuration::from_millis(40));
    assert_eq!(outcome.replies.len(), n);
}

#[test]
fn source_based_sequential_is_slowest() {
    let n = 4;
    let mut s = build_chain(ChainOptions {
        domains: n,
        ..ChainOptions::default()
    });
    let domains = s.domains.clone();
    let alice_pk = s.users["alice"].key.public();
    let alice_dn = s.users["alice"].dn.clone();
    let spec = s.spec("alice", 7, 10 * MBPS, Timestamp(0), 3600);
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    for node in &mut s.nodes {
        node.add_direct_user(alice_dn.clone(), alice_pk);
    }
    let mut mesh = mesh_from(&mut s, 5);
    let t0 = mesh.now();
    let outcome = SourceBasedRun::honest(rar, domains, AgentMode::Sequential).execute(&mut mesh);
    assert!(outcome.all_accepted);
    // Sequential round trips: 2×(0 + 5 + 10 + 15) ms = 60 ms.
    assert_eq!(outcome.finished - t0, SimDuration::from_millis(60));
}

#[test]
fn misreservation_is_possible_under_source_based_only() {
    // David "reserves" in A and B but skips C (Figure 4's attack, mapped
    // onto the linear chain).
    let mut s = build_chain(ChainOptions::default());
    let domains = s.domains.clone();
    let david_pk = s.users["david"].key.public();
    let david_dn = s.users["david"].dn.clone();
    let spec = s.spec("david", 66, 30 * MBPS, Timestamp(0), 3600);
    let rar = s.users["david"].sign_request(spec, &s.nodes[0]);
    for node in &mut s.nodes {
        node.add_direct_user(david_dn.clone(), david_pk);
    }
    let mut mesh = mesh_from(&mut s, 5);
    let outcome = SourceBasedRun::skipping(
        rar,
        domains,
        ["domain-c".to_string()],
        AgentMode::Concurrent,
    )
    .execute(&mut mesh);
    // Every *contacted* domain accepted — the agent believes it has a
    // reservation, and A and B committed capacity…
    assert!(outcome.all_accepted);
    assert_eq!(outcome.replies.len(), 2);
    // …but domain C never heard about it.
    assert_eq!(
        mesh.node("domain-c").core().available_bw_at(Timestamp(10)),
        1_000_000_000
    );
    assert!(mesh.node("domain-b").core().available_bw_at(Timestamp(10)) < 1_000_000_000);

    // Under hop-by-hop the same incomplete reservation is structurally
    // impossible: the user only talks to A, and forwarding is driven by
    // the brokers themselves. (A fresh request: full grant with all
    // three domains involved, or nothing.)
    let mut s2 = build_chain(ChainOptions::default());
    let spec = s2.spec("david", 67, 30 * MBPS, Timestamp(0), 3600);
    let rar_id = spec.rar_id;
    let rar = s2.users["david"].sign_request(spec, &s2.nodes[0]);
    let cert = s2.users["david"].cert.clone();
    let mut mesh2 = mesh_from(&mut s2, 5);
    mesh2.submit_in(SimDuration::ZERO, "domain-a", rar, cert);
    mesh2.run_until_idle();
    assert!(approval_of(&mesh2, "domain-a", rar_id).is_ok());
    // All three domains hold the reservation.
    for d in ["domain-a", "domain-b", "domain-c"] {
        assert!(
            mesh2.node(d).core().available_bw_at(Timestamp(10)) < 1_000_000_000,
            "{d} must know about the reservation"
        );
    }
}

#[test]
fn stars_coordinator_needs_one_trust_entry_per_broker() {
    let mut s = build_chain(ChainOptions::default());
    let domains = s.domains.clone();
    let rc = ReservationCoordinator::new("domain-a");
    // Each broker trusts the RC — not the individual users.
    for node in &mut s.nodes {
        node.add_direct_user(rc.dn.clone(), rc.key.public());
    }
    let trust_sizes: Vec<usize> = s.nodes.iter().map(|n| n.trust_table_size()).collect();
    let spec = s.spec("alice", 7, 10 * MBPS, Timestamp(0), 3600);
    let source_dn = s.nodes[0].dn().clone();
    let rar = rc.sign_for(spec, source_dn);
    let mut mesh = mesh_from(&mut s, 5);
    let outcome = SourceBasedRun::honest(rar, domains, AgentMode::Concurrent).execute(&mut mesh);
    assert!(outcome.all_accepted, "{:?}", outcome.replies);
    // Trust tables: peers + exactly one RC entry.
    for (i, size) in trust_sizes.iter().enumerate() {
        let peers = if i == 0 || i == 2 { 1 } else { 2 };
        assert_eq!(*size, peers + 1);
    }
}

#[test]
fn unknown_user_is_refused_direct_service() {
    let mut s = build_chain(ChainOptions::default());
    let domains = s.domains.clone();
    let spec = s.spec("alice", 7, 10 * MBPS, Timestamp(0), 3600);
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    // No broker knows Alice directly.
    let mut mesh = mesh_from(&mut s, 5);
    let outcome = SourceBasedRun::honest(rar, domains, AgentMode::Concurrent).execute(&mut mesh);
    assert!(!outcome.all_accepted);
    assert!(outcome
        .replies
        .iter()
        .all(|r| !r.accepted && r.reason.contains("no direct trust")));
}

#[test]
fn billing_chain_recorded_at_source() {
    let mut s = build_chain(ChainOptions::default());
    let spec = s.spec("alice", 7, 10 * MBPS, Timestamp(0), 100);
    let rar_id = spec.rar_id;
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    let mut mesh = mesh_from(&mut s, 5);
    mesh.submit_in(SimDuration::ZERO, "domain-a", rar, cert);
    mesh.run_until_idle();
    assert!(approval_of(&mesh, "domain-a", rar_id).is_ok());
    let invoices = mesh.node("domain-a").core().invoices();
    assert!(!invoices.is_empty());
    // Alice pays the source domain.
    assert_eq!(invoices[0].payer, "Alice");
    assert_eq!(invoices[0].payee, "domain-a");
    // 10 Mb/s × 100 s × 1 µunit/Mb·s along A→B (covering B→C too).
    assert!(invoices[0].amount >= 1000);
}

#[test]
fn concurrent_requests_interleave_correctly() {
    // Many users' requests in flight at once through the same chain.
    let mut s = build_chain(ChainOptions {
        sla_rate_bps: 100 * MBPS,
        ..ChainOptions::default()
    });
    let mut ids = Vec::new();
    let mut rars = Vec::new();
    for i in 0..9 {
        let spec = s.spec("alice", 100 + i, 10 * MBPS, Timestamp(0), 3600);
        ids.push(spec.rar_id);
        rars.push(s.users["alice"].sign_request(spec, &s.nodes[0]));
    }
    let cert = s.users["alice"].cert.clone();
    let mut mesh = mesh_from(&mut s, 5);
    for (i, rar) in rars.into_iter().enumerate() {
        mesh.submit_in(
            SimDuration::from_millis(i as u64),
            "domain-a",
            rar,
            cert.clone(),
        );
    }
    mesh.run_until_idle();
    let granted = ids
        .iter()
        .filter(|id| approval_of(&mesh, "domain-a", **id).is_ok())
        .count();
    // 100 Mb/s SLA fits exactly 10 × 10 Mb/s; all 9 fit.
    assert_eq!(granted, 9);
}

#[test]
fn tunnel_subflow_release_returns_budget() {
    let mut s = build_chain(ChainOptions::default());
    let spec = s
        .spec("alice", 0, 10 * MBPS, Timestamp(0), 3600)
        .as_tunnel();
    let tunnel = spec.rar_id;
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    let alice = s.users["alice"].dn.clone();
    let mut mesh = mesh_from(&mut s, 5);
    mesh.submit_in(SimDuration::ZERO, "domain-a", rar, cert);
    mesh.run_until_idle();

    // Fill the tunnel with two 5 Mb/s flows.
    for flow in [1u64, 2] {
        mesh.tunnel_flow_in(
            SimDuration::ZERO,
            "domain-a",
            tunnel,
            flow,
            5 * MBPS,
            alice.clone(),
        );
    }
    mesh.run_until_idle();
    assert_eq!(mesh.node("domain-a").tunnel_remaining_bps(tunnel), Some(0));
    // A third is refused.
    mesh.tunnel_flow_in(
        SimDuration::ZERO,
        "domain-a",
        tunnel,
        3,
        5 * MBPS,
        alice.clone(),
    );
    mesh.run_until_idle();
    assert!(mesh.completions().iter().any(|(_, _, c)| matches!(
        c,
        Completion::TunnelFlow {
            flow: 3,
            accepted: false,
            ..
        }
    )));

    // Release flow 1: budget returns on both ends; flow 3 now fits.
    let out = mesh
        .node_mut("domain-a")
        .release_tunnel_flow(tunnel, 1, 5 * MBPS)
        .unwrap();
    assert_eq!(out.len(), 1);
    // Deliver the release to the destination via the node API directly.
    let (to, msg) = out.into_iter().next().unwrap();
    mesh.node_mut(&to).recv("domain-a", msg);
    assert_eq!(
        mesh.node("domain-a").tunnel_remaining_bps(tunnel),
        Some(5 * MBPS)
    );
    mesh.tunnel_flow_in(SimDuration::ZERO, "domain-a", tunnel, 4, 5 * MBPS, alice);
    mesh.run_until_idle();
    assert!(mesh.completions().iter().any(|(_, _, c)| matches!(
        c,
        Completion::TunnelFlow {
            flow: 4,
            accepted: true,
            ..
        }
    )));
}

#[test]
fn audit_trail_records_the_request_lifecycle() {
    use qos_core::AuditEvent;

    let mut s = build_chain(ChainOptions::default());
    let spec = s.spec("alice", 7, 10 * MBPS, Timestamp(0), 3600);
    let rar_id = spec.rar_id;
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    for node in &mut s.nodes {
        node.set_audit(true);
    }
    let mut mesh = mesh_from(&mut s, 5);
    mesh.submit_in(SimDuration::ZERO, "domain-a", rar, cert);
    mesh.run_until_idle();
    assert!(approval_of(&mesh, "domain-a", rar_id).is_ok());

    // The source node saw: received → policy → admission → approved.
    let events = mesh.node("domain-a").audit().for_rar(rar_id);
    assert!(events
        .iter()
        .any(|e| matches!(e, AuditEvent::RequestReceived { from, .. } if from == "user")));
    assert!(events
        .iter()
        .any(|e| matches!(e, AuditEvent::PolicyDecision { decision, .. } if decision == "GRANT")));
    assert!(events
        .iter()
        .any(|e| matches!(e, AuditEvent::Admission { ok: true, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, AuditEvent::Approved { .. })));

    // The transit node saw the request arrive from domain-a with depth 2.
    let events = mesh.node("domain-b").audit().for_rar(rar_id);
    assert!(events.iter().any(
        |e| matches!(e, AuditEvent::RequestReceived { from, depth: 2, .. } if from == "domain-a")
    ));

    // Teardown appears as Released on every node.
    mesh.release_in(SimDuration::ZERO, "domain-a", rar_id);
    mesh.run_until_idle();
    for d in ["domain-a", "domain-b", "domain-c"] {
        assert!(
            mesh.node(d)
                .audit()
                .for_rar(rar_id)
                .iter()
                .any(|e| matches!(e, AuditEvent::Released { .. })),
            "{d}"
        );
    }

    // Disabled nodes record nothing.
    let mut s2 = build_chain(ChainOptions::default());
    let spec = s2.spec("alice", 8, 10 * MBPS, Timestamp(0), 3600);
    let rar = s2.users["alice"].sign_request(spec, &s2.nodes[0]);
    let cert = s2.users["alice"].cert.clone();
    let mut mesh2 = mesh_from(&mut s2, 5);
    mesh2.submit_in(SimDuration::ZERO, "domain-a", rar, cert);
    mesh2.run_until_idle();
    assert!(mesh2.node("domain-a").audit().is_empty());
}

#[test]
fn duplicate_rar_id_is_refused() {
    let mut s = build_chain(ChainOptions::default());
    let spec = s.spec("alice", 7, 10 * MBPS, Timestamp(0), 3600);
    let rar_id = spec.rar_id;
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    let mut mesh = mesh_from(&mut s, 5);
    mesh.submit_in(SimDuration::ZERO, "domain-a", rar.clone(), cert.clone());
    mesh.run_until_idle();
    assert!(approval_of(&mesh, "domain-a", rar_id).is_ok());
    // Replaying the same signed request must not double-book.
    mesh.submit_in(SimDuration::ZERO, "domain-a", rar, cert);
    mesh.run_until_idle();
    let denial = approval_of(&mesh, "domain-a", rar_id).expect_err("duplicate refused");
    assert!(denial.reason.contains("duplicate"), "{}", denial.reason);
    assert_eq!(
        mesh.node("domain-a").core().available_bw_at(Timestamp(10)),
        1_000_000_000 - 10 * MBPS,
        "capacity booked exactly once"
    );
}

#[test]
fn stale_approval_is_ignored() {
    use qos_core::messages::{Approval, SignalMessage};
    use qos_crypto::{DistinguishedName, KeyPair};
    use qos_policy::AttributeSet;

    let mut s = build_chain(ChainOptions::default());
    let dest_cert = s.nodes[2].cert().clone();
    let mut mesh = mesh_from(&mut s, 5);
    // An approval for a request domain-b never saw.
    let bogus = Approval::originate(
        RarId(999),
        dest_cert,
        "domain-c",
        DistinguishedName::broker("domain-c"),
        AttributeSet::new(),
        &KeyPair::from_seed(b"bb-domain-c"),
    );
    let out = mesh
        .node_mut("domain-b")
        .recv("domain-c", SignalMessage::Approve(bogus));
    assert!(out.is_empty(), "stale approvals must not propagate");
}

#[test]
fn tunnel_flow_to_unknown_tunnel_is_refused() {
    let mut s = build_chain(ChainOptions::default());
    let alice = s.users["alice"].dn.clone();
    let mut mesh = mesh_from(&mut s, 5);
    let err = mesh
        .node_mut("domain-a")
        .request_tunnel_flow(RarId(424242), 1, MBPS, alice)
        .unwrap_err();
    assert!(err.to_string().contains("unknown tunnel"), "{err}");
}

#[test]
fn batched_ingress_matches_serial_processing() {
    use qos_core::SignalMessage;

    // Two identical worlds: one drives the batch entry points
    // (`submit_batch` / `recv_requests`), the other feeds the same burst
    // one message at a time. Outputs, completions, and counters must be
    // indistinguishable — including the denial for a submission whose
    // request is signed by the wrong key.
    let mut serial = build_chain(ChainOptions::default());
    let mut batched = build_chain(ChainOptions::default());

    let burst = |s: &mut Scenario| {
        let mut items = Vec::new();
        for i in 0..4u64 {
            let spec = s.spec("alice", 100 + i, 5 * MBPS, Timestamp(0), 600);
            // The third request claims to be alice's but is signed by
            // david: the certificate checks out, the request signature
            // does not.
            let signer = if i == 2 { "david" } else { "alice" };
            let rar = s.users[signer].sign_request(spec, &s.nodes[0]);
            items.push((rar, s.users["alice"].cert.clone()));
        }
        items
    };

    let serial_out: Vec<_> = burst(&mut serial)
        .into_iter()
        .flat_map(|(rar, cert)| serial.nodes[0].submit(rar, &cert))
        .collect();
    let batch = burst(&mut batched);
    let batched_out = batched.nodes[0].submit_batch(batch);
    assert_eq!(serial_out, batched_out);
    assert_eq!(serial_out.len(), 3, "three forwarded, one denied locally");
    assert_eq!(
        serial.nodes[0].take_completions(),
        batched.nodes[0].take_completions()
    );
    assert_eq!(serial.nodes[0].counters(), batched.nodes[0].counters());

    // Forward the surviving requests to the next hop, again batched
    // versus serial, plus one request from an unpinned peer (denied).
    let reqs = |out: &[(qos_core::PeerId, SignalMessage)]| -> Vec<(String, qos_core::SignedRar)> {
        let rar_of = |m: &SignalMessage| match m {
            SignalMessage::Request(r) => r.clone(),
            other => panic!("unexpected {other:?}"),
        };
        out.iter()
            .map(|(_, m)| ("domain-a".to_string(), rar_of(m)))
            .chain(std::iter::once(("nowhere".to_string(), rar_of(&out[0].1))))
            .collect()
    };
    let serial_fwd = reqs(&serial_out);
    let batched_fwd = reqs(&batched_out);
    let serial_b_out: Vec<_> = serial_fwd
        .into_iter()
        .flat_map(|(from, rar)| serial.nodes[1].recv(&from, SignalMessage::Request(rar)))
        .collect();
    let batched_b_out = batched.nodes[1].recv_requests(batched_fwd);
    assert_eq!(serial_b_out, batched_b_out);
    assert!(
        serial_b_out
            .iter()
            .any(|(to, m)| to.as_ref() == "nowhere" && matches!(m, SignalMessage::Deny(_))),
        "unpinned peer gets a denial"
    );
    assert_eq!(serial.nodes[1].counters(), batched.nodes[1].counters());
}

#[test]
fn warm_replay_returns_identical_reply_without_decoding() {
    use qos_core::envelope_ref::EnvelopeRef;
    use qos_core::messages::SignalMessage;

    let mut s = build_chain(ChainOptions::default()); // a → b → c
    let spec = s.spec("alice", 7, 10 * MBPS, Timestamp(0), 3600);
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();

    // Source wraps and forwards to b.
    let out_a = s.nodes[0].submit_batch(vec![(rar, cert)]);
    assert_eq!(out_a.len(), 1);
    let (to_b, fwd_a) = &out_a[0];
    assert_eq!(to_b.as_ref(), "domain-b");
    let wire_a = qos_wire::to_bytes(fwd_a);

    // Transit b forwards to c (cold path — populates the reply cache).
    let out_b = s.nodes[1].recv("domain-a", fwd_a.clone());
    assert_eq!(out_b.len(), 1);
    let (to_c, fwd_b) = &out_b[0];
    assert_eq!(to_c.as_ref(), "domain-c");
    let wire_b = qos_wire::to_bytes(fwd_b);

    // Destination c approves (cold path — populates the reply cache).
    let out_c = s.nodes[2].recv("domain-b", fwd_b.clone());
    assert_eq!(out_c.len(), 1);
    let (back, approve) = &out_c[0];
    assert_eq!(back.as_ref(), "domain-b");
    assert!(matches!(approve, SignalMessage::Approve(_)));

    // Byte-identical retries replay from the cache: same destination,
    // byte-identical reply, zero owned decoding.
    let env_b = EnvelopeRef::parse(&wire_a).unwrap().expect("request");
    let mut scratch = Vec::new();
    let to = s.nodes[1]
        .revalidate_request("domain-a", &env_b, &mut scratch)
        .expect("transit forward replays");
    assert_eq!(to.as_ref(), "domain-c");
    assert_eq!(scratch, wire_b, "replayed forward is byte-identical");

    let env_c = EnvelopeRef::parse(&wire_b).unwrap().expect("request");
    scratch.clear();
    let to = s.nodes[2]
        .revalidate_request("domain-b", &env_c, &mut scratch)
        .expect("destination approve replays");
    assert_eq!(to.as_ref(), "domain-b");
    assert_eq!(scratch, qos_wire::to_bytes(approve));

    // Wrong peer or unknown envelope: miss, caller takes the slow path.
    scratch.clear();
    assert!(s.nodes[2]
        .revalidate_request("domain-x", &env_c, &mut scratch)
        .is_none());
    assert!(scratch.is_empty());

    // Capacity 0 disables the cache entirely.
    s.nodes[1].set_reply_cache_capacity(0);
    assert!(s.nodes[1]
        .revalidate_request("domain-a", &env_b, &mut scratch)
        .is_none());
    let (hits, misses, _) = s.nodes[2].reply_cache_stats();
    assert!(hits >= 1 && misses >= 1);
}
