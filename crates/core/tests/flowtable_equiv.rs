//! §D14 equivalence: the FlowTable-backed tunnel sub-flow fast path
//! against a naive `HashMap` reference model of the pre-§D14 slow path.
//!
//! The model replicates the old semantics exactly — including the
//! deliberate quirks the fast path preserves for verdict equivalence
//! (a duplicate admit replaces the record but adds its full rate to the
//! committed aggregate; exhaustion is checked before the rate cap;
//! releases subtract the caller-supplied rate, saturating). Arbitrary
//! interleavings of admit / release / expiry must produce identical
//! accept/deny verdicts, identical denial codes, and identical committed
//! aggregate bps on the source broker.

use proptest::prelude::*;
use proptest::test_runner::Config as ProptestConfig;
use qos_core::drive::Mesh;
use qos_core::node::Completion;
use qos_core::scenario::{build_chain, ChainOptions};
use qos_core::{DenialCode, RarId, SignalMessage};
use qos_crypto::{DistinguishedName, Timestamp};
use qos_net::SimDuration;
use std::collections::HashMap;

const AGGREGATE: u64 = 8_000;

/// One step of the interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Request + deliver + reply round trip for one sub-flow.
    Admit {
        flow: u64,
        rate: u64,
        hold: Option<u64>,
    },
    /// Source-initiated release with a caller-supplied rate (the legacy
    /// contract trusts the caller, saturating at zero).
    Release { flow: u64, rate: u64 },
    /// Advance wall time and run the expiry sweep.
    Expire { advance: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored `prop_oneof!` is unweighted; repeating the admit and
    // release arms approximates a 4:2:1 admit/release/expire mix.
    let admit = || {
        (0u64..8, 1u64..2_500, proptest::option::of(0u64..24))
            .prop_map(|(flow, rate, hold)| Op::Admit { flow, rate, hold })
    };
    let release = || (0u64..8, 1u64..2_500).prop_map(|(flow, rate)| Op::Release { flow, rate });
    prop_oneof![
        admit(),
        admit(),
        admit(),
        admit(),
        release(),
        release(),
        (1u64..6).prop_map(|advance| Op::Expire { advance }),
    ]
}

/// What one op produced, in comparable form.
#[derive(Debug, Clone, PartialEq)]
enum Verdict {
    SourceDeny(DenialCode),
    DestReply { accepted: bool, reason: DenialCode },
    Released { existed: bool },
    Expired { flows: Vec<u64> },
}

/// The pre-§D14 reference: plain HashMaps, linear sums, the exact quirk
/// set of the old path.
#[derive(Default)]
struct Model {
    /// Source side: committed + in-flight bps and held flows
    /// `flow → (rate, expiry)`.
    src_allocated: u64,
    src_held: HashMap<u64, (u64, Option<u64>)>,
    /// Destination side.
    dst_allocated: u64,
    dst_flows: HashMap<u64, u64>,
    now: u64,
}

impl Model {
    fn admit(&mut self, flow: u64, rate: u64, hold: Option<u64>) -> Verdict {
        // Source check (pending is always empty here: the driver
        // completes each round trip before the next op).
        if self.src_allocated + rate > AGGREGATE {
            return Verdict::SourceDeny(DenialCode::SourceExhausted);
        }
        // Destination: exhaustion first, then the rate cap; duplicate
        // admits replace the record but still add their full rate.
        if self.dst_allocated + rate > AGGREGATE {
            return Verdict::DestReply {
                accepted: false,
                reason: DenialCode::Exhausted,
            };
        }
        self.dst_allocated += rate;
        self.dst_flows.insert(flow, rate);
        // Source applies the accepted reply the same way.
        self.src_allocated += rate;
        self.src_held.insert(flow, (rate, hold));
        Verdict::DestReply {
            accepted: true,
            reason: DenialCode::None,
        }
    }

    fn release(&mut self, flow: u64, rate: u64) -> Verdict {
        self.src_allocated = self.src_allocated.saturating_sub(rate);
        let existed = self.src_held.remove(&flow).is_some();
        if let Some(dst_rate) = self.dst_flows.remove(&flow) {
            self.dst_allocated = self.dst_allocated.saturating_sub(dst_rate);
        }
        Verdict::Released { existed }
    }

    fn expire(&mut self, to: u64) -> Verdict {
        if to <= self.now {
            return Verdict::Expired { flows: Vec::new() };
        }
        self.now = to;
        let mut due: Vec<u64> = self
            .src_held
            .iter()
            .filter(|(_, (_, hold))| hold.is_some_and(|h| h <= to))
            .map(|(f, _)| *f)
            .collect();
        due.sort_unstable();
        for f in &due {
            let (rate, _) = self.src_held.remove(f).expect("listed as due");
            self.src_allocated = self.src_allocated.saturating_sub(rate);
            if let Some(dst_rate) = self.dst_flows.remove(f) {
                self.dst_allocated = self.dst_allocated.saturating_sub(dst_rate);
            }
        }
        Verdict::Expired { flows: due }
    }
}

/// Build a 2-domain world with one established tunnel and return the
/// driver pieces.
fn tunnel_world() -> (Mesh, RarId, DistinguishedName) {
    let mut s = build_chain(ChainOptions {
        domains: 2,
        sla_rate_bps: 1_000_000,
        local_capacity_bps: 10_000_000,
        ..ChainOptions::default()
    });
    let spec = s
        .spec("alice", 0, AGGREGATE, Timestamp(0), 1_000_000)
        .as_tunnel();
    let tunnel = spec.rar_id;
    let rar = s.users["alice"].sign_request(spec, &s.nodes[0]);
    let cert = s.users["alice"].cert.clone();
    let alice = s.users["alice"].dn.clone();
    let mut mesh = Mesh::new();
    for node in s.nodes.drain(..) {
        mesh.add_node(node);
    }
    mesh.submit_in(SimDuration::ZERO, "domain-a", rar, cert);
    mesh.run_until_idle();
    assert!(
        matches!(
            mesh.reservation_outcome("domain-a", tunnel),
            Some((_, Completion::Reservation { result: Ok(_), .. }))
        ),
        "tunnel aggregate must establish"
    );
    (mesh, tunnel, alice)
}

/// Drive one op against the real brokers, completing every round trip.
fn run_real(mesh: &mut Mesh, tunnel: RarId, alice: &DistinguishedName, op: &Op) -> Verdict {
    match *op {
        Op::Admit { flow, rate, hold } => {
            let out = mesh.node_mut("domain-a").request_tunnel_flow_held(
                tunnel,
                flow,
                rate,
                hold.map(Timestamp),
                alice.clone(),
            );
            let out = match out {
                Err(code) => return Verdict::SourceDeny(code),
                Ok(out) => out,
            };
            for (_, msg) in out {
                let SignalMessage::TunnelFlow(req) = msg else {
                    panic!("source emitted a non-tunnel-flow message");
                };
                let replies = mesh
                    .node_mut("domain-b")
                    .recv_tunnel_flows(vec![("domain-a".to_string(), req)]);
                for (to, reply) in replies {
                    mesh.node_mut(&to).recv("domain-b", reply);
                }
            }
            let completion = mesh
                .node_mut("domain-a")
                .take_completions()
                .into_iter()
                .rev()
                .find_map(|c| match c {
                    Completion::TunnelFlow {
                        accepted, reason, ..
                    } => Some((accepted, reason)),
                    _ => None,
                })
                .expect("reply produces a completion");
            Verdict::DestReply {
                accepted: completion.0,
                reason: completion.1,
            }
        }
        Op::Release { flow, rate } => {
            let (records_before, _) = mesh.node("domain-a").held_flow_stats();
            let out = mesh
                .node_mut("domain-a")
                .release_tunnel_flow(tunnel, flow, rate)
                .expect("tunnel exists");
            for (_, msg) in out {
                mesh.node_mut("domain-b").recv("domain-a", msg);
            }
            let (records_after, _) = mesh.node("domain-a").held_flow_stats();
            Verdict::Released {
                existed: records_after < records_before,
            }
        }
        Op::Expire { advance } => {
            let tick = NEXT_TICK.with(|t| {
                let v = t.get() + advance;
                t.set(v);
                v
            });
            let out = mesh
                .node_mut("domain-a")
                .expire_tunnel_flows(Timestamp(tick));
            let mut flows: Vec<u64> = out
                .iter()
                .map(|(_, msg)| match msg {
                    SignalMessage::TunnelFlowRelease(r) => r.flow,
                    other => panic!("expiry emitted {other:?}"),
                })
                .collect();
            for (_, msg) in out {
                mesh.node_mut("domain-b").recv("domain-a", msg);
            }
            flows.sort_unstable();
            Verdict::Expired { flows }
        }
    }
}

thread_local! {
    static NEXT_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_path_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let (mut mesh, tunnel, alice) = tunnel_world();
        let mut model = Model::default();
        NEXT_TICK.with(|t| t.set(0));
        for (i, op) in ops.iter().enumerate() {
            let real = run_real(&mut mesh, tunnel, &alice, op);
            let expected = match *op {
                Op::Admit { flow, rate, hold } => model.admit(flow, rate, hold),
                Op::Release { flow, rate } => model.release(flow, rate),
                Op::Expire { advance } => {
                    let to = NEXT_TICK.with(|t| t.get());
                    // run_real advanced the shared tick before sweeping.
                    let _ = advance;
                    model.expire(to)
                }
            };
            prop_assert_eq!(&real, &expected, "op {} = {:?} diverged", i, op);
            // Committed aggregate must agree exactly after every op.
            let (_, _, _, agg, allocated) = mesh
                .node_mut("domain-a")
                .tunnel_info(tunnel)
                .expect("tunnel exists");
            prop_assert_eq!(agg, AGGREGATE);
            prop_assert_eq!(
                allocated, model.src_allocated,
                "committed bps diverged after op {} = {:?}", i, op
            );
        }
    }
}

/// Timer-wheel expiry ordering at the node level, driven by a manual
/// clock: releases fire exactly at their hold ticks, in tick order,
/// never early, and lazy cancellation skips released or re-held flows.
#[test]
fn expiry_fires_in_hold_order_under_manual_clock() {
    let (mut mesh, tunnel, alice) = tunnel_world();
    let clock = mesh.install_sim_clock();

    let admit = |mesh: &mut Mesh, flow: u64, hold: Option<u64>| {
        let out = mesh
            .node_mut("domain-a")
            .request_tunnel_flow_held(tunnel, flow, 10, hold.map(Timestamp), alice.clone())
            .expect("within aggregate");
        for (_, msg) in out {
            let replies = mesh
                .node_mut("domain-b")
                .recv_tunnel_flows(vec![msg_flow(msg)]);
            for (to, reply) in replies {
                mesh.node_mut(&to).recv("domain-b", reply);
            }
        }
        assert!(mesh
            .node_mut("domain-a")
            .take_completions()
            .iter()
            .any(|c| matches!(c, Completion::TunnelFlow { accepted: true, .. })));
    };
    fn msg_flow(msg: SignalMessage) -> (String, qos_core::messages::TunnelFlowRequest) {
        match msg {
            SignalMessage::TunnelFlow(req) => ("domain-a".to_string(), req),
            other => panic!("expected a tunnel flow request, got {other:?}"),
        }
    }
    let expire = |mesh: &mut Mesh, clock: &qos_telemetry::ManualClock, at: u64| -> Vec<u64> {
        clock.set_ns(at * 1_000_000_000);
        mesh.node_mut("domain-a")
            .expire_tunnel_flows(Timestamp(at))
            .into_iter()
            .map(|(_, msg)| match msg {
                SignalMessage::TunnelFlowRelease(r) => r.flow,
                other => panic!("expiry emitted {other:?}"),
            })
            .collect()
    };

    admit(&mut mesh, 1, Some(5));
    admit(&mut mesh, 2, Some(3));
    admit(&mut mesh, 3, Some(3));
    admit(&mut mesh, 4, None); // standing: never expires
    admit(&mut mesh, 5, Some(9));
    admit(&mut mesh, 6, Some(4));

    // Flow 6 is released by hand, then re-admitted with a longer hold:
    // the stale wheel entry at tick 4 must be skipped (lazy cancel).
    let out = mesh
        .node_mut("domain-a")
        .release_tunnel_flow(tunnel, 6, 10)
        .unwrap();
    assert_eq!(out.len(), 1);
    admit(&mut mesh, 6, Some(7));

    assert_eq!(
        expire(&mut mesh, &clock, 2),
        Vec::<u64>::new(),
        "nothing due before 3"
    );
    let mut at3 = expire(&mut mesh, &clock, 3);
    at3.sort_unstable();
    assert_eq!(at3, vec![2, 3], "both tick-3 holds fire together");
    assert_eq!(
        expire(&mut mesh, &clock, 4),
        Vec::<u64>::new(),
        "flow 6's stale entry skipped"
    );
    assert_eq!(
        expire(&mut mesh, &clock, 6),
        vec![1],
        "flow 1 fires at its tick"
    );
    assert_eq!(
        expire(&mut mesh, &clock, 7),
        vec![6],
        "flow 6 fires at its re-held tick"
    );
    assert_eq!(
        expire(&mut mesh, &clock, 1_000),
        vec![5],
        "flow 5 fires late via cascade"
    );
    // The standing flow stays held and committed.
    let (_, _, _, _, allocated) = mesh.node_mut("domain-a").tunnel_info(tunnel).unwrap();
    assert_eq!(allocated, 10, "only the never-expiring flow remains");
}
