//! Property tests for the signalling core: envelope integrity under
//! byte-level fuzzing, and protocol-level conservation invariants.

use proptest::prelude::*;
use proptest::test_runner::Config as ProptestConfig;
use qos_broker::Interval;
use qos_core::envelope::SignedRar;
use qos_core::node::Completion;
use qos_core::scenario::{build_chain, ChainOptions};
use qos_core::trust::{verify_rar, KeySource};
use qos_core::{RarId, ResSpec};
use qos_crypto::{
    CertificateAuthority, DistinguishedName, KeyPair, Timestamp, TrustPolicy, Validity,
};
use qos_net::SimDuration;
use qos_policy::AttributeSet;

const MBPS: u64 = 1_000_000;

fn build_envelope(hops: usize, rate: u64) -> (SignedRar, Vec<KeyPair>) {
    let mut ca = CertificateAuthority::new(
        DistinguishedName::authority("CA"),
        KeyPair::from_seed(b"ca"),
    );
    let user = KeyPair::from_seed(b"alice");
    let user_cert = ca.issue_identity(
        DistinguishedName::user("Alice", "ANL"),
        user.public(),
        Validity::unbounded(),
    );
    let keys: Vec<KeyPair> = (0..hops)
        .map(|i| KeyPair::from_seed(format!("bb-{i}").as_bytes()))
        .collect();
    let spec = ResSpec::new(
        RarId(1),
        DistinguishedName::user("Alice", "ANL"),
        "domain-0",
        &format!("domain-{hops}"),
        7,
        rate,
        Interval::starting_at(Timestamp(0), 3600),
    );
    let mut rar =
        SignedRar::user_request(spec, DistinguishedName::broker("domain-0"), vec![], &user);
    let mut upstream = user_cert;
    for (i, key) in keys.iter().enumerate() {
        rar = SignedRar::wrap(
            rar,
            upstream,
            Some(DistinguishedName::broker(&format!("domain-{}", i + 1))),
            vec![],
            AttributeSet::new(),
            DistinguishedName::broker(&format!("domain-{i}")),
            key,
        );
        upstream = ca.issue_identity(
            DistinguishedName::broker(&format!("domain-{i}")),
            key.public(),
            Validity::unbounded(),
        );
    }
    (rar, keys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any byte of a serialized envelope either breaks decoding
    /// or breaks the destination's verification — no silent acceptance.
    #[test]
    fn envelope_bitflip_never_verifies(
        hops in 1usize..4,
        rate in 1u64..1_000_000_000,
        flip in any::<prop::sample::Index>(),
    ) {
        let (rar, keys) = build_envelope(hops, rate);
        let mut bytes = qos_wire::to_bytes(&rar);
        let idx = flip.index(bytes.len());
        bytes[idx] ^= 0x5A;
        let self_dn = DistinguishedName::broker(&format!("domain-{hops}"));
        if let Ok(mutated) = qos_wire::from_bytes::<SignedRar>(&bytes) {
            if mutated == rar {
                return Ok(()); // flip landed on a redundant encoding byte? impossible, but safe
            }
            let out = verify_rar(
                &mutated,
                keys[hops - 1].public(),
                &self_dn,
                TrustPolicy { max_chain_depth: 64 },
                Timestamp(0),
                &KeySource::Introducers,
            );
            prop_assert!(out.is_err(), "mutated envelope verified at byte {idx}");
        }
    }

    /// The genuine envelope always verifies (sanity for the fuzz above).
    #[test]
    fn genuine_envelope_always_verifies(hops in 1usize..5, rate in 1u64..1_000_000_000) {
        let (rar, keys) = build_envelope(hops, rate);
        let self_dn = DistinguishedName::broker(&format!("domain-{hops}"));
        let verified = verify_rar(
            &rar,
            keys[hops - 1].public(),
            &self_dn,
            TrustPolicy { max_chain_depth: 64 },
            Timestamp(0),
            &KeySource::Introducers,
        ).unwrap();
        prop_assert_eq!(verified.res_spec.rate_bps, rate);
        prop_assert_eq!(verified.signer_path.len(), hops + 1);
    }

    /// Encode-once cache transparency: after any mix of wraps and wire
    /// round-trips (plain or shared-buffer decode), every layer's cached
    /// canonical bytes stay byte-identical to a fresh encoding of that
    /// layer, and the whole envelope re-encodes to its exact wire form.
    #[test]
    fn cached_layer_bytes_match_fresh_encoding(
        hops in 1usize..5,
        rate in 1u64..1_000_000_000,
        path in 0u8..3,
    ) {
        let (built, _) = build_envelope(hops, rate);
        let wire = qos_wire::to_bytes(&built);
        let rar = match path {
            0 => built, // as signed, caches prefilled at wrap time
            1 => qos_wire::from_bytes::<SignedRar>(&wire).unwrap(),
            _ => {
                let shared: std::sync::Arc<[u8]> = wire.clone().into();
                qos_wire::from_bytes_shared::<SignedRar>(&shared).unwrap()
            }
        };
        let mut cur = &rar;
        loop {
            let fresh = qos_wire::to_bytes(&cur.layer);
            prop_assert_eq!(
                cur.layer_bytes(),
                fresh.as_slice(),
                "stale canonical-bytes cache"
            );
            match &cur.layer {
                qos_core::RarLayer::Broker { inner, .. } => cur = inner,
                qos_core::RarLayer::User { .. } => break,
            }
        }
        prop_assert_eq!(qos_wire::to_bytes(&rar), wire);
    }

    /// Protocol conservation: however many requests race through the
    /// chain, the sum of committed bandwidth in each domain equals the
    /// sum of granted requests, and no domain ends up over its SLA.
    #[test]
    fn grants_match_commitments(
        rates in proptest::collection::vec(1u64..40, 1..12),
    ) {
        let sla = 100 * MBPS;
        let mut s = build_chain(ChainOptions {
            sla_rate_bps: sla,
            ..ChainOptions::default()
        });
        let mut rars = Vec::new();
        for (i, r) in rates.iter().enumerate() {
            let spec = s.spec("alice", 100 + i as u64, r * MBPS, Timestamp(0), 3600);
            rars.push((spec.rar_id, r * MBPS, s.users["alice"].sign_request(spec, &s.nodes[0])));
        }
        let cert = s.users["alice"].cert.clone();
        let mut mesh = qos_core::drive::Mesh::new();
        let domains = s.domains.clone();
        for node in s.nodes.drain(..) {
            mesh.add_node(node);
        }
        for w in domains.windows(2) {
            mesh.set_latency(&w[0], &w[1], SimDuration::from_millis(1));
        }
        for (_, _, rar) in &rars {
            mesh.submit_in(SimDuration::ZERO, "domain-a", rar.clone(), cert.clone());
        }
        mesh.run_until_idle();

        let mut granted_sum = 0u64;
        for (id, rate, _) in &rars {
            if let Some((_, Completion::Reservation { result: Ok(_), .. })) =
                mesh.reservation_outcome("domain-a", *id)
            {
                granted_sum += rate;
            }
        }
        prop_assert!(granted_sum <= sla, "SLA oversubscribed");
        for d in &domains {
            let committed = 1_000_000_000 - mesh.node(d).core().available_bw_at(Timestamp(10));
            prop_assert_eq!(
                committed,
                granted_sum,
                "domain {} committed {} but grants total {}",
                d, committed, granted_sum
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Shard routing is total (always lands in `0..n`) and stable
    /// (a pure function of the key) for any shard count — the property
    /// the sharded runtime's per-reservation ordering rests on: every
    /// message of one reservation reaches the same shard, under any
    /// `--shards N`.
    #[test]
    fn shard_routing_is_stable_and_total(key in any::<u64>(), n in 1usize..=64) {
        let s = qos_core::shard_of(key, n);
        prop_assert!(s < n, "key {} escaped {} shards", key, n);
        prop_assert_eq!(s, qos_core::shard_of(key, n), "routing must be deterministic");
        // Shard counts are independent: changing n never panics and
        // stays in range (resharding is safe).
        for m in 1..=8usize {
            prop_assert!(qos_core::shard_of(key, m) < m);
        }
    }
}
