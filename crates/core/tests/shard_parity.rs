//! Transparency of the sharded runtime: a [`ShardedNode`] with one
//! shard must be indistinguishable from the plain [`BbNode`] it wraps —
//! same verdicts, same committed bandwidth, and counter-for-counter
//! identical telemetry on a seeded fig2-style run.

use crossbeam::channel::{unbounded, Receiver, Sender};
use qos_core::node::{BbNode, Completion};
use qos_core::scenario::{build_chain, ChainOptions};
use qos_core::{ShardSink, ShardedNode, SignalMessage};
use qos_crypto::{Certificate, Timestamp};
use qos_telemetry::{render_prometheus, Registry, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

const MBPS: u64 = 1_000_000;

/// An in-flight delivery: (from, to, message).
type Delivery = (String, String, SignalMessage);
/// 20 Mb/s SLA and six 5 Mb/s requests: four grants, two denials, so
/// the comparison covers holds, commits, rollback, and denial counters.
const SLA_BPS: u64 = 20 * MBPS;
const REQUESTS: u64 = 6;

fn reset_global_caches() {
    // Both drives must start from the same (cold) global cache state;
    // otherwise the second run's memo hits could skew timing-independent
    // counters resolved through the shared caches.
    qos_crypto::vcache::clear();
    qos_core::trust::clear_rar_memo();
}

/// The seeded scenario plus the signed burst, identical for both drives.
fn scenario() -> (Vec<BbNode>, Vec<qos_core::envelope::SignedRar>, Certificate) {
    let mut s = build_chain(ChainOptions {
        sla_rate_bps: SLA_BPS,
        ..ChainOptions::default()
    });
    let mut rars = Vec::new();
    for i in 0..REQUESTS {
        let spec = s.spec("alice", 1000 + i, 5 * MBPS, Timestamp(0), 3600);
        rars.push(s.users["alice"].sign_request(spec, &s.nodes[0]));
    }
    let cert = s.users["alice"].cert.clone();
    (std::mem::take(&mut s.nodes), rars, cert)
}

fn outcome_counts(completions: &[Completion]) -> (usize, usize) {
    let granted = completions
        .iter()
        .filter(|c| matches!(c, Completion::Reservation { result: Ok(_), .. }))
        .count();
    (granted, completions.len() - granted)
}

/// Drive the burst through plain `BbNode`s with a synchronous FIFO
/// pump, mirroring the sharded worker's call shape (`submit_batch` for
/// the burst, `recv_requests` for requests, `recv` otherwise).
fn drive_plain(registry: &Arc<Registry>) -> (Vec<Completion>, HashMap<String, BbNode>) {
    reset_global_caches();
    let (nodes, rars, cert) = scenario();
    let telemetry = Telemetry::with_registry(Arc::clone(registry));
    let mut nodes: HashMap<String, BbNode> = nodes
        .into_iter()
        .map(|mut n| {
            n.install_telemetry(telemetry.clone());
            (n.domain().to_string(), n)
        })
        .collect();

    let mut completions = Vec::new();
    let mut queue: VecDeque<(String, String, SignalMessage)> = VecDeque::new();
    let route = |node: &mut BbNode,
                 out: Vec<(qos_core::PeerId, SignalMessage)>,
                 queue: &mut VecDeque<(String, String, SignalMessage)>,
                 completions: &mut Vec<Completion>| {
        let from = node.domain().to_string();
        for (to, msg) in out {
            if !to.starts_with("user:") {
                queue.push_back((from.clone(), to.to_string(), msg));
            }
        }
        completions.extend(node.take_completions());
    };

    let source = nodes.get_mut("domain-a").expect("source domain");
    let out = source.submit_batch(rars.into_iter().map(|r| (r, cert.clone())).collect());
    route(source, out, &mut queue, &mut completions);

    while let Some((from, to, msg)) = queue.pop_front() {
        let node = nodes.get_mut(&to).expect("routed to a known domain");
        let out = match msg {
            SignalMessage::Request(rar) => node.recv_requests(vec![(from, rar)]),
            SignalMessage::TunnelFlow(t) => node.recv_tunnel_flows(vec![(from, t)]),
            other => node.recv(&from, other),
        };
        route(node, out, &mut queue, &mut completions);
    }
    (completions, nodes)
}

/// Fabric for the sharded drive: deliveries and completions land on
/// channels the test pump forwards between domains (a sink must not
/// re-enter dispatch, so routing happens outside the worker).
struct ChanSink {
    domain: String,
    deliveries: Sender<(String, String, SignalMessage)>,
    completions: Sender<Completion>,
}

impl ShardSink for ChanSink {
    fn deliver(&self, to: &str, msg: SignalMessage) {
        if !to.starts_with("user:") {
            let _ = self
                .deliveries
                .send((self.domain.clone(), to.to_string(), msg));
        }
    }
    fn complete(&self, completion: Completion) {
        let _ = self.completions.send(completion);
    }
}

/// The same burst through one-shard `ShardedNode`s.
fn drive_sharded(registry: &Arc<Registry>) -> (Vec<Completion>, HashMap<String, BbNode>) {
    reset_global_caches();
    let (nodes, rars, cert) = scenario();
    let telemetry = Telemetry::with_registry(Arc::clone(registry));
    let (delivery_tx, delivery_rx): (Sender<Delivery>, Receiver<Delivery>) = unbounded();
    let (completion_tx, completion_rx) = unbounded();

    let sharded: HashMap<String, ShardedNode> = nodes
        .into_iter()
        .map(|mut n| {
            n.install_telemetry(telemetry.clone());
            let domain = n.domain().to_string();
            let sink = Arc::new(ChanSink {
                domain: domain.clone(),
                deliveries: delivery_tx.clone(),
                completions: completion_tx.clone(),
            });
            (domain, ShardedNode::new(n, 1, sink, &telemetry))
        })
        .collect();

    sharded["domain-a"].dispatch_submit_all(rars.into_iter().map(|r| (r, cert.clone())).collect());

    let mut completions = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while completions.len() < REQUESTS as usize {
        assert!(
            std::time::Instant::now() < deadline,
            "sharded drive stalled"
        );
        while let Ok(c) = completion_rx.try_recv() {
            completions.push(c);
        }
        if let Ok((from, to, msg)) = delivery_rx.recv_timeout(Duration::from_millis(10)) {
            sharded[&to].dispatch_peer(from, msg, 0);
        }
    }

    let nodes = sharded
        .into_iter()
        .map(|(d, s)| (d, s.shutdown()))
        .collect();
    (completions, nodes)
}

/// Counter sample lines of `render`, grouped per family, skipping the
/// timing histograms and depth gauges (their values are wall-clock- and
/// scheduling-dependent; admission accounting is not).
fn counter_families(render: &str) -> HashMap<String, Vec<String>> {
    let mut families = HashMap::new();
    let mut current: Option<String> = None;
    for line in render.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_default().to_string();
            current = (parts.next() == Some("counter")).then_some(name);
        } else if line.starts_with("# HELP") {
            continue;
        } else if let Some(name) = &current {
            if line.starts_with(name.as_str()) {
                families
                    .entry(name.clone())
                    .or_insert_with(Vec::new)
                    .push(line.to_string());
            }
        }
    }
    families
}

#[test]
fn sharded_n1_telemetry_matches_plain_node() {
    let plain_reg = Registry::new();
    let (plain_completions, plain_nodes) = drive_plain(&plain_reg);
    let sharded_reg = Registry::new();
    let (sharded_completions, sharded_nodes) = drive_sharded(&sharded_reg);

    // Same verdicts…
    assert_eq!(
        outcome_counts(&plain_completions),
        outcome_counts(&sharded_completions),
        "verdict mix diverged"
    );
    assert_eq!(
        outcome_counts(&plain_completions).0,
        4,
        "4 of 6 fit the SLA"
    );

    // …same committed bandwidth in every domain…
    for (domain, plain) in &plain_nodes {
        let t = Timestamp(10);
        assert_eq!(
            plain.core().available_bw_at(t),
            sharded_nodes[domain].core().available_bw_at(t),
            "committed bandwidth diverged at {domain}"
        );
    }

    // …and counter-for-counter identical telemetry: every counter
    // family the plain run produced renders byte-identically from the
    // sharded run (which may add shard-runtime families on top).
    let plain_counters = counter_families(&render_prometheus(&plain_reg));
    let sharded_counters = counter_families(&render_prometheus(&sharded_reg));
    assert!(
        !plain_counters.is_empty(),
        "plain run registered no counters — telemetry not installed?"
    );
    for (family, plain_lines) in &plain_counters {
        let sharded_lines = sharded_counters
            .get(family)
            .unwrap_or_else(|| panic!("family {family} missing from sharded run"));
        assert_eq!(
            plain_lines, sharded_lines,
            "counter family {family} diverged between plain and sharded(N=1)"
        );
    }
}
