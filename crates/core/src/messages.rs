//! Inter-broker signalling messages.
//!
//! Downstream travels the nested [`SignedRar`]; upstream travel signed
//! approvals ("the BB adds its own signed policy information and
//! propagates the modified request to the previous intermediate domain
//! BB") or denials ("the event is propagated upstream to inform the user
//! of the reason for the denial"). Tunnel sub-flow requests travel the
//! *direct* source↔destination channel.

use crate::envelope::SignedRar;
use crate::rar::RarId;
use qos_crypto::sha256::sha256;
use qos_crypto::{Certificate, DistinguishedName, KeyPair, PublicKey, Signature};
use qos_policy::AttributeSet;

/// One domain's signed endorsement on the approval path. Entries chain
/// through `prev_digest`, so the source can verify the whole return path.
#[derive(Debug, Clone, PartialEq)]
pub struct ApprovalEntry {
    /// The approved request.
    pub rar_id: RarId,
    /// Endorsing domain.
    pub domain: String,
    /// Endorsing broker's DN.
    pub signer: DistinguishedName,
    /// Policy information this domain attached on the way back.
    pub attachments: AttributeSet,
    /// SHA-256 of the previous entry's canonical bytes (empty for the
    /// destination's entry).
    pub prev_digest: Vec<u8>,
    /// Signature over the canonical bytes of all fields above.
    pub signature: Signature,
}

qos_wire::impl_wire_struct!(ApprovalEntry {
    rar_id,
    domain,
    signer,
    attachments,
    prev_digest,
    signature
});

impl ApprovalEntry {
    fn payload(
        rar_id: RarId,
        domain: &str,
        signer: &DistinguishedName,
        attachments: &AttributeSet,
        prev_digest: &[u8],
    ) -> Vec<u8> {
        let mut w = qos_wire::Writer::new();
        qos_wire::Encode::encode(&rar_id, &mut w);
        w.put_str(domain);
        qos_wire::Encode::encode(signer, &mut w);
        qos_wire::Encode::encode(attachments, &mut w);
        w.put_bytes(prev_digest);
        w.into_bytes()
    }

    /// Verify this entry's signature under `pk`.
    pub fn verify(&self, pk: PublicKey) -> bool {
        pk.verify(
            &Self::payload(
                self.rar_id,
                &self.domain,
                &self.signer,
                &self.attachments,
                &self.prev_digest,
            ),
            &self.signature,
        )
    }
}

/// The approval flowing back from the destination to the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Approval {
    /// The approved request.
    pub rar_id: RarId,
    /// The destination broker's certificate — what the source domain
    /// needs to open the direct tunnel channel ("it must be possible for
    /// the end-domain to derive the identity of the source domain's BB",
    /// and vice versa).
    pub dest_cert: Certificate,
    /// Endorsements, destination first.
    pub entries: Vec<ApprovalEntry>,
}

qos_wire::impl_wire_struct!(Approval {
    rar_id,
    dest_cert,
    entries
});

impl Approval {
    /// Create the destination's initial approval.
    pub fn originate(
        rar_id: RarId,
        dest_cert: Certificate,
        domain: &str,
        signer: DistinguishedName,
        attachments: AttributeSet,
        key: &KeyPair,
    ) -> Self {
        let payload = ApprovalEntry::payload(rar_id, domain, &signer, &attachments, &[]);
        let signature = key.sign(&payload);
        Self {
            rar_id,
            dest_cert,
            entries: vec![ApprovalEntry {
                rar_id,
                domain: domain.to_string(),
                signer,
                attachments,
                prev_digest: Vec::new(),
                signature,
            }],
        }
    }

    /// Add a transit/source domain's endorsement.
    pub fn endorse(
        mut self,
        domain: &str,
        signer: DistinguishedName,
        attachments: AttributeSet,
        key: &KeyPair,
    ) -> Self {
        let prev = self.entries.last().expect("approvals are never empty");
        let prev_digest = sha256(&qos_wire::to_bytes(prev)).to_vec();
        let payload =
            ApprovalEntry::payload(self.rar_id, domain, &signer, &attachments, &prev_digest);
        let signature = key.sign(&payload);
        self.entries.push(ApprovalEntry {
            rar_id: self.rar_id,
            domain: domain.to_string(),
            signer,
            attachments,
            prev_digest,
            signature,
        });
        self
    }

    /// Verify the chain: every signature under the key `resolve` returns
    /// for its signer, and every `prev_digest` matches.
    pub fn verify(
        &self,
        resolve: impl Fn(&DistinguishedName) -> Option<PublicKey>,
    ) -> Result<(), String> {
        let mut prev: Option<&ApprovalEntry> = None;
        for entry in &self.entries {
            if entry.rar_id != self.rar_id {
                return Err("entry rar_id mismatch".into());
            }
            let expected_digest = match prev {
                None => Vec::new(),
                Some(p) => sha256(&qos_wire::to_bytes(p)).to_vec(),
            };
            if entry.prev_digest != expected_digest {
                return Err(format!("broken digest chain at {}", entry.domain));
            }
            let pk =
                resolve(&entry.signer).ok_or_else(|| format!("no key for {}", entry.signer))?;
            if !entry.verify(pk) {
                return Err(format!("bad signature by {}", entry.signer));
            }
            prev = Some(entry);
        }
        Ok(())
    }
}

/// A denial flowing back upstream.
#[derive(Debug, Clone, PartialEq)]
pub struct Denial {
    /// The denied request.
    pub rar_id: RarId,
    /// The domain that said no.
    pub domain: String,
    /// Why ("to inform the user of the reason for the denial").
    pub reason: String,
}

qos_wire::impl_wire_struct!(Denial {
    rar_id,
    domain,
    reason
});

/// A request for a sub-flow inside an established tunnel, sent over the
/// direct source↔destination channel. Signed by the source BB.
#[derive(Debug, Clone, PartialEq)]
pub struct TunnelFlowRequest {
    /// The tunnel (the aggregate reservation's id).
    pub tunnel: RarId,
    /// The new sub-flow's data-plane id.
    pub flow: u64,
    /// Requested rate within the aggregate.
    pub rate_bps: u64,
    /// Requesting user.
    pub requestor: DistinguishedName,
    /// Source BB's signature over the fields above.
    pub signature: Signature,
}

qos_wire::impl_wire_struct!(TunnelFlowRequest {
    tunnel,
    flow,
    rate_bps,
    requestor,
    signature
});

impl TunnelFlowRequest {
    fn payload(tunnel: RarId, flow: u64, rate_bps: u64, requestor: &DistinguishedName) -> Vec<u8> {
        let mut w = qos_wire::Writer::new();
        qos_wire::Encode::encode(&tunnel, &mut w);
        w.put_u64(flow);
        w.put_u64(rate_bps);
        qos_wire::Encode::encode(requestor, &mut w);
        w.into_bytes()
    }

    /// Sign a new sub-flow request.
    pub fn new(
        tunnel: RarId,
        flow: u64,
        rate_bps: u64,
        requestor: DistinguishedName,
        key: &KeyPair,
    ) -> Self {
        let signature = key.sign(&Self::payload(tunnel, flow, rate_bps, &requestor));
        Self {
            tunnel,
            flow,
            rate_bps,
            requestor,
            signature,
        }
    }

    /// Verify under the source BB's key.
    pub fn verify(&self, pk: PublicKey) -> bool {
        pk.verify(&self.signed_payload(), &self.signature)
    }

    /// The canonical bytes [`Self::signature`] covers — what a batched
    /// verifier ([`qos_crypto::verify_batch`]) feeds the combined
    /// Schnorr equation.
    pub fn signed_payload(&self) -> Vec<u8> {
        Self::payload(self.tunnel, self.flow, self.rate_bps, &self.requestor)
    }
}

/// Why a tunnel sub-flow request was refused. The fast path emits these
/// as static codes — no `format!` per denial, nothing heap-allocated on
/// the reply hot path. On the wire a code travels as the same
/// length-prefixed string the old free-text `reason` field used, so the
/// frame layout is unchanged; `Other` round-trips any string an older
/// peer might still send.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DenialCode {
    /// Accepted — no denial (encodes as the empty string, exactly what
    /// the old path put in `reason` on acceptance).
    #[default]
    None,
    /// The destination has no such tunnel.
    UnknownTunnel,
    /// The request's source-BB signature did not verify.
    BadSignature,
    /// The destination's aggregate budget is exhausted.
    Exhausted,
    /// The source's aggregate budget (committed + in-flight) is
    /// exhausted.
    SourceExhausted,
    /// The per-flow rate exceeds what a compact flow record can carry
    /// ([`crate::flowtable::MAX_FLOW_RATE_BPS`]).
    RateOverCap,
    /// Free-text reason from a peer speaking the pre-code dialect.
    Other(Box<str>),
}

impl DenialCode {
    /// The stable wire string for this code.
    pub fn as_str(&self) -> &str {
        match self {
            DenialCode::None => "",
            DenialCode::UnknownTunnel => "unknown-tunnel",
            DenialCode::BadSignature => "bad-signature",
            DenialCode::Exhausted => "exhausted",
            DenialCode::SourceExhausted => "source-exhausted",
            DenialCode::RateOverCap => "rate-over-cap",
            DenialCode::Other(s) => s,
        }
    }

    /// Parse a wire string back into a code (unknown text → `Other`).
    pub fn from_wire(s: &str) -> Self {
        match s {
            "" => DenialCode::None,
            "unknown-tunnel" => DenialCode::UnknownTunnel,
            "bad-signature" => DenialCode::BadSignature,
            "exhausted" => DenialCode::Exhausted,
            "source-exhausted" => DenialCode::SourceExhausted,
            "rate-over-cap" => DenialCode::RateOverCap,
            other => DenialCode::Other(other.into()),
        }
    }
}

impl std::fmt::Display for DenialCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl qos_wire::Encode for DenialCode {
    fn encode(&self, w: &mut qos_wire::Writer) {
        w.put_str(self.as_str());
    }
}

impl qos_wire::Decode for DenialCode {
    fn decode(r: &mut qos_wire::Reader<'_>) -> Result<Self, qos_wire::WireError> {
        Ok(Self::from_wire(&r.get_str()?))
    }
}

/// Reply to a tunnel sub-flow request.
#[derive(Debug, Clone, PartialEq)]
pub struct TunnelFlowReply {
    /// The tunnel.
    pub tunnel: RarId,
    /// The sub-flow.
    pub flow: u64,
    /// Whether the destination accepted.
    pub accepted: bool,
    /// Denial code on rejection ([`DenialCode::None`] on acceptance).
    pub reason: DenialCode,
}

qos_wire::impl_wire_struct!(TunnelFlowReply {
    tunnel,
    flow,
    accepted,
    reason
});

/// A direct (Approach-1) per-domain reservation request: the end-to-end
/// agent contacts each BB individually with the user-signed request.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectRequest {
    /// The user-signed request.
    pub rar: SignedRar,
    /// Position of this domain on the declared path (which peers the
    /// traffic enters/leaves through).
    pub ingress_peer: Option<String>,
    /// Downstream peer on the declared path.
    pub egress_peer: Option<String>,
}

qos_wire::impl_wire_struct!(DirectRequest {
    rar,
    ingress_peer,
    egress_peer
});

/// Reply to a direct request.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectReply {
    /// The request.
    pub rar_id: RarId,
    /// Replying domain.
    pub domain: String,
    /// Whether this domain admitted the reservation.
    pub accepted: bool,
    /// Reason on rejection.
    pub reason: String,
}

qos_wire::impl_wire_struct!(DirectReply {
    rar_id,
    domain,
    accepted,
    reason
});

/// Teardown of one tunnel sub-flow, sent over the direct channel and
/// signed by the source BB (mirror of [`TunnelFlowRequest`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TunnelFlowRelease {
    /// The tunnel.
    pub tunnel: RarId,
    /// The sub-flow being torn down.
    pub flow: u64,
    /// Source BB's signature over (tunnel ‖ flow).
    pub signature: Signature,
}

qos_wire::impl_wire_struct!(TunnelFlowRelease {
    tunnel,
    flow,
    signature
});

impl TunnelFlowRelease {
    fn payload(tunnel: RarId, flow: u64) -> Vec<u8> {
        let mut w = qos_wire::Writer::new();
        qos_wire::Encode::encode(&tunnel, &mut w);
        w.put_u64(flow);
        w.put_str("tunnel-flow-release");
        w.into_bytes()
    }

    /// Sign a sub-flow teardown at the source broker.
    pub fn new(tunnel: RarId, flow: u64, key: &KeyPair) -> Self {
        Self {
            tunnel,
            flow,
            signature: key.sign(&Self::payload(tunnel, flow)),
        }
    }

    /// Verify under the source BB's public key.
    pub fn verify(&self, pk: PublicKey) -> bool {
        pk.verify(&Self::payload(self.tunnel, self.flow), &self.signature)
    }
}

/// A signed end-to-end teardown: the source broker releases a committed
/// reservation along the whole path ("end-to-end management" in GARA's
/// API). Signed by the source BB so transit domains cannot be tricked
/// into releasing someone else's capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Release {
    /// The reservation to tear down.
    pub rar_id: RarId,
    /// The initiating (source) domain.
    pub source_domain: String,
    /// Source BB's signature over (rar_id ‖ source_domain).
    pub signature: Signature,
}

qos_wire::impl_wire_struct!(Release {
    rar_id,
    source_domain,
    signature
});

impl Release {
    fn payload(rar_id: RarId, source_domain: &str) -> Vec<u8> {
        let mut w = qos_wire::Writer::new();
        qos_wire::Encode::encode(&rar_id, &mut w);
        w.put_str(source_domain);
        w.into_bytes()
    }

    /// Sign a teardown at the source broker.
    pub fn new(rar_id: RarId, source_domain: &str, key: &KeyPair) -> Self {
        Self {
            rar_id,
            source_domain: source_domain.to_string(),
            signature: key.sign(&Self::payload(rar_id, source_domain)),
        }
    }

    /// Verify under the source BB's public key.
    pub fn verify(&self, pk: PublicKey) -> bool {
        pk.verify(
            &Self::payload(self.rar_id, &self.source_domain),
            &self.signature,
        )
    }
}

/// Everything that flows between signalling entities.
#[derive(Debug, Clone, PartialEq)]
pub enum SignalMessage {
    /// Hop-by-hop downstream request.
    Request(SignedRar),
    /// Upstream approval.
    Approve(Approval),
    /// Upstream denial.
    Deny(Denial),
    /// Approach-1 direct request (end-to-end agent → one BB).
    Direct(DirectRequest),
    /// Approach-1 reply.
    DirectReply(DirectReply),
    /// Tunnel sub-flow request (direct source→destination channel).
    TunnelFlow(TunnelFlowRequest),
    /// Tunnel sub-flow reply (destination→source).
    TunnelFlowReply(TunnelFlowReply),
    /// End-to-end teardown of a standing reservation (source → …
    /// destination, hop by hop).
    Release(Release),
    /// Teardown of a tunnel sub-flow (direct channel).
    TunnelFlowRelease(TunnelFlowRelease),
}

qos_wire::impl_wire_enum!(SignalMessage {
    0 => Request(t0: SignedRar),
    1 => Approve(t0: Approval),
    2 => Deny(t0: Denial),
    3 => Direct(t0: DirectRequest),
    4 => DirectReply(t0: DirectReply),
    5 => TunnelFlow(t0: TunnelFlowRequest),
    6 => TunnelFlowReply(t0: TunnelFlowReply),
    7 => Release(t0: Release),
    8 => TunnelFlowRelease(t0: TunnelFlowRelease),
});

impl SignalMessage {
    /// The request (or tunnel) this message concerns.
    pub fn rar_id(&self) -> RarId {
        match self {
            SignalMessage::Request(rar) => rar.res_spec().rar_id,
            SignalMessage::Approve(a) => a.rar_id,
            SignalMessage::Deny(d) => d.rar_id,
            SignalMessage::Direct(d) => d.rar.res_spec().rar_id,
            SignalMessage::DirectReply(r) => r.rar_id,
            SignalMessage::TunnelFlow(t) => t.tunnel,
            SignalMessage::TunnelFlowReply(r) => r.tunnel,
            SignalMessage::Release(r) => r.rar_id,
            SignalMessage::TunnelFlowRelease(r) => r.tunnel,
        }
    }

    /// The trace this message belongs to, where the message itself
    /// carries enough signed state to re-derive it ([`TraceId::mint`]
    /// is deterministic over `(source_domain, rar_id)`). Upstream
    /// replies (approve/deny/…) identify the request by id only; brokers
    /// resolve those against their pending table instead.
    pub fn trace_id(&self) -> Option<qos_telemetry::TraceId> {
        let spec = match self {
            SignalMessage::Request(rar) => rar.res_spec(),
            SignalMessage::Direct(d) => d.rar.res_spec(),
            _ => return None,
        };
        Some(qos_telemetry::TraceId::mint(
            &spec.source_domain,
            spec.rar_id.0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_crypto::cert::Validity;
    use qos_crypto::CertificateAuthority;

    fn kp(s: &str) -> KeyPair {
        KeyPair::from_seed(s.as_bytes())
    }

    fn dest_cert() -> Certificate {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("CA"),
            KeyPair::from_seed(b"ca"),
        );
        ca.issue_identity(
            DistinguishedName::broker("domain-c"),
            kp("bb-c").public(),
            Validity::unbounded(),
        )
    }

    #[test]
    fn approval_chain_builds_and_verifies() {
        let (kc, kb, ka) = (kp("bb-c"), kp("bb-b"), kp("bb-a"));
        let approval = Approval::originate(
            RarId(1),
            dest_cert(),
            "domain-c",
            DistinguishedName::broker("domain-c"),
            AttributeSet::new(),
            &kc,
        )
        .endorse(
            "domain-b",
            DistinguishedName::broker("domain-b"),
            AttributeSet::new(),
            &kb,
        )
        .endorse(
            "domain-a",
            DistinguishedName::broker("domain-a"),
            AttributeSet::new(),
            &ka,
        );
        assert_eq!(approval.entries.len(), 3);
        let resolve = |dn: &DistinguishedName| {
            Some(match dn.org_unit()? {
                "domain-a" => ka.public(),
                "domain-b" => kb.public(),
                "domain-c" => kc.public(),
                _ => return None,
            })
        };
        approval.verify(resolve).unwrap();
    }

    #[test]
    fn approval_tampering_detected() {
        let kc = kp("bb-c");
        let kb = kp("bb-b");
        let mut approval = Approval::originate(
            RarId(1),
            dest_cert(),
            "domain-c",
            DistinguishedName::broker("domain-c"),
            AttributeSet::new(),
            &kc,
        )
        .endorse(
            "domain-b",
            DistinguishedName::broker("domain-b"),
            AttributeSet::new(),
            &kb,
        );
        // Strip the destination's entry (pretend B originated it).
        approval.entries.remove(0);
        let resolve = |dn: &DistinguishedName| {
            Some(match dn.org_unit()? {
                "domain-b" => kb.public(),
                "domain-c" => kc.public(),
                _ => return None,
            })
        };
        assert!(approval.verify(resolve).is_err());
    }

    #[test]
    fn tunnel_flow_request_signature() {
        let key = kp("bb-a");
        let req = TunnelFlowRequest::new(
            RarId(5),
            77,
            1_000_000,
            DistinguishedName::user("Alice", "ANL"),
            &key,
        );
        assert!(req.verify(key.public()));
        let mut forged = req.clone();
        forged.rate_bps = 100_000_000;
        assert!(!forged.verify(key.public()));
    }

    #[test]
    fn signal_message_wire_round_trip() {
        let msg = SignalMessage::Deny(Denial {
            rar_id: RarId(9),
            domain: "domain-b".into(),
            reason: "no SLA capacity".into(),
        });
        let bytes = qos_wire::to_bytes(&msg);
        assert_eq!(qos_wire::from_bytes::<SignalMessage>(&bytes).unwrap(), msg);
    }
}
