//! Mutually authenticated channels between peered brokers.
//!
//! §6.4: "The direct signalling between peer BBs … can easily be secured
//! using SSLv3/TLS", with the SLA pinning "the certificates of the peered
//! BBs as well as the certificate of the issuing certificate authority,
//! all used during the SSL handshake."
//!
//! This module reproduces the three properties the protocol actually
//! relies on (DESIGN.md §2): **mutual authentication** (both sides
//! validate the peer certificate against the SLA-pinned CA and prove
//! possession of their private keys over a fresh transcript),
//! **integrity + replay protection** (every message is HMAC'd under a
//! derived session key with strict sequence numbers), and **certificate
//! learning** (each side ends the handshake holding the peer's
//! certificate — the raw material of the key-introducer web of trust).
// Zero-alloc hot-path module (DESIGN.md §D15): the dedicated CI lint
// step loads .clippy-hotpath/clippy.toml, under which this attribute
// rejects un-annotated Vec::new / slice::to_vec in this module.
#![deny(clippy::disallowed_methods)]

use crate::error::CoreError;
use qos_crypto::sha256::{hmac_sha256, Digest, Sha256, DIGEST_LEN};
use qos_crypto::{Certificate, DistinguishedName, KeyPair, PublicKey, Signature, Timestamp};

/// One party's channel identity.
pub struct ChannelIdentity {
    /// The party's key pair.
    pub key: KeyPair,
    /// The party's certificate.
    pub cert: Certificate,
}

/// What one side requires of the peer, pinned from the SLA.
#[derive(Clone)]
pub struct PeerPin {
    /// The CA key that must have signed the peer certificate.
    pub ca_key: PublicKey,
    /// The expected peer DN.
    pub dn: DistinguishedName,
}

/// An authenticated message on an established channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Sealed {
    /// Application payload (canonical message bytes).
    pub payload: Vec<u8>,
    /// Per-direction sequence number.
    pub seq: u64,
    /// HMAC over (direction ‖ seq ‖ payload).
    pub mac: Digest,
}

impl qos_wire::Encode for Sealed {
    fn encode(&self, w: &mut qos_wire::Writer) {
        w.put_bytes(&self.payload);
        w.put_u64(self.seq);
        w.put_raw(&self.mac);
    }
}

impl qos_wire::Decode for Sealed {
    fn decode(r: &mut qos_wire::Reader<'_>) -> Result<Self, qos_wire::WireError> {
        let payload = r.get_bytes()?;
        let seq = r.get_u64()?;
        let mut mac = [0u8; DIGEST_LEN];
        for b in mac.iter_mut() {
            *b = r.get_u8()?;
        }
        Ok(Sealed { payload, seq, mac })
    }
}

/// One endpoint of an established secure channel.
#[derive(Debug)]
pub struct SecureChannel {
    /// Peer's certificate, learned during the handshake.
    pub peer_cert: Certificate,
    session_key: Digest,
    /// 0 for the initiator, 1 for the responder.
    role: u8,
    send_seq: u64,
    recv_seq: u64,
}

/// Run the mutual handshake, producing one channel endpoint per side.
///
/// `nonce` models the fresh randomness both TLS parties contribute; the
/// runtime supplies a unique value per connection.
pub fn handshake(
    initiator: &ChannelIdentity,
    responder: &ChannelIdentity,
    initiator_pins: &PeerPin,
    responder_pins: &PeerPin,
    nonce: u64,
    now: Timestamp,
) -> Result<(SecureChannel, SecureChannel), CoreError> {
    // Each side validates the peer certificate against its pins.
    validate_peer(&responder.cert, initiator_pins, now)?;
    validate_peer(&initiator.cert, responder_pins, now)?;

    // Both sides prove possession of their certified keys by signing the
    // handshake transcript.
    let transcript = transcript_hash(&initiator.cert, &responder.cert, nonce);
    let sig_i = initiator.key.sign(&transcript);
    let sig_r = responder.key.sign(&transcript);
    if !initiator
        .cert
        .tbs
        .subject_public_key
        .verify(&transcript, &sig_i)
    {
        return Err(CoreError::Channel(format!(
            "initiator {} failed possession proof",
            initiator.cert.tbs.subject
        )));
    }
    if !responder
        .cert
        .tbs
        .subject_public_key
        .verify(&transcript, &sig_r)
    {
        return Err(CoreError::Channel(format!(
            "responder {} failed possession proof",
            responder.cert.tbs.subject
        )));
    }

    // Session key binds both identities and the nonce.
    let mut h = Sha256::new();
    h.update(b"qos-channel-v1");
    h.update(&transcript);
    let session_key = h.finalize();

    Ok((
        SecureChannel {
            peer_cert: responder.cert.clone(),
            session_key,
            role: 0,
            send_seq: 0,
            recv_seq: 0,
        },
        SecureChannel {
            peer_cert: initiator.cert.clone(),
            session_key,
            role: 1,
            send_seq: 0,
            recv_seq: 0,
        },
    ))
}

fn validate_peer(cert: &Certificate, pins: &PeerPin, now: Timestamp) -> Result<(), CoreError> {
    // Signature verdicts are memoized process-wide: a reconnecting peer
    // presenting the same certificate costs a hash, not an
    // exponentiation. Validity and pin checks always run fresh.
    cert.verify_signature_cached(pins.ca_key, now)
        .map_err(CoreError::from)?;
    cert.check_validity(now).map_err(CoreError::from)?;
    if cert.tbs.subject != pins.dn {
        return Err(CoreError::Channel(format!(
            "peer presented certificate for {}, SLA pins {}",
            cert.tbs.subject, pins.dn
        )));
    }
    Ok(())
}

fn transcript_hash(cert_i: &Certificate, cert_r: &Certificate, nonce: u64) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update(&qos_wire::to_bytes(cert_i));
    h.update(&qos_wire::to_bytes(cert_r));
    h.update(&nonce.to_le_bytes());
    // Handshake-time only — never on the sealed-frame hot path.
    #[allow(clippy::disallowed_methods)]
    h.finalize().to_vec()
}

impl SecureChannel {
    /// The authenticated peer's DN.
    pub fn peer_dn(&self) -> &DistinguishedName {
        &self.peer_cert.tbs.subject
    }

    /// Seal an outgoing payload.
    pub fn seal(&mut self, payload: Vec<u8>) -> Sealed {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mac = self.mac(self.role, seq, &payload);
        Sealed { payload, seq, mac }
    }

    /// Open an incoming message: verifies the MAC and strict ordering.
    pub fn open(&mut self, msg: Sealed) -> Result<Vec<u8>, CoreError> {
        let expect = self.mac(1 - self.role, msg.seq, &msg.payload);
        if !ct_eq(&expect, &msg.mac) {
            return Err(CoreError::Channel("MAC verification failed".into()));
        }
        if msg.seq != self.recv_seq {
            return Err(CoreError::Channel(format!(
                "out-of-order message: expected seq {}, got {}",
                self.recv_seq, msg.seq
            )));
        }
        self.recv_seq += 1;
        Ok(msg.payload)
    }

    fn mac(&self, direction: u8, seq: u64, payload: &[u8]) -> Digest {
        mac_message(&self.session_key, direction, seq, payload)
    }

    /// Derive the resumption master secret for this session:
    /// `HMAC(session_key, "qos-resume-master-v1")`.
    ///
    /// This is the long-lived secret a transport layer may cache (keyed
    /// by a server-issued ticket) to resume the channel later without
    /// re-running the signature handshake. It is a *separate PRF branch*
    /// from the session key and the per-direction MAC keys, so caching
    /// it never exposes live traffic keys. Note the modeled-crypto
    /// caveat inherited from the handshake itself (DESIGN.md §D10): the
    /// session key binds the public transcript rather than a key
    /// exchange, so resumption preserves — and cannot weaken — the
    /// channel's authentication and integrity model.
    pub fn resumption_secret(&self) -> Digest {
        hmac_sha256(&self.session_key, b"qos-resume-master-v1")
    }

    /// Rebuild a channel from a cached resumption master secret and two
    /// fresh nonce contributions, skipping the signature handshake.
    ///
    /// The new session key is `HMAC(master, "qos-resume-session-v1" ‖
    /// nonce_i ‖ nonce_r)`: both sides contribute freshness, so a
    /// resumed session never reuses MAC keys from the original (or any
    /// other resumed) session, and a replayed resume exchange yields
    /// keys the attacker cannot compute without `master`. Authentication
    /// is by possession of `master`, which only the two original
    /// handshake parties can derive — the transport proves possession
    /// explicitly with MACs before calling this.
    pub fn resume(
        peer_cert: Certificate,
        master: &Digest,
        nonce_i: u64,
        nonce_r: u64,
        initiator: bool,
    ) -> SecureChannel {
        let mut data = Vec::with_capacity(37);
        data.extend_from_slice(b"qos-resume-session-v1");
        data.extend_from_slice(&nonce_i.to_le_bytes());
        data.extend_from_slice(&nonce_r.to_le_bytes());
        SecureChannel {
            peer_cert,
            session_key: hmac_sha256(master, &data),
            role: if initiator { 0 } else { 1 },
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Split the channel into independent seal and open halves.
    ///
    /// Each half derives its *own* MAC key from the session key with the
    /// direction as the PRF distinguisher
    /// (`HMAC(session_key, "qos-channel-dir-v1" ‖ direction)`), so the
    /// two directions share no mutable state at all: a writer thread can
    /// seal while a reader thread opens, with no lock between them and
    /// no way for one direction's sequence space to perturb the other's.
    ///
    /// The security argument is unchanged from the combined channel
    /// (DESIGN.md §D9): reflection stays impossible because a message
    /// sealed under the direction-`d` key can never verify under the
    /// direction-`1-d` key (the direction byte additionally remains in
    /// the MAC input), and replay/reorder protection is the same strict
    /// per-direction sequence check. Both ends of a connection must
    /// split for the directions to interoperate — a split half does not
    /// speak the combined channel's MAC.
    ///
    /// The peer certificate is consumed; read identity data
    /// ([`SecureChannel::peer_dn`]) before splitting.
    pub fn split(self) -> (SealHalf, OpenHalf) {
        let send_dir = self.role;
        let recv_dir = 1 - self.role;
        (
            SealHalf {
                key: direction_key(&self.session_key, send_dir),
                direction: send_dir,
                seq: self.send_seq,
            },
            OpenHalf {
                key: direction_key(&self.session_key, recv_dir),
                direction: recv_dir,
                seq: self.recv_seq,
            },
        )
    }
}

/// MAC over one channel message: `HMAC(key, direction ‖ seq ‖ payload)`.
///
/// RFC 2104 run with incremental hash updates (D15): byte-identical to
/// `hmac_sha256(key, direction ‖ seq ‖ payload)` without materializing
/// the concatenation, so sealing and opening are allocation-free — the
/// payload is hashed wherever it already lives.
fn mac_message(key: &Digest, direction: u8, seq: u64, payload: &[u8]) -> Digest {
    let mut k = [0u8; 64];
    k[..DIGEST_LEN].copy_from_slice(key);
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(&[direction]);
    inner.update(&seq.to_le_bytes());
    inner.update(payload);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Per-direction MAC key: `HMAC(session_key, label ‖ direction)`.
fn direction_key(session_key: &Digest, direction: u8) -> Digest {
    let mut data = Vec::with_capacity(19);
    data.extend_from_slice(b"qos-channel-dir-v1");
    data.push(direction);
    hmac_sha256(session_key, &data)
}

/// The sealing (outbound) half of a split channel: owns the outbound
/// direction's derived key and sequence counter, nothing else. See
/// [`SecureChannel::split`].
#[derive(Debug)]
pub struct SealHalf {
    key: Digest,
    direction: u8,
    seq: u64,
}

impl SealHalf {
    /// Seal an outgoing payload.
    pub fn seal(&mut self, payload: Vec<u8>) -> Sealed {
        let (seq, mac) = self.seal_in_place(&payload);
        Sealed { payload, seq, mac }
    }

    /// Compute the sequence number and MAC for `payload` without taking
    /// ownership — the zero-copy path for callers that encode the
    /// payload bytes straight into a scratch buffer.
    pub fn seal_detached(&mut self, payload: &[u8]) -> (u64, Digest) {
        self.seal_in_place(payload)
    }

    /// Seal `payload` where it already lives (D15): the MAC is computed
    /// over the slice with no plaintext copy and no allocation. The
    /// copying [`SealHalf::seal`] delegates here. The caller writes the
    /// `Sealed` wire framing around the bytes it already holds.
    pub fn seal_in_place(&mut self, payload: &[u8]) -> (u64, Digest) {
        let seq = self.seq;
        self.seq += 1;
        (seq, mac_message(&self.key, self.direction, seq, payload))
    }

    /// Next sequence number to be issued.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }
}

/// The opening (inbound) half of a split channel: owns the inbound
/// direction's derived key and sequence counter. See
/// [`SecureChannel::split`].
#[derive(Debug)]
pub struct OpenHalf {
    key: Digest,
    direction: u8,
    seq: u64,
}

impl OpenHalf {
    /// Open an incoming message: verifies the MAC and strict ordering.
    pub fn open(&mut self, msg: Sealed) -> Result<Vec<u8>, CoreError> {
        self.open_in_place(&msg.payload, msg.seq, &msg.mac)?;
        Ok(msg.payload)
    }

    /// Verify a sealed message where its bytes already live (D15): the
    /// MAC is checked over the payload slice (e.g. a view into a pooled
    /// read chunk) with no plaintext copy, then the strict sequence
    /// check runs. On success the caller keeps using its slice as the
    /// authenticated plaintext. The copying [`OpenHalf::open`] delegates
    /// here.
    pub fn open_in_place(
        &mut self,
        payload: &[u8],
        seq: u64,
        mac: &Digest,
    ) -> Result<(), CoreError> {
        let expect = mac_message(&self.key, self.direction, seq, payload);
        if !ct_eq(&expect, mac) {
            return Err(CoreError::Channel("MAC verification failed".into()));
        }
        if seq != self.seq {
            return Err(CoreError::Channel(format!(
                "out-of-order message: expected seq {}, got {}",
                self.seq, seq
            )));
        }
        self.seq += 1;
        Ok(())
    }

    /// Next sequence number expected.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }
}

/// Borrowed view of a [`Sealed`] message parsed straight from frame
/// bytes (D15) — the zero-copy sibling of decoding `Sealed` through
/// [`qos_wire::Decode`]. The payload stays a slice into the receive
/// buffer; only the fixed-size seq and MAC are copied out.
#[derive(Debug, Clone, Copy)]
pub struct SealedRef<'a> {
    /// The MACed payload, borrowed from the receive buffer.
    pub payload: &'a [u8],
    /// Channel sequence number.
    pub seq: u64,
    /// The transmitted MAC.
    pub mac: Digest,
}

impl<'a> SealedRef<'a> {
    /// Parse the canonical `Sealed` encoding from `r` without copying
    /// the payload. Accepts exactly the bytes [`Sealed`]'s decoder
    /// accepts.
    pub fn parse(r: &mut qos_wire::Reader<'a>) -> Result<Self, qos_wire::WireError> {
        let payload = r.get_bytes_ref()?;
        let seq = r.get_u64()?;
        let mut mac = [0u8; DIGEST_LEN];
        for b in mac.iter_mut() {
            *b = r.get_u8()?;
        }
        Ok(SealedRef { payload, seq, mac })
    }
}

/// Constant-time digest comparison: the running time is independent of
/// the position of the first differing byte, so an attacker probing a
/// channel over a real network cannot binary-search a valid MAC one
/// byte at a time through response timing.
#[inline(never)]
fn ct_eq(a: &Digest, b: &Digest) -> bool {
    let mut diff = 0u8;
    for i in 0..DIGEST_LEN {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

/// One side of the mutual handshake, decomposed into messages.
///
/// [`handshake`] needs both private keys in one address space, which is
/// only possible when every broker lives in one process. Peered daemons
/// run the same protocol as an exchange of two messages per side: a
/// *hello* carrying the certificate and a fresh nonce contribution, then
/// an *auth* proving possession of the certified key by signing the
/// joint transcript
/// `H("qos-net-handshake-v1" ‖ cert_i ‖ cert_r ‖ nonce_i ‖ nonce_r)`.
/// Both sides contribute a nonce, so neither can replay a transcript the
/// other has signed before. The derived session key matches the
/// in-process construction: `H("qos-channel-v1" ‖ transcript)`.
pub struct NetHandshake {
    cert: Certificate,
    key: KeyPair,
    initiator: bool,
    nonce: u64,
}

impl NetHandshake {
    /// Start a handshake as the connecting (`initiator = true`) or
    /// accepting side. `nonce` must be fresh per connection attempt.
    pub fn new(identity: &ChannelIdentity, initiator: bool, nonce: u64) -> Self {
        Self {
            cert: identity.cert.clone(),
            key: identity.key.clone(),
            initiator,
            nonce,
        }
    }

    /// The hello to transmit: our certificate and nonce contribution.
    pub fn hello(&self) -> (Certificate, u64) {
        (self.cert.clone(), self.nonce)
    }

    /// Consume the peer's hello: validate its certificate against the
    /// SLA `pin`, derive the joint transcript, and produce our
    /// possession proof plus the state that awaits the peer's.
    pub fn receive_hello(
        self,
        peer_cert: Certificate,
        peer_nonce: u64,
        pin: &PeerPin,
        now: Timestamp,
    ) -> Result<(Signature, AwaitAuth), CoreError> {
        validate_peer(&peer_cert, pin, now)?;
        let transcript = if self.initiator {
            net_transcript(&self.cert, &peer_cert, self.nonce, peer_nonce)
        } else {
            net_transcript(&peer_cert, &self.cert, peer_nonce, self.nonce)
        };
        let sig = self.key.sign(&transcript);
        let mut h = Sha256::new();
        h.update(b"qos-channel-v1");
        h.update(&transcript);
        let session_key = h.finalize();
        Ok((
            sig,
            AwaitAuth {
                transcript,
                session_key,
                peer_cert,
                role: if self.initiator { 0 } else { 1 },
            },
        ))
    }
}

/// Handshake state after the hellos crossed, awaiting the peer's
/// possession proof.
pub struct AwaitAuth {
    transcript: Vec<u8>,
    session_key: Digest,
    peer_cert: Certificate,
    role: u8,
}

impl AwaitAuth {
    /// The peer's DN (already validated against the pin).
    pub fn peer_dn(&self) -> &DistinguishedName {
        &self.peer_cert.tbs.subject
    }

    /// Verify the peer's signature over the joint transcript and open
    /// the channel.
    pub fn receive_auth(self, sig: Signature) -> Result<SecureChannel, CoreError> {
        if !self
            .peer_cert
            .tbs
            .subject_public_key
            .verify(&self.transcript, &sig)
        {
            return Err(CoreError::Channel(format!(
                "peer {} failed possession proof",
                self.peer_cert.tbs.subject
            )));
        }
        Ok(SecureChannel {
            peer_cert: self.peer_cert,
            session_key: self.session_key,
            role: self.role,
            send_seq: 0,
            recv_seq: 0,
        })
    }
}

fn net_transcript(
    cert_i: &Certificate,
    cert_r: &Certificate,
    nonce_i: u64,
    nonce_r: u64,
) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update(b"qos-net-handshake-v1");
    h.update(&qos_wire::to_bytes(cert_i));
    h.update(&qos_wire::to_bytes(cert_r));
    h.update(&nonce_i.to_le_bytes());
    h.update(&nonce_r.to_le_bytes());
    // Handshake-time only — never on the sealed-frame hot path.
    #[allow(clippy::disallowed_methods)]
    h.finalize().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_crypto::{CertificateAuthority, Validity};

    struct Fix {
        a: ChannelIdentity,
        b: ChannelIdentity,
        ca_key: PublicKey,
    }

    fn fix() -> Fix {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("CA"),
            KeyPair::from_seed(b"ca"),
        );
        let ka = KeyPair::from_seed(b"bb-a");
        let kb = KeyPair::from_seed(b"bb-b");
        let cert_a = ca.issue_identity(
            DistinguishedName::broker("domain-a"),
            ka.public(),
            Validity::unbounded(),
        );
        let cert_b = ca.issue_identity(
            DistinguishedName::broker("domain-b"),
            kb.public(),
            Validity::unbounded(),
        );
        Fix {
            a: ChannelIdentity {
                key: ka,
                cert: cert_a,
            },
            b: ChannelIdentity {
                key: kb,
                cert: cert_b,
            },
            ca_key: ca.public_key(),
        }
    }

    fn pins(f: &Fix, dn: &str) -> PeerPin {
        PeerPin {
            ca_key: f.ca_key,
            dn: DistinguishedName::broker(dn),
        }
    }

    #[test]
    fn handshake_and_message_exchange() {
        let f = fix();
        let (mut a, mut b) = handshake(
            &f.a,
            &f.b,
            &pins(&f, "domain-b"),
            &pins(&f, "domain-a"),
            42,
            Timestamp(0),
        )
        .unwrap();
        // Both sides learned the peer's certificate.
        assert_eq!(a.peer_dn(), &DistinguishedName::broker("domain-b"));
        assert_eq!(b.peer_dn(), &DistinguishedName::broker("domain-a"));
        // Bidirectional authenticated messages.
        let m1 = a.seal(b"hello".to_vec());
        assert_eq!(b.open(m1).unwrap(), b"hello");
        let m2 = b.seal(b"world".to_vec());
        assert_eq!(a.open(m2).unwrap(), b"world");
    }

    #[test]
    fn wrong_pinned_dn_fails_handshake() {
        let f = fix();
        let err = handshake(
            &f.a,
            &f.b,
            &pins(&f, "domain-x"), // initiator expects domain-x
            &pins(&f, "domain-a"),
            1,
            Timestamp(0),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Channel(_)));
    }

    #[test]
    fn certificate_not_signed_by_pinned_ca_fails() {
        let f = fix();
        // An impostor CA issues a certificate for domain-b's DN.
        let mut rogue = CertificateAuthority::new(
            DistinguishedName::authority("Rogue"),
            KeyPair::from_seed(b"rogue"),
        );
        let imp_key = KeyPair::from_seed(b"imp");
        let imp = ChannelIdentity {
            cert: rogue.issue_identity(
                DistinguishedName::broker("domain-b"),
                imp_key.public(),
                Validity::unbounded(),
            ),
            key: imp_key,
        };
        let err = handshake(
            &f.a,
            &imp,
            &pins(&f, "domain-b"),
            &pins(&f, "domain-a"),
            1,
            Timestamp(0),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Crypto(_)));
    }

    #[test]
    fn stolen_certificate_without_key_fails_possession() {
        let f = fix();
        // Mallory presents B's real certificate but holds a different key.
        let mallory = ChannelIdentity {
            cert: f.b.cert.clone(),
            key: KeyPair::from_seed(b"mallory"),
        };
        let err = handshake(
            &f.a,
            &mallory,
            &pins(&f, "domain-b"),
            &pins(&f, "domain-a"),
            1,
            Timestamp(0),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Channel(_)), "{err}");
    }

    #[test]
    fn tampered_payload_rejected() {
        let f = fix();
        let (mut a, mut b) = handshake(
            &f.a,
            &f.b,
            &pins(&f, "domain-b"),
            &pins(&f, "domain-a"),
            7,
            Timestamp(0),
        )
        .unwrap();
        let mut m = a.seal(b"reserve 10".to_vec());
        m.payload = b"reserve 99".to_vec();
        assert!(b.open(m).is_err());
    }

    #[test]
    fn replay_and_reorder_rejected() {
        let f = fix();
        let (mut a, mut b) = handshake(
            &f.a,
            &f.b,
            &pins(&f, "domain-b"),
            &pins(&f, "domain-a"),
            7,
            Timestamp(0),
        )
        .unwrap();
        let m0 = a.seal(b"zero".to_vec());
        let m1 = a.seal(b"one".to_vec());
        assert!(b.open(m1.clone()).is_err(), "reorder detected");
        assert!(b.open(m0.clone()).is_ok());
        assert!(b.open(m0).is_err(), "replay detected");
        assert!(b.open(m1).is_ok());
    }

    /// Drive the message-based handshake the way two sockets would.
    fn net_handshake(f: &Fix) -> Result<(SecureChannel, SecureChannel), CoreError> {
        let hs_a = NetHandshake::new(&f.a, true, 11);
        let hs_b = NetHandshake::new(&f.b, false, 22);
        let (cert_a, nonce_a) = hs_a.hello();
        let (cert_b, nonce_b) = hs_b.hello();
        let (sig_a, await_a) =
            hs_a.receive_hello(cert_b, nonce_b, &pins(f, "domain-b"), Timestamp(0))?;
        let (sig_b, await_b) =
            hs_b.receive_hello(cert_a, nonce_a, &pins(f, "domain-a"), Timestamp(0))?;
        Ok((await_a.receive_auth(sig_b)?, await_b.receive_auth(sig_a)?))
    }

    #[test]
    fn net_handshake_ends_interoperate() {
        let f = fix();
        let (mut a, mut b) = net_handshake(&f).unwrap();
        assert_eq!(a.peer_dn(), &DistinguishedName::broker("domain-b"));
        assert_eq!(b.peer_dn(), &DistinguishedName::broker("domain-a"));
        let m1 = a.seal(b"over the wire".to_vec());
        assert_eq!(b.open(m1).unwrap(), b"over the wire");
        let m2 = b.seal(b"and back".to_vec());
        assert_eq!(a.open(m2).unwrap(), b"and back");
    }

    #[test]
    fn net_handshake_rejects_stolen_certificate() {
        let f = fix();
        // Mallory presents B's certificate but signs with a different key.
        let mallory = ChannelIdentity {
            cert: f.b.cert.clone(),
            key: KeyPair::from_seed(b"mallory"),
        };
        let hs_a = NetHandshake::new(&f.a, true, 1);
        let (cert_m, nonce_m) = NetHandshake::new(&mallory, false, 2).hello();
        let mallory_sig = mallory.key.sign(b"whatever");
        let (_, await_a) = hs_a
            .receive_hello(cert_m, nonce_m, &pins(&f, "domain-b"), Timestamp(0))
            .unwrap();
        assert!(matches!(
            await_a.receive_auth(mallory_sig),
            Err(CoreError::Channel(_))
        ));
    }

    #[test]
    fn net_handshake_rejects_unpinned_dn() {
        let f = fix();
        let hs_a = NetHandshake::new(&f.a, true, 1);
        let (cert_b, nonce_b) = NetHandshake::new(&f.b, false, 2).hello();
        assert!(matches!(
            hs_a.receive_hello(cert_b, nonce_b, &pins(&f, "domain-x"), Timestamp(0)),
            Err(CoreError::Channel(_))
        ));
    }

    #[test]
    fn sealed_frames_round_trip_on_the_wire() {
        let f = fix();
        let (mut a, mut b) = net_handshake(&f).unwrap();
        let sealed = a.seal(b"framed payload".to_vec());
        let bytes = qos_wire::to_bytes(&sealed);
        let back = qos_wire::from_bytes::<Sealed>(&bytes).unwrap();
        assert_eq!(back, sealed);
        assert_eq!(b.open(back).unwrap(), b"framed payload");
    }

    #[test]
    fn split_halves_interoperate_across_ends() {
        let f = fix();
        let (a, b) = net_handshake(&f).unwrap();
        let (mut a_seal, mut a_open) = a.split();
        let (mut b_seal, mut b_open) = b.split();
        let m1 = a_seal.seal(b"over the wire".to_vec());
        assert_eq!(b_open.open(m1).unwrap(), b"over the wire");
        let m2 = b_seal.seal(b"and back".to_vec());
        assert_eq!(a_open.open(m2).unwrap(), b"and back");
        // Sequence spaces are fully independent per direction.
        for i in 0..5u8 {
            let m = a_seal.seal(vec![i]);
            assert_eq!(b_open.open(m).unwrap(), vec![i]);
        }
        assert_eq!(a_seal.next_seq(), 6);
        assert_eq!(b_seal.next_seq(), 1);
    }

    #[test]
    fn split_reflection_rejected() {
        // A sealed message bounced back to its sender cannot open: the
        // two directions use distinct derived keys.
        let f = fix();
        let (a, _b) = net_handshake(&f).unwrap();
        let (mut a_seal, mut a_open) = a.split();
        let m = a_seal.seal(b"x".to_vec());
        assert!(a_open.open(m).is_err());
    }

    #[test]
    fn split_uses_per_direction_keys() {
        // The same payload at the same sequence number MACs differently
        // under the combined channel and the split half: the split key
        // schedule is a different PRF branch, so a split end cannot be
        // confused with an unsplit one.
        let f = fix();
        let (mut a1, _) = net_handshake(&f).unwrap();
        let (a2, _) = net_handshake(&f).unwrap();
        let (mut a2_seal, _) = a2.split();
        let m_combined = a1.seal(b"same bytes".to_vec());
        let m_split = a2_seal.seal(b"same bytes".to_vec());
        assert_eq!(m_combined.seq, m_split.seq);
        assert_ne!(m_combined.mac, m_split.mac);
    }

    #[test]
    fn split_replay_and_reorder_rejected() {
        let f = fix();
        let (a, b) = net_handshake(&f).unwrap();
        let (mut a_seal, _) = a.split();
        let (_, mut b_open) = b.split();
        let m0 = a_seal.seal(b"zero".to_vec());
        let m1 = a_seal.seal(b"one".to_vec());
        assert!(b_open.open(m1.clone()).is_err(), "reorder detected");
        assert!(b_open.open(m0.clone()).is_ok());
        assert!(b_open.open(m0).is_err(), "replay detected");
        assert!(b_open.open(m1).is_ok());
    }

    #[test]
    fn seal_detached_matches_seal() {
        let f = fix();
        let (a1, b1) = net_handshake(&f).unwrap();
        let (mut s1, _) = a1.split();
        let (_, mut o1) = b1.split();
        let payload = b"detached".to_vec();
        let (seq, mac) = s1.seal_detached(&payload);
        let msg = Sealed {
            payload: payload.clone(),
            seq,
            mac,
        };
        assert_eq!(o1.open(msg).unwrap(), payload);
    }

    #[test]
    fn incremental_mac_matches_concatenated_hmac() {
        // mac_message must stay byte-identical to
        // HMAC(key, direction ‖ seq ‖ payload) over the materialized
        // concatenation — in-place sealing must not change the wire MAC.
        for (direction, seq, payload) in [
            (0u8, 0u64, &b""[..]),
            (1, 1, b"x"),
            (0, u64::MAX, &[0xAB; 4096][..]),
        ] {
            let key = qos_crypto::sha256::sha256(payload);
            let mut concat = Vec::with_capacity(payload.len() + 9);
            concat.push(direction);
            concat.extend_from_slice(&seq.to_le_bytes());
            concat.extend_from_slice(payload);
            assert_eq!(
                mac_message(&key, direction, seq, payload),
                hmac_sha256(&key, &concat)
            );
        }
    }

    #[test]
    fn in_place_seal_open_matches_copying_api() {
        let f = fix();
        let (a1, b1) = net_handshake(&f).unwrap();
        let (mut s1, _) = a1.split();
        let (_, mut o1) = b1.split();
        for i in 0..4u8 {
            let payload = vec![i; 64 + i as usize];
            let (seq, mac) = s1.seal_in_place(&payload);
            assert_eq!(seq, i as u64);
            // Verify without ever owning the payload.
            o1.open_in_place(&payload, seq, &mac).unwrap();
        }
        // The two halves stay in lockstep with the copying API.
        let msg = s1.seal(b"owned".to_vec());
        assert_eq!(o1.open(msg).unwrap(), b"owned");
    }

    #[test]
    fn open_in_place_rejects_bad_mac_and_replay() {
        let f = fix();
        let (a1, b1) = net_handshake(&f).unwrap();
        let (mut s1, _) = a1.split();
        let (_, mut o1) = b1.split();
        let payload = b"frame".to_vec();
        let (seq, mac) = s1.seal_in_place(&payload);
        let mut bad = mac;
        bad[0] ^= 1;
        assert!(o1.open_in_place(&payload, seq, &bad).is_err());
        o1.open_in_place(&payload, seq, &mac).unwrap();
        // Replaying the same seq must fail the ordering check.
        assert!(o1.open_in_place(&payload, seq, &mac).is_err());
    }

    #[test]
    fn sealed_ref_parses_canonical_sealed_bytes() {
        let f = fix();
        let (a1, _) = net_handshake(&f).unwrap();
        let (mut s1, _) = a1.split();
        let msg = s1.seal(b"borrowed view".to_vec());
        let bytes = qos_wire::to_bytes(&msg);
        let mut r = qos_wire::Reader::new(&bytes);
        let sref = SealedRef::parse(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(sref.payload, &msg.payload[..]);
        assert_eq!(sref.seq, msg.seq);
        assert_eq!(sref.mac, msg.mac);
    }

    #[test]
    fn resumed_channels_interoperate_with_fresh_keys() {
        let f = fix();
        let (a, b) = net_handshake(&f).unwrap();
        // Both ends derive the same master secret from the live session.
        let master_a = a.resumption_secret();
        let master_b = b.resumption_secret();
        assert_eq!(master_a, master_b);
        let peer_of_a = a.peer_cert.clone();
        let peer_of_b = b.peer_cert.clone();
        let (mut a2, mut b2) = (
            SecureChannel::resume(peer_of_a.clone(), &master_a, 91, 17, true),
            SecureChannel::resume(peer_of_b.clone(), &master_b, 91, 17, false),
        );
        let m = a2.seal(b"resumed".to_vec());
        assert_eq!(b2.open(m).unwrap(), b"resumed");
        let m = b2.seal(b"back".to_vec());
        assert_eq!(a2.open(m).unwrap(), b"back");
        // Fresh nonces ⇒ fresh key schedule: the same payload/seq MACs
        // differently than on the original session or another resumption.
        let mut a3 = SecureChannel::resume(peer_of_a, &master_a, 92, 17, true);
        let mut a4 = SecureChannel::resume(peer_of_b, &master_b, 91, 18, true);
        let s3 = a3.seal(b"payload".to_vec());
        let s4 = a4.seal(b"payload".to_vec());
        assert_ne!(s3.mac, s4.mac);
    }

    #[test]
    fn resumption_with_wrong_master_cannot_open() {
        let f = fix();
        let (a, b) = net_handshake(&f).unwrap();
        let master = a.resumption_secret();
        let mut wrong = master;
        wrong[0] ^= 1;
        let mut good = SecureChannel::resume(a.peer_cert.clone(), &master, 5, 6, true);
        let mut bad = SecureChannel::resume(b.peer_cert.clone(), &wrong, 5, 6, false);
        let m = good.seal(b"x".to_vec());
        assert!(bad.open(m).is_err());
    }

    #[test]
    fn reflected_message_rejected() {
        // A message cannot be bounced back to its sender (direction byte).
        let f = fix();
        let (mut a, _b) = handshake(
            &f.a,
            &f.b,
            &pins(&f, "domain-b"),
            &pins(&f, "domain-a"),
            7,
            Timestamp(0),
        )
        .unwrap();
        let m = a.seal(b"x".to_vec());
        assert!(a.open(m).is_err());
    }
}
