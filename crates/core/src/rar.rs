//! Resource allocation requests (RARs).
//!
//! The reservation specification (`res_spec` in the paper's §6.4
//! notation) plus the identifiers and side information a request carries
//! end-to-end.

use qos_broker::Interval;
use qos_crypto::DistinguishedName;
use qos_policy::request::Assertion;
use qos_policy::AttributeSet;

/// Globally unique identifier of one end-to-end reservation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RarId(pub u64);

impl qos_wire::Encode for RarId {
    fn encode(&self, w: &mut qos_wire::Writer) {
        w.put_u64(self.0);
    }
}

impl qos_wire::Decode for RarId {
    fn decode(r: &mut qos_wire::Reader<'_>) -> Result<Self, qos_wire::WireError> {
        Ok(RarId(r.get_u64()?))
    }
}

/// The reservation specification a user submits (§6.1: "In addition to
/// the basic bandwidth request, such as 10 Mb/s of guaranteed bandwidth,
/// this request may include additional information such as a cost that
/// the user is willing to accept and assertions and capabilities").
#[derive(Debug, Clone, PartialEq)]
pub struct ResSpec {
    /// Request identifier.
    pub rar_id: RarId,
    /// The requesting principal.
    pub requestor: DistinguishedName,
    /// Source domain name.
    pub source_domain: String,
    /// Destination domain name.
    pub dest_domain: String,
    /// The data-plane flow this reservation covers.
    pub flow: u64,
    /// Requested guaranteed bandwidth in bits/s.
    pub rate_bps: u64,
    /// Wall-clock interval of the (possibly advance) reservation.
    pub interval: Interval,
    /// Maximum total cost the user accepts, in micro-units.
    pub max_cost: Option<u64>,
    /// Coupled CPU reservation in the destination domain, if any
    /// (Figure 6's `CPU_Reservation_ID=111`).
    pub cpu_reservation_id: Option<u64>,
    /// Request this reservation as an aggregate *tunnel* (§1: users
    /// authorized for the tunnel later sub-reserve portions by contacting
    /// only the two end domains).
    pub tunnel: bool,
    /// Free-form additional attributes (cost offers, traffic-engineering
    /// parameters, …).
    pub attrs: AttributeSet,
    /// Assertions travelling with the request (e.g. group claims).
    pub assertions: Vec<Assertion>,
}

qos_wire::impl_wire_struct!(ResSpec {
    rar_id,
    requestor,
    source_domain,
    dest_domain,
    flow,
    rate_bps,
    interval,
    max_cost,
    cpu_reservation_id,
    tunnel,
    attrs,
    assertions
});

impl ResSpec {
    /// Builder with the mandatory fields; everything else defaults off.
    pub fn new(
        rar_id: RarId,
        requestor: DistinguishedName,
        source_domain: &str,
        dest_domain: &str,
        flow: u64,
        rate_bps: u64,
        interval: Interval,
    ) -> Self {
        Self {
            rar_id,
            requestor,
            source_domain: source_domain.to_string(),
            dest_domain: dest_domain.to_string(),
            flow,
            rate_bps,
            interval,
            max_cost: None,
            cpu_reservation_id: None,
            tunnel: false,
            attrs: AttributeSet::new(),
            assertions: Vec::new(),
        }
    }

    /// Attach a coupled CPU reservation id.
    pub fn with_cpu_reservation(mut self, id: u64) -> Self {
        self.cpu_reservation_id = Some(id);
        self
    }

    /// Mark as an aggregate tunnel request.
    pub fn as_tunnel(mut self) -> Self {
        self.tunnel = true;
        self
    }

    /// Cap the acceptable cost.
    pub fn with_max_cost(mut self, cost: u64) -> Self {
        self.max_cost = Some(cost);
        self
    }

    /// Add an assertion.
    pub fn with_assertion(mut self, a: Assertion) -> Self {
        self.assertions.push(a);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_crypto::Timestamp;

    #[test]
    fn wire_round_trip() {
        let spec = ResSpec::new(
            RarId(42),
            DistinguishedName::user("Alice", "ANL"),
            "domain-a",
            "domain-c",
            7,
            10_000_000,
            Interval::starting_at(Timestamp(100), 3600),
        )
        .with_cpu_reservation(111)
        .with_max_cost(5000)
        .with_assertion(Assertion::group("ATLAS"))
        .as_tunnel();
        let bytes = qos_wire::to_bytes(&spec);
        assert_eq!(qos_wire::from_bytes::<ResSpec>(&bytes).unwrap(), spec);
    }

    #[test]
    fn builders_set_fields() {
        let spec = ResSpec::new(
            RarId(1),
            DistinguishedName::user("Alice", "ANL"),
            "a",
            "c",
            1,
            1,
            Interval::starting_at(Timestamp(0), 10),
        );
        assert!(!spec.tunnel);
        assert_eq!(spec.cpu_reservation_id, None);
        let spec = spec.as_tunnel().with_cpu_reservation(9);
        assert!(spec.tunnel);
        assert_eq!(spec.cpu_reservation_id, Some(9));
    }
}
