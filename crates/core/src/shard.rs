//! N-way sharded admission core with work-stealing ingress.
//!
//! A [`ShardedNode`] runs one domain's broker as N [`BbNode`] replicas
//! (DESIGN.md §D11). Every replica shares the *same* striped
//! [`qos_broker::BrokerCore`] ledger, PDP, counter cells, and metric
//! instruments (see [`BbNode::clone_shard`]); what is partitioned is the
//! **per-request protocol state** — the pending map, tunnel books, and
//! completions. The partition key is a stable FNV-1a hash of the
//! reservation id ([`shard_of`]), which pins a reservation's whole life
//! cycle (request, approval/denial, release — and a tunnel plus all its
//! sub-flows) to one shard, so no replica ever sees half of a request.
//!
//! Each shard owns an ingress queue and the shards' worker threads obey
//! one locking rule: **a queue is only popped while holding that
//! shard's node lock.** The owner locks its own node and drains its own
//! queue; an idle worker *steals* by `try_lock`ing a victim's node and
//! draining the victim's queue under it. The rule makes per-shard FIFO
//! order a lock-ordering invariant rather than a scheduling accident —
//! whoever processes shard j's messages holds j's node lock from pop to
//! delivery, so messages for one reservation can never reorder or
//! interleave.
//!
//! Outbound messages and completions leave through a [`ShardSink`]
//! supplied by the fabric (actor mailboxes or the TCP reactor), which
//! is how both fabrics exercise this one admission core.

use crate::envelope::SignedRar;
use crate::messages::SignalMessage;
use crate::node::{BbNode, Completion};
use crate::rar::RarId;
use qos_crypto::{Certificate, DistinguishedName, Timestamp};
use qos_telemetry::{
    Counter, EventFamily, FlightEvent, FlightRecorder, Gauge, Histogram, StdClock, Telemetry,
    TraceId,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Stable shard routing: FNV-1a over the reservation id's little-endian
/// bytes, reduced modulo the shard count. Deterministic across runs,
/// platforms, and shard counts — the same key always lands on the same
/// shard for a given N, and the result is always `< shards`.
pub fn shard_of(key: u64, shards: usize) -> usize {
    debug_assert!(shards > 0, "a node needs at least one shard");
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in key.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % shards as u64) as usize
}

/// Where a shard's outputs go: the fabric seals/routes protocol
/// messages and surfaces completions. Implementations are called with
/// the shard's node lock held, so a sink must not call back into the
/// same [`ShardedNode`]'s dispatch for its *own* domain.
pub trait ShardSink: Send + Sync {
    /// Route one protocol message to `to` (a peer domain, or a
    /// `user:<domain>` completion address the fabric may drop).
    fn deliver(&self, to: &str, msg: SignalMessage);
    /// Surface a finished request at this (source) broker.
    fn complete(&self, completion: Completion);
}

/// One unit of shard ingress.
pub enum ShardMsg {
    /// An authenticated peer message (the channel layer vouches for
    /// `from`).
    Peer {
        /// Sending peer domain.
        from: String,
        /// The decoded signalling message.
        msg: Box<SignalMessage>,
        /// Queue-entry time (ns) for queue-wait attribution.
        enqueued_ns: u64,
    },
    /// A local user submission.
    Submit {
        /// The signed request.
        rar: Box<SignedRar>,
        /// The user's identity certificate.
        user_cert: Box<Certificate>,
        /// Queue-entry time (ns).
        enqueued_ns: u64,
    },
    /// A local sub-flow request inside an established tunnel.
    TunnelFlow {
        /// The tunnel reservation.
        tunnel: RarId,
        /// Sub-flow id.
        flow: u64,
        /// Requested rate.
        rate_bps: u64,
        /// Requesting user.
        requestor: Box<DistinguishedName>,
    },
    /// Advance the shard's wall clock.
    SetTime(Timestamp),
}

impl ShardMsg {
    /// The routing key: the reservation (or tunnel) id this message
    /// belongs to. `SetTime` is broadcast and never routed by key.
    fn key(&self) -> u64 {
        match self {
            ShardMsg::Peer { msg, .. } => msg.rar_id().0,
            ShardMsg::Submit { rar, .. } => rar.res_spec().rar_id.0,
            ShardMsg::TunnelFlow { tunnel, .. } => tunnel.0,
            ShardMsg::SetTime(_) => 0,
        }
    }
}

/// Everything a worker touches under one shard's node lock: the replica
/// itself plus the source-side submit times its completions are matched
/// against (submits and their approvals route to the same shard).
struct ShardState {
    node: BbNode,
    submitted_ns: HashMap<RarId, u64>,
}

struct Shard {
    state: Mutex<ShardState>,
    queue: Mutex<VecDeque<ShardMsg>>,
    depth: Gauge,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Inner {
    domain: String,
    shards: Vec<Shard>,
    /// Doorbell for idle workers: notified on every dispatch.
    bell: (Mutex<u64>, Condvar),
    stop: AtomicBool,
    sink: Arc<dyn ShardSink>,
    /// `steals[victim][thief]` — pre-resolved so every pair renders
    /// (at zero) from the first exposition.
    steals: Vec<Vec<Counter>>,
    /// Accumulated time each shard spent processing batches
    /// (`shard_busy_ns_total{shard}`) — the admin plane's `/shards`
    /// busy gauge reads these cells.
    busy: Vec<Counter>,
    /// Accumulated time each *worker* spent parked on the doorbell
    /// (`shard_idle_ns_total{worker}`).
    idle: Vec<Counter>,
    /// Flight recorder for shard-steal events, when one is attached.
    flight: Option<Arc<FlightRecorder>>,
    completion_latency: Histogram,
    mailbox_peak: Gauge,
    live: bool,
}

/// One domain's broker, sharded N ways with work-stealing ingress.
pub struct ShardedNode {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardedNode {
    /// Split `node` into `shards` replicas (see [`BbNode::clone_shard`])
    /// and start the worker pool. The pool holds
    /// `min(shards, available cores)` threads, not one per shard: a
    /// worker owns at most one shard but services every queue through
    /// the steal path, so on a box with fewer cores than shards the
    /// partitioning stays N-way (routing, ledgers, telemetry are
    /// per-shard) without oversubscribing the CPU with idle-spinning
    /// threads. Outputs leave through `sink`; shard metrics resolve
    /// against `telemetry`.
    pub fn new(
        node: BbNode,
        shards: usize,
        sink: Arc<dyn ShardSink>,
        telemetry: &Telemetry,
    ) -> Self {
        let shards = shards.max(1);
        let domain = node.domain().to_string();
        // Replicas share the original's ledger, PDP, counters, and
        // instruments; the original itself becomes shard 0.
        let mut replicas: Vec<BbNode> = (1..shards).map(|_| node.clone_shard()).collect();
        replicas.insert(0, node);
        let shard_vec: Vec<Shard> = replicas
            .into_iter()
            .enumerate()
            .map(|(i, node)| {
                let is = i.to_string();
                Shard {
                    state: Mutex::new(ShardState {
                        node,
                        submitted_ns: HashMap::new(),
                    }),
                    queue: Mutex::new(VecDeque::new()),
                    depth: telemetry.gauge(
                        "shard_queue_depth",
                        "Messages waiting in one admission shard's ingress queue",
                        &[("domain", &domain), ("shard", &is)],
                    ),
                }
            })
            .collect();
        let steals = (0..shards)
            .map(|from| {
                let fs = from.to_string();
                (0..shards)
                    .map(|to| {
                        telemetry.counter(
                            "shard_steals_total",
                            "Ingress batches stolen from one shard's queue by another shard's worker",
                            &[("domain", &domain), ("from", &fs), ("to", &to.to_string())],
                        )
                    })
                    .collect()
            })
            .collect();
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(shards);
        let worker_count = shards.min(cores).max(1);
        let busy = (0..shards)
            .map(|i| {
                telemetry.counter(
                    "shard_busy_ns_total",
                    "Accumulated time a shard's queue was being drained and processed",
                    &[("domain", &domain), ("shard", &i.to_string())],
                )
            })
            .collect();
        let idle = (0..worker_count)
            .map(|i| {
                telemetry.counter(
                    "shard_idle_ns_total",
                    "Accumulated time a shard worker spent parked waiting for work",
                    &[("domain", &domain), ("worker", &i.to_string())],
                )
            })
            .collect();
        let inner = Arc::new(Inner {
            shards: shard_vec,
            bell: (Mutex::new(0), Condvar::new()),
            stop: AtomicBool::new(false),
            sink,
            steals,
            busy,
            idle,
            flight: telemetry.flight().cloned(),
            completion_latency: telemetry.histogram(
                "bb_completion_latency_ns",
                "Submit-to-completion latency at the source broker",
                &[("domain", &domain)],
            ),
            mailbox_peak: telemetry.gauge(
                "bb_mailbox_depth_peak",
                "Peak number of messages waiting in the actor mailbox",
                &[("domain", &domain)],
            ),
            live: telemetry.is_enabled(),
            domain,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("bb-shard-{}-{i}", inner.domain))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn shard worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// The domain this sharded broker controls.
    pub fn domain(&self) -> &str {
        &self.inner.domain
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Enqueue an authenticated peer message.
    pub fn dispatch_peer(&self, from: String, msg: SignalMessage, enqueued_ns: u64) {
        self.dispatch(ShardMsg::Peer {
            from,
            msg: Box::new(msg),
            enqueued_ns,
        });
    }

    /// Enqueue a run of authenticated peer messages that arrived
    /// together (one socket read sweep), grouped per shard so each
    /// queue lock and the doorbell are taken once per run instead of
    /// once per message — and so each shard sees its slice as one
    /// contiguous run its worker can batch-verify.
    pub fn dispatch_peer_all(&self, from: &str, msgs: Vec<SignalMessage>, enqueued_ns: u64) {
        let n = self.inner.shards.len();
        let mut per_shard: Vec<Vec<ShardMsg>> = (0..n).map(|_| Vec::new()).collect();
        for msg in msgs {
            let s = shard_of(msg.rar_id().0, n);
            per_shard[s].push(ShardMsg::Peer {
                from: from.to_string(),
                msg: Box::new(msg),
                enqueued_ns,
            });
        }
        let mut touched = 0usize;
        for (s, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            touched += 1;
            let shard = &self.inner.shards[s];
            let mut q = lock(&shard.queue);
            q.extend(batch);
            let depth = q.len();
            drop(q);
            self.note_depth(s, depth);
        }
        match touched {
            0 => {}
            1 => self.ring(),
            _ => self.ring_all(),
        }
    }

    /// Enqueue a local user submission.
    pub fn dispatch_submit(&self, rar: SignedRar, user_cert: Certificate, enqueued_ns: u64) {
        self.dispatch(ShardMsg::Submit {
            rar: Box::new(rar),
            user_cert: Box::new(user_cert),
            enqueued_ns,
        });
    }

    /// Enqueue a whole submission burst at once, grouped per shard so
    /// each shard sees its slice as one contiguous run it can
    /// batch-verify.
    pub fn dispatch_submit_all(&self, requests: Vec<(SignedRar, Certificate)>) {
        let n = self.inner.shards.len();
        let now = StdClock::now();
        let mut per_shard: Vec<Vec<ShardMsg>> = (0..n).map(|_| Vec::new()).collect();
        for (rar, cert) in requests {
            let s = shard_of(rar.res_spec().rar_id.0, n);
            per_shard[s].push(ShardMsg::Submit {
                rar: Box::new(rar),
                user_cert: Box::new(cert),
                enqueued_ns: now,
            });
        }
        for (s, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let shard = &self.inner.shards[s];
            let mut q = lock(&shard.queue);
            q.extend(batch);
            let depth = q.len();
            drop(q);
            self.note_depth(s, depth);
        }
        self.ring_all();
    }

    /// Enqueue a local tunnel sub-flow request.
    pub fn dispatch_tunnel_flow(
        &self,
        tunnel: RarId,
        flow: u64,
        rate_bps: u64,
        requestor: DistinguishedName,
    ) {
        self.dispatch(ShardMsg::TunnelFlow {
            tunnel,
            flow,
            rate_bps,
            requestor: Box::new(requestor),
        });
    }

    /// Broadcast a wall-clock update to every shard (ordered with the
    /// work already queued).
    pub fn set_time(&self, now: Timestamp) {
        for (s, shard) in self.inner.shards.iter().enumerate() {
            let mut q = lock(&shard.queue);
            q.push_back(ShardMsg::SetTime(now));
            let depth = q.len();
            drop(q);
            self.note_depth(s, depth);
        }
        self.ring_all();
    }

    fn dispatch(&self, msg: ShardMsg) {
        let s = shard_of(msg.key(), self.inner.shards.len());
        let shard = &self.inner.shards[s];
        let mut q = lock(&shard.queue);
        q.push_back(msg);
        let depth = q.len();
        drop(q);
        self.note_depth(s, depth);
        self.ring();
    }

    fn note_depth(&self, s: usize, depth: usize) {
        if self.inner.live {
            self.inner.shards[s].depth.set(depth as i64);
            self.inner.mailbox_peak.record_max(depth as i64);
        }
    }

    /// Wake one idle worker. Any worker can drain any queue (the steal
    /// path), so a single waiter suffices for a single enqueued
    /// message; waking the whole pool for every frame is a thundering
    /// herd that costs real throughput when workers outnumber cores.
    /// The 10ms bounded wait in [`worker_loop`] caps the latency of any
    /// lost wakeup.
    fn ring(&self) {
        let (m, cv) = &self.inner.bell;
        *lock(m) += 1;
        cv.notify_one();
    }

    /// Wake every worker — for broadcasts ([`ShardedNode::set_time`],
    /// [`ShardedNode::dispatch_submit_all`]) that load several queues
    /// at once.
    fn ring_all(&self) {
        let (m, cv) = &self.inner.bell;
        *lock(m) += 1;
        cv.notify_all();
    }

    /// Messages currently queued across all shards.
    pub fn queued(&self) -> usize {
        self.inner.shards.iter().map(|s| lock(&s.queue).len()).sum()
    }

    /// Current queue depth of each shard (the `/healthz` vital sign).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.inner
            .shards
            .iter()
            .map(|s| lock(&s.queue).len())
            .collect()
    }

    /// Per-shard runtime stats for the admin plane's `/shards` route:
    /// `(queue depth, busy ns, batches stolen from this shard)`. Busy
    /// and steal figures read the shard's metric cells, so they are 0
    /// when no registry is installed.
    pub fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        self.inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let stolen: u64 = self.inner.steals[i].iter().map(Counter::get).sum();
                (lock(&s.queue).len(), self.inner.busy[i].get(), stolen)
            })
            .collect()
    }

    /// Per-worker accumulated idle (doorbell-parked) nanoseconds.
    pub fn worker_idle_ns(&self) -> Vec<u64> {
        self.inner.idle.iter().map(Counter::get).collect()
    }

    /// Warm-path replay across the shard boundary (DESIGN.md §D15):
    /// route by the envelope's `rar_id`, `try_lock` the owning shard,
    /// and probe its replica's reply cache
    /// ([`BbNode::revalidate_request`]). Returns `None` — and the
    /// caller must fall back to normal dispatch — on lock contention,
    /// on a cache miss, or when the shard has queued work (the replay
    /// must not jump the per-reservation FIFO the queue guarantees).
    pub fn try_revalidate(
        &self,
        from: &str,
        env: &crate::envelope_ref::EnvelopeRef<'_>,
        out: &mut Vec<u8>,
    ) -> Option<crate::node::PeerId> {
        let s = shard_of(env.rar_id().0, self.inner.shards.len());
        let shard = &self.inner.shards[s];
        let mut state = match shard.state.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        // Checked under the node lock: everything already queued (e.g. a
        // Release racing this retry) drains before anyone else can touch
        // this shard's state, so replay-after-check cannot reorder.
        if !lock(&shard.queue).is_empty() {
            return None;
        }
        state.node.revalidate_request(from, env, out)
    }

    /// Run `f` against shard 0's node. The ledger (`BrokerCore`), store
    /// and counters are shared across replicas, so any shard answers
    /// domain-wide questions — the admin plane's `/storage` route reads
    /// ledger digests and store vitals through this without stopping
    /// the workers. Briefly blocks shard 0's message processing.
    pub fn with_node<R>(&self, f: impl FnOnce(&BbNode) -> R) -> R {
        let state = lock(&self.inner.shards[0].state);
        f(&state.node)
    }

    /// Stop the workers (after draining every queue) and hand back one
    /// replica — its ledger and counters are the shared ones, so
    /// admission state reads identically from any shard.
    pub fn shutdown(mut self) -> BbNode {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.bell.1.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let inner = Arc::into_inner(self.inner).expect("workers joined, no other handles");
        inner
            .shards
            .into_iter()
            .map(|s| s.state.into_inner().unwrap_or_else(|e| e.into_inner()).node)
            .next()
            .expect("at least one shard")
    }
}

/// How many queued messages one pop takes (bounds the time a thief
/// holds a victim's node lock).
const DRAIN_BATCH: usize = 256;

fn worker_loop(inner: &Inner, me: usize) {
    let n = inner.shards.len();
    loop {
        let mut did_work = false;
        // Own shard first: blocking node lock, drain own queue under it.
        did_work |= run_shard(inner, me, me, /*try_only=*/ false);
        // Then steal: try-lock victims round-robin from our right-hand
        // neighbour so thieves spread out instead of convoying.
        for off in 1..n {
            let victim = (me + off) % n;
            did_work |= run_shard(inner, victim, me, /*try_only=*/ true);
        }
        if inner.stop.load(Ordering::SeqCst) {
            // Drain-before-exit: only stop once every queue is empty so
            // shutdown never strands an approval.
            let all_empty = inner.shards.iter().all(|s| lock(&s.queue).is_empty());
            if all_empty {
                return;
            }
            continue;
        }
        if !did_work {
            let (m, cv) = &inner.bell;
            let g = lock(m);
            let parked = StdClock::now();
            let _ = cv
                .wait_timeout(g, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
            if inner.live {
                inner.idle[me].add(StdClock::now().saturating_sub(parked));
            }
        }
    }
}

/// Pop-and-process one batch from `shard`'s queue under `shard`'s node
/// lock. Returns true if any message was processed. `try_only` is the
/// stealing mode: back off instead of blocking on a busy victim.
fn run_shard(inner: &Inner, shard_idx: usize, worker: usize, try_only: bool) -> bool {
    let shard = &inner.shards[shard_idx];
    let mut state = if try_only {
        match shard.state.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return false,
        }
    } else {
        lock(&shard.state)
    };
    // The invariant: the queue is popped only under the node lock we
    // now hold, so everything we drain is processed before anyone else
    // can touch this shard's protocol state.
    let batch: Vec<ShardMsg> = {
        let mut q = lock(&shard.queue);
        let take = q.len().min(DRAIN_BATCH);
        let b: Vec<ShardMsg> = q.drain(..take).collect();
        if inner.live {
            shard.depth.set(q.len() as i64);
        }
        b
    };
    if batch.is_empty() {
        return false;
    }
    if try_only {
        if inner.live {
            inner.steals[shard_idx][worker].inc();
        }
        if let Some(flight) = &inner.flight {
            flight.record(
                FlightEvent::new(
                    EventFamily::ShardSteal,
                    inner.domain.clone(),
                    format!("shard-{shard_idx}"),
                )
                .detail(format!("{} msgs stolen by worker {worker}", batch.len())),
            );
        }
    }
    let t0 = if inner.live { StdClock::now() } else { 0 };
    process_batch(inner, &mut state, batch);
    if inner.live {
        inner.busy[shard_idx].add(StdClock::now().saturating_sub(t0));
    }
    true
}

/// Dispatch a drained batch into the shard's replica, coalescing
/// same-kind runs so bursts hit the batch-verification fast paths
/// ([`BbNode::submit_batch`], [`BbNode::recv_requests`],
/// [`BbNode::recv_tunnel_flows`]) exactly like the serialized daemon
/// loop used to.
fn process_batch(inner: &Inner, state: &mut ShardState, batch: Vec<ShardMsg>) {
    let mut it = batch.into_iter().peekable();
    while let Some(msg) = it.next() {
        let out = match msg {
            ShardMsg::SetTime(t) => {
                state.node.set_time(t);
                continue;
            }
            ShardMsg::Submit {
                rar,
                user_cert,
                enqueued_ns,
            } => {
                let mut subs = vec![(rar, user_cert, enqueued_ns)];
                while let Some(ShardMsg::Submit { .. }) = it.peek() {
                    let Some(ShardMsg::Submit {
                        rar,
                        user_cert,
                        enqueued_ns,
                    }) = it.next()
                    else {
                        unreachable!("peeked a submit");
                    };
                    subs.push((rar, user_cert, enqueued_ns));
                }
                let mut flat = Vec::with_capacity(subs.len());
                for (rar, cert, enq) in subs {
                    let spec = rar.res_spec();
                    let (rar_id, trace) = (
                        spec.rar_id,
                        TraceId::mint(&spec.source_domain, spec.rar_id.0),
                    );
                    if inner.live {
                        state.submitted_ns.insert(rar_id, enq);
                    }
                    state.node.record_queue_wait(trace, rar_id, enq);
                    flat.push((*rar, *cert));
                }
                state.node.submit_batch(flat)
            }
            ShardMsg::TunnelFlow {
                tunnel,
                flow,
                rate_bps,
                requestor,
            } => match state
                .node
                .request_tunnel_flow(tunnel, flow, rate_bps, *requestor)
            {
                Ok(out) => out,
                Err(e) => {
                    // Rejected at the source (aggregate spent): complete
                    // immediately, as the mesh drivers do.
                    inner.sink.complete(Completion::TunnelFlow {
                        tunnel,
                        flow,
                        accepted: false,
                        reason: crate::messages::DenialCode::Other(e.to_string().into()),
                    });
                    continue;
                }
            },
            ShardMsg::Peer {
                from,
                msg,
                enqueued_ns,
            } => {
                if let Some(trace) = msg.trace_id() {
                    state
                        .node
                        .record_queue_wait(trace, msg.rar_id(), enqueued_ns);
                }
                match *msg {
                    SignalMessage::Request(rar) => {
                        let mut reqs = vec![(from, rar)];
                        while matches!(
                            it.peek(),
                            Some(ShardMsg::Peer { msg, .. })
                                if matches!(msg.as_ref(), SignalMessage::Request(_))
                        ) {
                            let Some(ShardMsg::Peer {
                                from: f2,
                                msg: m2,
                                enqueued_ns: e2,
                            }) = it.next()
                            else {
                                unreachable!("peeked a request");
                            };
                            if let Some(trace) = m2.trace_id() {
                                state.node.record_queue_wait(trace, m2.rar_id(), e2);
                            }
                            let SignalMessage::Request(r2) = *m2 else {
                                unreachable!("matched a request");
                            };
                            reqs.push((f2, r2));
                        }
                        state.node.recv_requests(reqs)
                    }
                    SignalMessage::TunnelFlow(t) => {
                        let mut flows = vec![(from, t)];
                        while matches!(
                            it.peek(),
                            Some(ShardMsg::Peer { msg, .. })
                                if matches!(msg.as_ref(), SignalMessage::TunnelFlow(_))
                        ) {
                            let Some(ShardMsg::Peer {
                                from: f2, msg: m2, ..
                            }) = it.next()
                            else {
                                unreachable!("peeked a tunnel flow");
                            };
                            let SignalMessage::TunnelFlow(t2) = *m2 else {
                                unreachable!("matched a tunnel flow");
                            };
                            flows.push((f2, t2));
                        }
                        state.node.recv_tunnel_flows(flows)
                    }
                    other => state.node.recv(&from, other),
                }
            }
        };
        for (to, m) in out {
            inner.sink.deliver(&to, m);
        }
        for c in state.node.take_completions() {
            if inner.live {
                if let Completion::Reservation { rar_id, .. } = &c {
                    if let Some(t0) = state.submitted_ns.remove(rar_id) {
                        inner
                            .completion_latency
                            .observe(StdClock::now().saturating_sub(t0));
                    }
                }
            }
            inner.sink.complete(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_total() {
        for n in 1..=16usize {
            for key in (0..512u64).chain([u64::MAX, u64::MAX - 1, 1 << 40]) {
                let s = shard_of(key, n);
                assert!(s < n, "key {key} shards {n}");
                assert_eq!(s, shard_of(key, n), "deterministic");
            }
        }
    }

    #[test]
    fn shard_of_spreads_keys() {
        // Not a uniformity proof — just that FNV over sequential ids
        // does not collapse onto one shard.
        let n = 4;
        let mut counts = vec![0usize; n];
        for key in 0..1000u64 {
            counts[shard_of(key, n)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 100, "shard {i} got {c} of 1000 keys");
        }
    }
}
