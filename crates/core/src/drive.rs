//! Deterministic virtual-time driver for a mesh of brokers.
//!
//! The [`Mesh`] owns the per-domain [`BbNode`]s, a latency matrix, and a
//! virtual-time scheduler (reusing `qos_net`'s DES engine). Every message
//! a node emits is delivered after the configured inter-domain latency;
//! completions and message traffic are logged with timestamps, which is
//! what the FIG3/FIG5/EXP-L/EXP-T experiments measure. Optionally a live
//! [`qos_net::Network`] is attached, and every edge-configuration command
//! brokers emit is applied to it — connecting the control plane built
//! here to the data plane of `qos-net` (FIG4).

use crate::envelope::SignedRar;
use crate::messages::{DenialCode, DirectRequest, SignalMessage};
use crate::node::{BbNode, Completion, PeerId};
use crate::rar::RarId;
use qos_crypto::{Certificate, DistinguishedName, Timestamp};
use qos_net::des::Scheduler;
use qos_net::{Network, SimDuration, SimTime};
use qos_telemetry::ManualClock;
use std::collections::HashMap;
use std::sync::Arc;

/// A timestamped record of one delivered message (for experiment
/// accounting).
#[derive(Debug, Clone, PartialEq)]
pub struct MsgRecord {
    /// Delivery time.
    pub at: SimTime,
    /// Sending entity (domain name, or `user:<domain>` for submissions).
    pub from: String,
    /// Receiving domain.
    pub to: String,
    /// Message discriminant (`Request`, `Approve`, …).
    pub kind: &'static str,
}

fn kind_of(msg: &SignalMessage) -> &'static str {
    match msg {
        SignalMessage::Request(_) => "Request",
        SignalMessage::Approve(_) => "Approve",
        SignalMessage::Deny(_) => "Deny",
        SignalMessage::Direct(_) => "Direct",
        SignalMessage::DirectReply(_) => "DirectReply",
        SignalMessage::TunnelFlow(_) => "TunnelFlow",
        SignalMessage::TunnelFlowReply(_) => "TunnelFlowReply",
        SignalMessage::Release(_) => "Release",
        SignalMessage::TunnelFlowRelease(_) => "TunnelFlowRelease",
    }
}

// Boxed payloads keep the event small despite `SignedRar`'s size (the
// scheduler stores thousands of pending events in larger sweeps).
#[allow(clippy::large_enum_variant)]
enum MeshEvent {
    Deliver {
        from: String,
        to: String,
        msg: SignalMessage,
    },
    Submit {
        domain: String,
        rar: Box<SignedRar>,
        user_cert: Box<Certificate>,
    },
    TunnelFlow {
        domain: String,
        tunnel: RarId,
        flow: u64,
        rate_bps: u64,
        requestor: DistinguishedName,
    },
    Release {
        domain: String,
        rar_id: RarId,
    },
}

/// The broker mesh under a deterministic virtual clock.
pub struct Mesh {
    nodes: HashMap<String, BbNode>,
    latency: HashMap<(String, String), SimDuration>,
    sched: Scheduler<MeshEvent>,
    network: Option<Network>,
    completions: Vec<(SimTime, String, Completion)>,
    msg_log: Vec<MsgRecord>,
    agent_inbox: Vec<(SimTime, SignalMessage)>,
    processing_delay: SimDuration,
    sim_clock: Option<ManualClock>,
}

impl Default for Mesh {
    fn default() -> Self {
        Self::new()
    }
}

impl Mesh {
    /// An empty mesh.
    pub fn new() -> Self {
        Self {
            nodes: HashMap::new(),
            latency: HashMap::new(),
            sched: Scheduler::new(),
            network: None,
            completions: Vec::new(),
            msg_log: Vec::new(),
            agent_inbox: Vec::new(),
            processing_delay: SimDuration::ZERO,
            sim_clock: None,
        }
    }

    /// Install a shared virtual-time clock on every broker (present and
    /// future): span timestamps then carry simulated nanoseconds instead
    /// of wall time, advanced by this scheduler as events dispatch. The
    /// returned clone reads the same cell.
    pub fn install_sim_clock(&mut self) -> ManualClock {
        let clock = ManualClock::new();
        for node in self.nodes.values_mut() {
            node.set_clock(Arc::new(clock.clone()));
        }
        self.sim_clock = Some(clock.clone());
        clock
    }

    /// Model per-message broker processing cost (signature checks,
    /// policy evaluation, admission control): every message a broker
    /// emits leaves `delay` after the triggering message arrived.
    pub fn set_processing_delay(&mut self, delay: SimDuration) {
        self.processing_delay = delay;
    }

    /// Attach a live data plane; brokers' edge commands are applied to it.
    pub fn attach_network(&mut self, network: Network) {
        self.network = Some(network);
    }

    /// Access the attached data plane.
    pub fn network(&self) -> Option<&Network> {
        self.network.as_ref()
    }

    /// Mutable access to the attached data plane (to add flows / run it).
    pub fn network_mut(&mut self) -> Option<&mut Network> {
        self.network.as_mut()
    }

    /// Add a broker.
    pub fn add_node(&mut self, mut node: BbNode) {
        if let Some(clock) = &self.sim_clock {
            node.set_clock(Arc::new(clock.clone()));
        }
        self.nodes.insert(node.domain().to_string(), node);
    }

    /// Set the one-way signalling latency between two domains (both
    /// directions).
    pub fn set_latency(&mut self, a: &str, b: &str, latency: SimDuration) {
        self.latency.insert((a.to_string(), b.to_string()), latency);
        self.latency.insert((b.to_string(), a.to_string()), latency);
    }

    /// One-way latency between two domains: the configured pair, or the
    /// sum along the hop-by-hop route (a direct channel crosses the same
    /// wires).
    pub fn latency_between(&self, from: &str, to: &str) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        if let Some(&l) = self.latency.get(&(from.to_string(), to.to_string())) {
            return l;
        }
        // Walk the route table, summing per-hop latencies.
        let mut total = SimDuration::ZERO;
        let mut at = from.to_string();
        let mut hops = 0;
        while at != to {
            let Some(node) = self.nodes.get(&at) else {
                return SimDuration::ZERO;
            };
            let Some(next) = node.route_towards(to) else {
                return SimDuration::ZERO;
            };
            total = total
                + self
                    .latency
                    .get(&(at.clone(), next.clone()))
                    .copied()
                    .unwrap_or(SimDuration::ZERO);
            at = next;
            hops += 1;
            if hops > self.nodes.len() {
                return SimDuration::ZERO;
            }
        }
        total
    }

    /// Borrow a broker.
    pub fn node(&self, domain: &str) -> &BbNode {
        &self.nodes[domain]
    }

    /// Mutably borrow a broker.
    pub fn node_mut(&mut self, domain: &str) -> &mut BbNode {
        self.nodes.get_mut(domain).expect("unknown domain")
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Completions observed so far (time, domain, completion).
    pub fn completions(&self) -> &[(SimTime, String, Completion)] {
        &self.completions
    }

    /// Message log.
    pub fn msg_log(&self) -> &[MsgRecord] {
        &self.msg_log
    }

    /// Messages delivered to non-broker entities (end-to-end agents).
    pub fn agent_inbox(&self) -> &[(SimTime, SignalMessage)] {
        &self.agent_inbox
    }

    /// Current agent-inbox length (sequential agents use this to find
    /// the replies a step produced).
    pub fn agent_inbox_len(&self) -> usize {
        self.agent_inbox.len()
    }

    /// Count delivered messages of `kind` addressed to `domain`.
    pub fn messages_to(&self, domain: &str, kind: &str) -> usize {
        self.msg_log
            .iter()
            .filter(|m| m.to == domain && m.kind == kind)
            .count()
    }

    /// Submit a user request to its home broker after `delay`.
    pub fn submit_in(
        &mut self,
        delay: SimDuration,
        domain: &str,
        rar: SignedRar,
        user_cert: Certificate,
    ) {
        self.sched.schedule_in(
            delay,
            MeshEvent::Submit {
                domain: domain.to_string(),
                rar: Box::new(rar),
                user_cert: Box::new(user_cert),
            },
        );
    }

    /// Ask the source broker for a tunnel sub-flow after `delay`.
    pub fn tunnel_flow_in(
        &mut self,
        delay: SimDuration,
        domain: &str,
        tunnel: RarId,
        flow: u64,
        rate_bps: u64,
        requestor: DistinguishedName,
    ) {
        self.sched.schedule_in(
            delay,
            MeshEvent::TunnelFlow {
                domain: domain.to_string(),
                tunnel,
                flow,
                rate_bps,
                requestor,
            },
        );
    }

    /// Run each broker's expiry sweep at wall-clock `wall` and apply the
    /// resulting edge reconfiguration. Returns the number of
    /// reservations expired across the mesh. (Expiry is local to each
    /// domain — the interval is part of the signed spec, so no
    /// signalling is needed.)
    pub fn expire_all_at(&mut self, wall: Timestamp) -> usize {
        let domains: Vec<String> = self.nodes.keys().cloned().collect();
        let mut total = 0;
        for d in domains {
            let node = self.nodes.get_mut(&d).expect("listed");
            node.set_time(wall);
            total += node.expire(wall).len();
            self.after_dispatch(&d, Vec::new());
        }
        total
    }

    /// Tear down a standing reservation from its source domain after
    /// `delay`.
    pub fn release_in(&mut self, delay: SimDuration, domain: &str, rar_id: RarId) {
        self.sched.schedule_in(
            delay,
            MeshEvent::Release {
                domain: domain.to_string(),
                rar_id,
            },
        );
    }

    /// Inject an Approach-1 direct request from `agent_domain`'s
    /// end-to-end agent to `target` after `delay` (plus the inter-domain
    /// latency).
    pub fn direct_request_in(
        &mut self,
        delay: SimDuration,
        agent_domain: &str,
        target: &str,
        req: DirectRequest,
    ) {
        let lat = self.latency_between(agent_domain, target);
        self.sched.schedule_in(
            delay + lat,
            MeshEvent::Deliver {
                from: format!("user:{agent_domain}"),
                to: target.to_string(),
                msg: SignalMessage::Direct(req),
            },
        );
    }

    fn wall_clock(&self) -> Timestamp {
        Timestamp(self.sched.now().as_nanos() / 1_000_000_000)
    }

    /// Run until no events remain. Returns the number of events
    /// processed.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut processed = 0;
        while let Some((now, event)) = self.sched.pop() {
            processed += 1;
            if let Some(clock) = &self.sim_clock {
                clock.set_ns(now.as_nanos());
            }
            match event {
                MeshEvent::Deliver { from, to, msg } => {
                    self.msg_log.push(MsgRecord {
                        at: now,
                        from: from.clone(),
                        to: to.clone(),
                        kind: kind_of(&msg),
                    });
                    let wall = self.wall_clock();
                    let peer_from = from.strip_prefix("user:").unwrap_or(&from).to_string();
                    let Some(node) = self.nodes.get_mut(&to) else {
                        // Addressed to a non-broker entity (an agent).
                        self.agent_inbox.push((now, msg));
                        continue;
                    };
                    node.set_time(wall);
                    let out = node.recv(&peer_from, msg);
                    self.after_dispatch(&to, out);
                }
                MeshEvent::Submit {
                    domain,
                    rar,
                    user_cert,
                } => {
                    let wall = self.wall_clock();
                    let node = self.nodes.get_mut(&domain).expect("unknown domain");
                    node.set_time(wall);
                    let out = node.submit(*rar, &user_cert);
                    self.after_dispatch(&domain, out);
                }
                MeshEvent::Release { domain, rar_id } => {
                    let wall = self.wall_clock();
                    let node = self.nodes.get_mut(&domain).expect("unknown domain");
                    node.set_time(wall);
                    match node.initiate_release(rar_id) {
                        Ok(out) => self.after_dispatch(&domain, out),
                        Err(_) => {
                            // Releasing an unknown reservation is a no-op.
                            self.after_dispatch(&domain, Vec::new());
                        }
                    }
                }
                MeshEvent::TunnelFlow {
                    domain,
                    tunnel,
                    flow,
                    rate_bps,
                    requestor,
                } => {
                    let wall = self.wall_clock();
                    let node = self.nodes.get_mut(&domain).expect("unknown domain");
                    node.set_time(wall);
                    match node.request_tunnel_flow(tunnel, flow, rate_bps, requestor) {
                        Ok(out) => self.after_dispatch(&domain, out),
                        Err(e) => self.completions.push((
                            self.sched.now(),
                            domain.clone(),
                            Completion::TunnelFlow {
                                tunnel,
                                flow,
                                accepted: false,
                                reason: DenialCode::Other(e.to_string().into()),
                            },
                        )),
                    }
                }
            }
        }
        processed
    }

    fn after_dispatch(&mut self, domain: &str, out: Vec<(PeerId, SignalMessage)>) {
        let now = self.sched.now();
        // Collect completions and edge commands from the node.
        let (completions, cmds) = {
            let node = self.nodes.get_mut(domain).expect("dispatched domain");
            (node.take_completions(), node.take_edge_commands())
        };
        for c in completions {
            self.completions.push((now, domain.to_string(), c));
        }
        if let Some(net) = self.network.as_mut() {
            for cmd in cmds {
                qos_broker::EdgeControl::apply(net, cmd);
            }
        }
        for (to, msg) in out {
            let lat = self.latency_between(domain, to.strip_prefix("user:").unwrap_or(&to));
            self.sched.schedule_in(
                self.processing_delay + lat,
                MeshEvent::Deliver {
                    from: domain.to_string(),
                    to: to.to_string(),
                    msg,
                },
            );
        }
    }

    /// The most recent reservation completion for `rar_id` at `domain`,
    /// with its timestamp.
    pub fn reservation_outcome(
        &self,
        domain: &str,
        rar_id: RarId,
    ) -> Option<(SimTime, &Completion)> {
        self.completions
            .iter()
            .rev()
            .find(|(_, d, c)| {
                d == domain
                    && matches!(c,
                        Completion::Reservation { rar_id: id, .. } if *id == rar_id)
            })
            .map(|(t, _, c)| (*t, c))
    }
}
