//! Protocol-level errors.

use crate::rar::RarId;
use qos_crypto::{CryptoError, DistinguishedName};
use std::fmt;

/// Why a signalling step failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A layer signature failed under the expected key.
    LayerSignature {
        /// The layer's claimed signer.
        signer: DistinguishedName,
    },
    /// The envelope's declared path is inconsistent: a layer addressed to
    /// one broker was wrapped by a different one.
    PathMismatch {
        /// Whom the inner layer addressed.
        expected: DistinguishedName,
        /// Who actually wrapped it.
        found: DistinguishedName,
    },
    /// The envelope is deeper than the local trust policy allows.
    ChainTooDeep {
        /// Observed depth (broker layers).
        depth: usize,
        /// Local limit.
        limit: usize,
    },
    /// A certificate or capability check failed.
    Crypto(CryptoError),
    /// The request referenced an unknown peer/SLA.
    UnknownPeer {
        /// The peer domain.
        peer: String,
    },
    /// A secure-channel error (handshake or message authentication).
    Channel(String),
    /// Local denial (policy or admission), to be propagated upstream.
    Denied {
        /// The request.
        rar_id: RarId,
        /// The denying domain.
        domain: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The message referenced an unknown in-flight request.
    UnknownRar(RarId),
    /// A tunnel operation referenced an unknown or exhausted tunnel.
    Tunnel(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::LayerSignature { signer } => {
                write!(f, "envelope layer signed by {signer} failed verification")
            }
            CoreError::PathMismatch { expected, found } => {
                write!(
                    f,
                    "path mismatch: layer addressed {expected}, wrapped by {found}"
                )
            }
            CoreError::ChainTooDeep { depth, limit } => {
                write!(
                    f,
                    "envelope depth {depth} exceeds trust-policy limit {limit}"
                )
            }
            CoreError::Crypto(e) => write!(f, "{e}"),
            CoreError::UnknownPeer { peer } => write!(f, "no SLA/peering with {peer}"),
            CoreError::Channel(m) => write!(f, "secure channel: {m}"),
            CoreError::Denied {
                rar_id,
                domain,
                reason,
            } => write!(f, "request {rar_id:?} denied by {domain}: {reason}"),
            CoreError::UnknownRar(id) => write!(f, "unknown request {id:?}"),
            CoreError::Tunnel(m) => write!(f, "tunnel: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<CryptoError> for CoreError {
    fn from(e: CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}
