//! Scoped worker pool for independent signature checks.
//!
//! Envelope layers and tunnel sub-flow requests are verified under
//! *different* keys over *different* bytes, so the checks are
//! embarrassingly parallel. This module fans such work out across
//! `crossbeam::thread::scope` workers — borrowed inputs, no `'static`
//! bounds, results returned in input order.
//!
//! Threads are only spawned when the batch is big enough to amortise
//! thread start-up (a Schnorr verification is a few microseconds; a
//! thread spawn is tens). Small batches run inline on the caller's
//! thread, so callers can use one code path for any batch size.

use crossbeam::thread;
use qos_crypto::{PublicKey, Signature};

/// Cap on worker threads: verification is CPU-bound, so more threads
/// than cores only add scheduling noise, and signalling nodes should
/// not monopolise wide machines.
const MAX_WORKERS: usize = 8;

/// Batches smaller than this run inline — the fan-out cost would exceed
/// the verification cost.
const PARALLEL_THRESHOLD: usize = 4;

/// Apply `f` to every item, fanning out across scoped worker threads
/// when the batch is large enough. Results are in input order; panics
/// in `f` propagate to the caller (std scoped-thread semantics).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let workers = cores.min(MAX_WORKERS).min(items.len());
    if workers < 2 || items.len() < PARALLEL_THRESHOLD {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let fr = &f;
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| s.spawn(move || part.iter().map(fr).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("verification worker panicked"))
            .collect()
    })
    .expect("thread scope")
}

/// Verify each `(message, key, signature)` triple independently,
/// in parallel. Returns one verdict per input, in order.
///
/// This is the *attribution* path: [`qos_crypto::verify_batch`] answers
/// "are they all valid?" with one multi-exponentiation, and this
/// answers "which one is not?" when that combined check fails. Each
/// check goes through the process-wide verification cache, so the good
/// items of a poisoned batch (typically all but one) cost a hash each.
pub fn verify_each(items: &[(&[u8], PublicKey, Signature)]) -> Vec<bool> {
    parallel_map(items, |&(msg, pk, sig)| {
        qos_crypto::vcache::verify(msg, pk, &sig)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_crypto::KeyPair;

    #[test]
    fn map_matches_serial_at_every_size() {
        for n in [0usize, 1, 3, 4, 7, 64] {
            let items: Vec<u64> = (0..n as u64).collect();
            let got = parallel_map(&items, |&x| x * x + 1);
            let want: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn verify_each_flags_only_the_tampered_item() {
        let keys: Vec<KeyPair> = (1u8..=8).map(|i| KeyPair::from_seed(&[i; 4])).collect();
        let msgs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 16]).collect();
        let mut sigs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
        sigs[5].s ^= 1;
        let items: Vec<(&[u8], PublicKey, _)> = keys
            .iter()
            .zip(&msgs)
            .zip(&sigs)
            .map(|((k, m), s)| (m.as_slice(), k.public(), *s))
            .collect();
        let verdicts = verify_each(&items);
        for (i, ok) in verdicts.iter().enumerate() {
            assert_eq!(*ok, i != 5, "index {i}");
        }
    }
}
