//! The per-domain bandwidth-broker protocol engine.
//!
//! A [`BbNode`] is one domain's broker as §6 describes it: it terminates
//! mutually authenticated peer channels, runs the source / intermediate /
//! destination steps of the signalling protocol (§6.1–6.3), drives the
//! local [`qos_broker::BrokerCore`] through the two-phase hold → commit /
//! release cycle, consults its [`qos_policy::PolicyServer`], delegates
//! capability certificates downstream, emits edge-router configuration,
//! and manages tunnels.
//!
//! The node is a **pure state machine**: `submit`/`recv` return the
//! messages to transmit, and drivers (synchronous, virtual-time, or
//! threaded — see [`crate::drive`] and [`crate::runtime`]) decide how
//! those messages travel. That separation is what lets the same protocol
//! code run under deterministic latency experiments and live threads.

use crate::audit::{AuditEvent, AuditLog};
use crate::envelope::{RarLayer, SignedRar};
use crate::error::CoreError;
use crate::flowtable::{FlowTable, TimerWheel, EXPIRY_NEVER, MAX_FLOW_RATE_BPS};
use crate::messages::{
    Approval, Denial, DenialCode, DirectReply, DirectRequest, Release, SignalMessage,
    TunnelFlowRelease, TunnelFlowReply, TunnelFlowRequest,
};
use crate::rar::RarId;
use crate::trust::{verify_rar, KeySource, VerifiedRar};
use qos_broker::{BrokerCore, EdgeCommand, Interval, PathSegment, ReservationId, Sla};
use qos_crypto::sha256::{sha256, Digest};
use qos_crypto::{
    Certificate, DelegationChain, DistinguishedName, KeyPair, PublicKey, Restriction, Signature,
    Timestamp, TrustPolicy, Validity,
};
use qos_net::conditioner::{ExcessTreatment, TrafficProfile};
use qos_net::{FlowId, LinkId, NodeId};
use qos_policy::request::VerifiedCapability;
use qos_policy::{Assertion, AttributeSet, GroupServer, PolicyServer, ReservationOracle, Value};
use qos_storage::{LedgerRecord, LedgerSnapshot, Recovered, SharedStore, SnapTicket};
use qos_telemetry::{
    Clock, Counter, EventFamily, FlightEvent, Gauge, Histogram, Span, SpanKind, StdClock,
    Telemetry, TraceId, Tracer,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An interned peer/domain address on broker outputs. Reply addresses
/// on the tunnel fast path are reference-counted clones of the domain
/// name learned at reservation time — no per-reply `String` allocation
/// (DESIGN.md §D14).
pub type PeerId = Arc<str>;

/// Binding from this domain's broker to its data plane.
#[derive(Debug, Clone, Default)]
pub struct EdgeBinding {
    /// First-hop router where per-flow classifiers are installed (source
    /// domains).
    pub first_router: Option<NodeId>,
    /// Domain-ingress link per upstream peer, where aggregate policers
    /// live.
    pub ingress_links: HashMap<String, LinkId>,
}

/// A finished request, as observed at the source domain.
#[derive(Debug, Clone, PartialEq)]
pub enum Completion {
    /// End-to-end reservation finished.
    Reservation {
        /// The request.
        rar_id: RarId,
        /// Approval (with the full endorsement chain) or the denial.
        result: Result<Approval, Denial>,
    },
    /// A tunnel sub-flow request finished.
    TunnelFlow {
        /// The tunnel.
        tunnel: RarId,
        /// The sub-flow.
        flow: u64,
        /// Accepted by the destination?
        accepted: bool,
        /// Denial code on rejection ([`DenialCode::None`] on success).
        reason: DenialCode,
    },
}

/// Message/crypto counters for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Messages received.
    pub rx: u64,
    /// Messages sent.
    pub tx: u64,
    /// Signatures created.
    pub signed: u64,
    /// Signatures verified (envelope layers, approvals, capabilities).
    pub verified: u64,
}

/// Single-storage counter cells: the node increments these directly, and
/// [`BbNode::install_telemetry`] registers the very same `Arc`s with the
/// registry — [`BbNode::counters`] and the Prometheus exposition read one
/// set of atomics, so they can never diverge.
#[derive(Debug, Clone, Default)]
struct CounterCells {
    rx: Arc<AtomicU64>,
    tx: Arc<AtomicU64>,
    signed: Arc<AtomicU64>,
    verified: Arc<AtomicU64>,
}

impl CounterCells {
    #[inline]
    fn add_rx(&self, n: u64) {
        self.rx.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    fn add_tx(&self, n: u64) {
        self.tx.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    fn add_signed(&self, n: u64) {
        self.signed.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    fn add_verified(&self, n: u64) {
        self.verified.fetch_add(n, Ordering::Relaxed);
    }
    fn snapshot(&self) -> NodeCounters {
        NodeCounters {
            rx: self.rx.load(Ordering::Relaxed),
            tx: self.tx.load(Ordering::Relaxed),
            signed: self.signed.load(Ordering::Relaxed),
            verified: self.verified.load(Ordering::Relaxed),
        }
    }
}

/// Resolved metric instruments. `Default` handles are detached no-ops, so
/// a node without [`BbNode::install_telemetry`] pays one `None` check per
/// operation and allocates nothing.
#[derive(Debug, Clone, Default)]
struct NodeInstruments {
    verify_ns: Histogram,
    sign_ns: Histogram,
    decide_ns: Histogram,
    queue_wait_ns: Histogram,
    admission_held: Counter,
    admission_refused: Counter,
    completions_ok: Counter,
    completions_denied: Counter,
    audit_dropped: Gauge,
    /// Tunnel fast path (DESIGN.md §D14): per-sub-flow admission time at
    /// the destination, held-record occupancy across both tunnel ends,
    /// and expiry-wheel sweeps.
    flow_admit_ns: Histogram,
    flow_table_occupancy: Gauge,
    flow_expiry_sweeps: Counter,
}

struct Pending {
    upstream: Option<String>,
    requestor: DistinguishedName,
    flow: u64,
    rate_bps: u64,
    interval: Interval,
    segment: PathSegment,
    tunnel: bool,
    trace: TraceId,
}

/// Default bound on cached warm-path replies per node.
pub const REPLY_CACHE_DEFAULT_CAPACITY: usize = 1024;

/// One remembered single-message reply to a byte-identical `Request`
/// envelope (DESIGN.md §D15).
struct CachedReply {
    /// Outer envelope signature — the digest key covers the layer bytes
    /// only, so a hit additionally requires signature equality (same
    /// discipline as the RAR memo).
    sig: Signature,
    /// The peer the original request arrived from.
    from: PeerId,
    /// Where the reply went.
    to: PeerId,
    /// Request id, for release-time invalidation.
    rar_id: RarId,
    /// Broker clock at decision time — a hit requires the same instant,
    /// so state drift across clock ticks can never replay a stale
    /// verdict (the memo key makes the same choice).
    now: Timestamp,
    /// The encoded `SignalMessage` reply.
    bytes: Vec<u8>,
    stamp: u64,
}

/// Per-node warm-path reply cache (DESIGN.md §D15): signalling retries
/// and two-phase re-sends deliver byte-identical `Request` envelopes in
/// the steady state. Replaying the recorded reply is not only
/// allocation-free — it also makes retried requests genuinely
/// idempotent (the slow path re-runs hold/forward bookkeeping).
///
/// Only `Approve` and forwarded-`Request` replies are cached; denials
/// always re-run the full path, because a deny verdict (capacity, cost)
/// can legitimately flip once other traffic releases. Entries for a
/// reservation are dropped the moment its `Release` is seen.
struct ReplyCache {
    map: HashMap<Digest, CachedReply>,
    by_rar: HashMap<RarId, Vec<Digest>>,
    tick: u64,
    cap: usize,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
}

impl Default for ReplyCache {
    fn default() -> Self {
        ReplyCache {
            map: HashMap::new(),
            by_rar: HashMap::new(),
            tick: 0,
            cap: REPLY_CACHE_DEFAULT_CAPACITY,
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            evictions: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl ReplyCache {
    fn probe(
        &mut self,
        key: &Digest,
        sig: Signature,
        from: &str,
        now: Timestamp,
    ) -> Option<(PeerId, &[u8])> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(e) if e.sig == sig && e.from.as_ref() == from && e.now == now => {
                e.stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((e.to.clone(), &e.bytes))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&mut self, key: Digest, entry: CachedReply) {
        self.tick += 1;
        let tick = self.tick;
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                self.remove_key(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.by_rar.entry(entry.rar_id).or_default().push(key);
        self.map.insert(
            key,
            CachedReply {
                stamp: tick,
                ..entry
            },
        );
    }

    fn remove_key(&mut self, key: &Digest) {
        if let Some(e) = self.map.remove(key) {
            if let Some(keys) = self.by_rar.get_mut(&e.rar_id) {
                keys.retain(|k| k != key);
                if keys.is_empty() {
                    self.by_rar.remove(&e.rar_id);
                }
            }
        }
    }

    fn invalidate_rar(&mut self, rar_id: RarId) {
        if let Some(keys) = self.by_rar.remove(&rar_id) {
            for k in keys {
                self.map.remove(&k);
            }
        }
    }
}

/// Source end of an established tunnel. Per-flow state lives in compact
/// [`FlowTable`]s (16 B records, no per-flow heap allocation) and the
/// in-flight sum is a counter maintained incrementally — admission never
/// iterates flows (the pre-§D14 path summed a `HashMap` per request).
struct TunnelSrc {
    dest_domain: PeerId,
    dest_pk: PublicKey,
    aggregate_bps: u64,
    allocated_bps: u64,
    /// Sum of rates awaiting a destination reply (≡ `pending_flows`
    /// rate sum at all times).
    pending_bps: u64,
    interval: Interval,
    /// Flows awaiting the destination's reply; `expiry` carries the
    /// requested hold tick ([`EXPIRY_NEVER`] = explicit release only).
    pending_flows: FlowTable,
    /// Accepted flows, so hold expiry and teardown know the rate to
    /// return without the caller restating it.
    held_flows: FlowTable,
}

/// Destination end of an established tunnel.
struct TunnelDst {
    source_pk: PublicKey,
    source_domain: PeerId,
    aggregate_bps: u64,
    allocated_bps: u64,
    /// Admitted sub-flows (rate per flow id).
    flows: FlowTable,
}

/// Per-domain broker configuration.
pub struct BbConfig {
    /// Domain name.
    pub domain: String,
    /// Broker key pair.
    pub key: KeyPair,
    /// Broker certificate.
    pub cert: Certificate,
    /// Policy source text for the local PDP.
    pub policy_src: String,
    /// Local group server.
    pub groups: GroupServer,
    /// Domain-internal EF capacity.
    pub local_capacity_bps: u64,
    /// Maximum acceptable introducer-chain depth.
    pub trust_policy: TrustPolicy,
    /// Trusted community authorization servers (issuer CN → key).
    pub cas_keys: HashMap<String, PublicKey>,
    /// CA trusted for user identity certificates.
    pub user_ca: PublicKey,
    /// Enable the structured audit trail from the start.
    pub audit: bool,
    /// Audit-trail capacity (events retained before eviction).
    pub audit_capacity: usize,
    /// Metrics destination; [`Telemetry::disabled`] (the conventional
    /// default) makes every instrument a no-op.
    pub telemetry: Telemetry,
    /// Record per-request trace spans.
    pub tracing: bool,
}

struct CpuOracle<'a>(&'a HashSet<u64>);

impl ReservationOracle for CpuOracle<'_> {
    fn has_valid_cpu_reservation(&self, id: i64) -> bool {
        id >= 0 && self.0.contains(&(id as u64))
    }
}

/// Hook that lets a higher layer (the transport's ticket issuer) fold
/// its own state into every exported ledger snapshot.
pub type SnapshotExtra = Arc<dyn Fn(&mut LedgerSnapshot) + Send + Sync>;

/// One domain's bandwidth broker.
pub struct BbNode {
    domain: String,
    dn: DistinguishedName,
    key: KeyPair,
    cert: Certificate,
    now: Timestamp,
    core: BrokerCore,
    pdp: Arc<PolicyServer>,
    trust_policy: TrustPolicy,
    cas_keys: HashMap<String, PublicKey>,
    user_ca: PublicKey,
    peers: HashMap<String, Certificate>,
    routes: HashMap<String, String>,
    edge: EdgeBinding,
    pending: HashMap<RarId, Pending>,
    completions: Vec<Completion>,
    edge_cmds: Vec<EdgeCommand>,
    cpu_reservations: HashSet<u64>,
    direct_users: HashMap<DistinguishedName, PublicKey>,
    tunnels_src: HashMap<RarId, TunnelSrc>,
    tunnels_dst: HashMap<RarId, TunnelDst>,
    /// Hold-expiry wheel over source-side held sub-flows (ticks are
    /// seconds of broker wall clock). Entries are `(tunnel, flow)`;
    /// cancellation is lazy — a fired entry whose flow is gone or whose
    /// hold was extended is skipped against `held_flows`.
    flow_expiry: TimerWheel<(RarId, u64)>,
    counters: CounterCells,
    audit: AuditLog,
    telemetry: Telemetry,
    instruments: NodeInstruments,
    tracer: Tracer,
    clock: Arc<dyn Clock>,
    verified_paths: HashMap<RarId, Vec<DistinguishedName>>,
    replies: ReplyCache,
    /// Augments ledger snapshots with transport-layer state (resumption
    /// tickets) — installed by the daemon, shared across shard replicas.
    snapshot_extra: Option<SnapshotExtra>,
    /// Ticket state found during recovery replay, parked here until the
    /// transport layer collects it with [`BbNode::take_recovered_tickets`].
    recovered_tickets: RecoveredTickets,
}

/// Transport-layer ticket state recovered from the durable ledger: the
/// persisted issuer key plus every live issued-ticket entry.
#[derive(Debug, Clone, Default)]
pub struct RecoveredTickets {
    /// The ticket-issuer key (32 bytes) persisted at first startup.
    pub key: Option<Vec<u8>>,
    /// Authoritative server-side entries for issued tickets.
    pub tickets: Vec<SnapTicket>,
}

impl RecoveredTickets {
    /// True when recovery found no ticket state.
    pub fn is_empty(&self) -> bool {
        self.key.is_none() && self.tickets.is_empty()
    }
}

impl BbNode {
    /// Build a broker from its configuration.
    ///
    /// # Panics
    /// Panics if the policy source does not parse — a broker without a
    /// working policy must not come up.
    pub fn new(config: BbConfig) -> Self {
        let pdp = PolicyServer::from_source(&config.policy_src, config.groups)
            .unwrap_or_else(|e| panic!("policy for {} failed to parse: {e}", config.domain));
        let mut audit = AuditLog::new(config.audit_capacity);
        audit.set_enabled(config.audit);
        let mut tracer = Tracer::default();
        tracer.set_enabled(config.tracing);
        let mut node = Self {
            dn: DistinguishedName::broker(&config.domain),
            core: BrokerCore::new(&config.domain, config.local_capacity_bps),
            domain: config.domain,
            key: config.key,
            cert: config.cert,
            now: Timestamp::ZERO,
            pdp: Arc::new(pdp),
            trust_policy: config.trust_policy,
            cas_keys: config.cas_keys,
            user_ca: config.user_ca,
            peers: HashMap::new(),
            routes: HashMap::new(),
            edge: EdgeBinding::default(),
            pending: HashMap::new(),
            completions: Vec::new(),
            edge_cmds: Vec::new(),
            cpu_reservations: HashSet::new(),
            direct_users: HashMap::new(),
            tunnels_src: HashMap::new(),
            tunnels_dst: HashMap::new(),
            flow_expiry: TimerWheel::new(),
            counters: CounterCells::default(),
            audit,
            telemetry: Telemetry::disabled(),
            instruments: NodeInstruments::default(),
            tracer,
            clock: Arc::new(StdClock),
            verified_paths: HashMap::new(),
            replies: ReplyCache::default(),
            snapshot_extra: None,
            recovered_tickets: RecoveredTickets::default(),
        };
        node.install_telemetry(config.telemetry);
        node
    }

    /// The domain this broker controls.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The broker's DN.
    pub fn dn(&self) -> &DistinguishedName {
        &self.dn
    }

    /// The broker's certificate.
    pub fn cert(&self) -> &Certificate {
        &self.cert
    }

    /// The broker's public key.
    pub fn public_key(&self) -> PublicKey {
        self.key.public()
    }

    /// Advance the broker's wall clock.
    pub fn set_time(&mut self, now: Timestamp) {
        self.now = now;
    }

    /// The broker's current wall clock.
    pub fn time(&self) -> Timestamp {
        self.now
    }

    /// Register a peering: the SLA's pinned certificate plus (for
    /// upstream peers) the admission table. `sla_in`/`sla_out` mirror
    /// [`BrokerCore::add_ingress_sla`]/[`BrokerCore::add_egress_sla`].
    pub fn add_peer(&mut self, peer_cert: Certificate, sla_in: Option<Sla>, sla_out: Option<Sla>) {
        let peer_domain = peer_cert
            .tbs
            .subject
            .org_unit()
            .expect("broker certs carry the domain in OU")
            .to_string();
        // An SLA peer's key verifies every envelope it forwards for the
        // SLA's lifetime — worth a pinned fixed-base table up front.
        peer_cert.tbs.subject_public_key.precompute();
        self.peers.insert(peer_domain, peer_cert);
        if let Some(sla) = sla_in {
            self.core.add_ingress_sla(sla);
        }
        if let Some(sla) = sla_out {
            self.core.add_egress_sla(sla);
        }
    }

    /// Install a domain-level route: requests for `dest_domain` are
    /// forwarded to `next_peer`.
    pub fn add_route(&mut self, dest_domain: &str, next_peer: &str) {
        self.routes
            .insert(dest_domain.to_string(), next_peer.to_string());
    }

    /// The next peer on the route towards `dest_domain`, if known.
    pub fn route_towards(&self, dest_domain: &str) -> Option<String> {
        self.routes.get(dest_domain).cloned()
    }

    /// Bind this broker to its data plane.
    pub fn set_edge_binding(&mut self, edge: EdgeBinding) {
        self.edge = edge;
    }

    /// Register a CPU reservation (the coupled-resource oracle behind
    /// Figure 6's `HasValidCPUResv`).
    pub fn add_cpu_reservation(&mut self, id: u64) {
        self.cpu_reservations.insert(id);
    }

    /// Grant Approach-1 direct trust to a user (the per-domain trust
    /// table whose growth FIG3 measures).
    pub fn add_direct_user(&mut self, dn: DistinguishedName, pk: PublicKey) {
        // Approach-1 users sign every per-domain request with this key.
        pk.precompute();
        self.direct_users.insert(dn, pk);
    }

    /// Size of the trust state this broker must maintain: peers plus
    /// directly known users.
    pub fn trust_table_size(&self) -> usize {
        self.peers.len() + self.direct_users.len()
    }

    /// Counter snapshot (reads the same atomics the registry renders).
    pub fn counters(&self) -> NodeCounters {
        self.counters.snapshot()
    }

    /// Enable or disable the structured audit trail.
    pub fn set_audit(&mut self, enabled: bool) {
        self.audit.set_enabled(enabled);
    }

    /// The audit trail (empty unless enabled).
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Route this node's metrics into `telemetry`: the rx/tx/signed/
    /// verified cells are *registered* (shared storage, not copied), and
    /// the timing histograms, admission/completion counters, and the
    /// audit-eviction gauge are resolved under this domain's label.
    pub fn install_telemetry(&mut self, telemetry: Telemetry) {
        if telemetry.is_enabled() {
            let d = self.domain.clone();
            let dl: &[(&str, &str)] = &[("domain", &d)];
            crate::install_verify_cache_telemetry(&telemetry);
            Arc::get_mut(&mut self.pdp)
                .expect("telemetry is installed before the PDP is shared across shards")
                .set_telemetry(&telemetry, &d);
            self.core.set_telemetry(&telemetry);
            telemetry.register_counter(
                "bb_messages_received_total",
                "Signalling messages received by the broker",
                dl,
                self.counters.rx.clone(),
            );
            telemetry.register_counter(
                "bb_messages_sent_total",
                "Signalling messages sent by the broker",
                dl,
                self.counters.tx.clone(),
            );
            telemetry.register_counter(
                "bb_signatures_created_total",
                "Signatures created (wraps, approvals, delegations, releases)",
                dl,
                self.counters.signed.clone(),
            );
            telemetry.register_counter(
                "bb_signatures_verified_total",
                "Signatures verified (envelope layers, approvals, capabilities)",
                dl,
                self.counters.verified.clone(),
            );
            // Warm-path reply cache (D15) — per-node, so the series
            // carries the domain label alongside the cache name.
            let rl: &[(&str, &str)] = &[("cache", "reply"), ("domain", &d)];
            telemetry.register_counter(
                "cache_hits_total",
                "Memoization cache hits, by cache",
                rl,
                self.replies.hits.clone(),
            );
            telemetry.register_counter(
                "cache_misses_total",
                "Memoization cache misses, by cache",
                rl,
                self.replies.misses.clone(),
            );
            telemetry.register_counter(
                "cache_evictions_total",
                "Memoization cache evictions, by cache",
                rl,
                self.replies.evictions.clone(),
            );
            self.instruments = NodeInstruments {
                verify_ns: telemetry.histogram(
                    "bb_envelope_verify_ns",
                    "Full transitive-trust envelope verification time (ns)",
                    dl,
                ),
                sign_ns: telemetry.histogram(
                    "bb_sign_ns",
                    "Signing time per protocol step (wrap, originate, endorse) (ns)",
                    dl,
                ),
                decide_ns: telemetry.histogram(
                    "bb_policy_decide_ns",
                    "Local PDP decision time (ns)",
                    dl,
                ),
                queue_wait_ns: telemetry.histogram(
                    "bb_queue_wait_ns",
                    "Mailbox wait before dispatch, as observed by the driver (ns)",
                    dl,
                ),
                admission_held: telemetry.counter(
                    "bb_admission_total",
                    "Two-phase admission holds by outcome",
                    &[("domain", &d), ("decision", "held")],
                ),
                admission_refused: telemetry.counter(
                    "bb_admission_total",
                    "Two-phase admission holds by outcome",
                    &[("domain", &d), ("decision", "refused")],
                ),
                completions_ok: telemetry.counter(
                    "bb_completions_total",
                    "End-to-end request completions by outcome",
                    &[("domain", &d), ("decision", "approved")],
                ),
                completions_denied: telemetry.counter(
                    "bb_completions_total",
                    "End-to-end request completions by outcome",
                    &[("domain", &d), ("decision", "denied")],
                ),
                audit_dropped: telemetry.gauge(
                    "bb_audit_dropped_events",
                    "Audit events evicted by the capacity bound",
                    dl,
                ),
                flow_admit_ns: telemetry.histogram(
                    "flow_admit_ns",
                    "Tunnel sub-flow admission time at the destination (ns)",
                    dl,
                ),
                flow_table_occupancy: telemetry.gauge(
                    "flow_table_occupancy",
                    "Held tunnel sub-flow records (source holds + destination admits)",
                    dl,
                ),
                flow_expiry_sweeps: telemetry.counter(
                    "flow_expiry_sweeps_total",
                    "Hold-expiry wheel sweeps",
                    dl,
                ),
            };
        }
        self.telemetry = telemetry;
    }

    /// Enable or disable per-request trace spans.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// The span log (empty unless tracing is enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable span log (drivers drain it; tests inject spans).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Replace the span/histogram clock. Live drivers keep the default
    /// [`StdClock`]; the virtual-time drivers install a
    /// [`qos_telemetry::ManualClock`] advanced by the scheduler so the
    /// same instrumentation yields simulated-time telemetry.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Record a mailbox-wait observed by the driver: the time between a
    /// message's arrival in this broker's inbox and its dispatch.
    pub fn record_queue_wait(&mut self, trace: TraceId, request: RarId, start_ns: u64) {
        if !self.timing_on() {
            return;
        }
        let end_ns = self.clock.now_ns();
        self.instruments
            .queue_wait_ns
            .observe(end_ns.saturating_sub(start_ns));
        self.span_at(trace, request, SpanKind::QueueWait, "", start_ns, end_ns);
    }

    /// The signer path recovered from the verified envelope nest, as
    /// stored when this (destination) broker ran the full transitive
    /// trust walk: innermost signer (the user) first.
    pub fn verified_signer_path(&self, rar_id: RarId) -> Option<&[DistinguishedName]> {
        self.verified_paths.get(&rar_id).map(|p| p.as_slice())
    }

    /// Is any timed instrumentation active?
    #[inline]
    fn timing_on(&self) -> bool {
        self.tracer.is_enabled() || self.telemetry.is_enabled()
    }

    /// Clock read gated on instrumentation: (timing-active, start-ns).
    #[inline]
    fn t0(&self) -> (bool, u64) {
        if self.timing_on() {
            (true, self.clock.now_ns())
        } else {
            (false, 0)
        }
    }

    /// Record a span with explicit bounds (no-op while tracing is off).
    fn span_at(
        &mut self,
        trace: TraceId,
        request: RarId,
        kind: SpanKind,
        detail: impl Into<String>,
        start_ns: u64,
        end_ns: u64,
    ) {
        if !self.tracer.is_enabled() {
            return;
        }
        let span = Span {
            trace,
            request: request.0,
            domain: self.domain.clone(),
            kind,
            detail: detail.into(),
            start_ns,
            end_ns,
            wall_s: self.now.0,
        };
        // Span export: completed spans also land in the flight recorder
        // (tagged by the same deterministic TraceId), which is what the
        // admin plane's `/flight` and `/trace/<id>` serve and what
        // `exp_trace_assembly` reassembles across processes.
        if let Some(flight) = self.telemetry.flight() {
            flight.record_span(&span);
        }
        self.tracer.record(span);
    }

    /// Audit an event and keep the eviction gauge current.
    fn audit_event(&mut self, event: AuditEvent) {
        self.audit.record(self.now, event);
        self.instruments
            .audit_dropped
            .set(self.audit.dropped() as i64);
    }

    /// Drain buffered edge-router configuration.
    pub fn take_edge_commands(&mut self) -> Vec<EdgeCommand> {
        std::mem::take(&mut self.edge_cmds)
    }

    /// Drain completed requests.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Resource-core access (experiments inspect admission state).
    pub fn core(&self) -> &BrokerCore {
        &self.core
    }

    // ------------------------------------------------------------------
    // Durable ledger (DESIGN.md §D13)
    // ------------------------------------------------------------------

    /// Attach the durable ledger store. Call *after*
    /// [`recover_from`](BbNode::recover_from), so replay is not
    /// re-logged; shard replicas share the store through the
    /// [`BrokerCore`] ledger.
    pub fn attach_store(&self, store: SharedStore) {
        self.core.set_store(store);
    }

    /// The attached ledger store, if any.
    pub fn store(&self) -> Option<SharedStore> {
        self.core.store()
    }

    /// Install a hook that augments exported snapshots with state owned
    /// by a higher layer (the transport's resumption tickets).
    pub fn set_snapshot_extra(&mut self, extra: SnapshotExtra) {
        self.snapshot_extra = Some(extra);
    }

    /// Replay recovered state: snapshot first, then WAL records above
    /// the snapshot's sequence, in sequence order. Ticket records are
    /// parked for [`take_recovered_tickets`](BbNode::take_recovered_tickets);
    /// everything else force-applies through the broker's restore APIs.
    /// Returns the replay duration in nanoseconds (callers report it to
    /// the store via `note_recovery_ns`).
    pub fn recover_from(&mut self, recovered: &Recovered) -> u64 {
        let started = self.clock.now_ns();
        if let Some(flight) = self.telemetry.flight() {
            flight.record(
                FlightEvent::new(EventFamily::Storage, self.domain.clone(), "recovery_begin")
                    .detail(format!(
                        "snapshot_seq {} records {}",
                        recovered.snapshot.as_ref().map(|s| s.seq).unwrap_or(0),
                        recovered.records.len()
                    )),
            );
        }
        let mut skip = 0;
        if let Some(snapshot) = &recovered.snapshot {
            skip = snapshot.seq;
            self.core.restore_snapshot(snapshot);
            if let Some(key) = &snapshot.ticket_key {
                self.recovered_tickets.key = Some(key.clone());
            }
            self.recovered_tickets
                .tickets
                .extend(snapshot.tickets.iter().cloned());
        }
        let mut replayed = 0u64;
        for (seq, record) in &recovered.records {
            if *seq <= skip {
                continue;
            }
            replayed += 1;
            match record {
                LedgerRecord::TicketKey { key } => {
                    self.recovered_tickets.key = Some(key.clone());
                }
                LedgerRecord::TicketIssued {
                    id,
                    master,
                    expires,
                    peer_cert,
                } => self.recovered_tickets.tickets.push(SnapTicket {
                    id: id.clone(),
                    master: master.clone(),
                    expires: *expires,
                    peer_cert: peer_cert.clone(),
                }),
                _ => self.core.restore_record(record),
            }
        }
        let elapsed = self.clock.now_ns().saturating_sub(started);
        if let Some(flight) = self.telemetry.flight() {
            flight.record(
                FlightEvent::new(EventFamily::Storage, self.domain.clone(), "recovery_end")
                    .detail(format!("replayed {replayed} records"))
                    .window(started, started + elapsed),
            );
        }
        elapsed
    }

    /// Collect ticket state found during recovery (the daemon rebuilds
    /// its `TicketIssuer` from this before sharding the node).
    pub fn take_recovered_tickets(&mut self) -> RecoveredTickets {
        std::mem::take(&mut self.recovered_tickets)
    }

    /// Export and durably write a snapshot now (graceful shutdown, or
    /// when the store asks via `should_snapshot`). The sequence point is
    /// captured *before* exporting state, so every record at or below it
    /// is reflected in the export (see `LedgerSnapshot`).
    pub fn snapshot_now(&self) {
        let Some(store) = self.core.store() else {
            return;
        };
        let seq = store.next_seq().saturating_sub(1);
        let mut snapshot = self.core.export_snapshot(seq);
        if let Some(extra) = &self.snapshot_extra {
            extra(&mut snapshot);
        }
        store.write_snapshot(&snapshot);
    }

    /// Periodic-snapshot check, riding the commit path: cheap when no
    /// store is attached or the write interval hasn't elapsed.
    fn maybe_snapshot(&self) {
        if let Some(store) = self.core.store() {
            if store.should_snapshot() {
                drop(store);
                self.snapshot_now();
            }
        }
    }

    /// Remaining aggregate in a source-side tunnel.
    pub fn tunnel_remaining_bps(&self, tunnel: RarId) -> Option<u64> {
        self.tunnels_src
            .get(&tunnel)
            .map(|t| t.aggregate_bps - t.allocated_bps)
    }

    /// Source-side tunnel metadata: destination domain, destination BB
    /// key (learned via the introducer chain), validity interval, and
    /// (aggregate, allocated) rates.
    pub fn tunnel_info(&self, tunnel: RarId) -> Option<(String, PublicKey, Interval, u64, u64)> {
        self.tunnels_src.get(&tunnel).map(|t| {
            (
                t.dest_domain.to_string(),
                t.dest_pk,
                t.interval,
                t.aggregate_bps,
                t.allocated_bps,
            )
        })
    }

    // ------------------------------------------------------------------
    // §6.1 Source domain
    // ------------------------------------------------------------------

    /// Handle a user's reservation request arriving at its home broker.
    /// Returns the messages to transmit.
    pub fn submit(
        &mut self,
        rar_u: SignedRar,
        user_cert: &Certificate,
    ) -> Vec<(PeerId, SignalMessage)> {
        self.submit_checked(rar_u, user_cert, false)
    }

    /// Handle a burst of user requests at once. The two signatures each
    /// submission carries — the CA's over the user certificate and the
    /// user's over the request — are independent, so the whole burst is
    /// checked through one Schnorr batch equation
    /// ([`qos_crypto::verify_batch`]); only if the combined check fails
    /// does per-item verification run (on the scoped worker pool) to
    /// attribute the failure. Admission then runs serially, in arrival
    /// order, against the shared budgets.
    pub fn submit_batch(
        &mut self,
        batch: Vec<(SignedRar, Certificate)>,
    ) -> Vec<(PeerId, SignalMessage)> {
        if batch.len() < 2 {
            return batch
                .into_iter()
                .flat_map(|(rar, cert)| self.submit(rar, &cert))
                .collect();
        }
        // The certificate's signature input is its canonical TBS
        // encoding; materialize those first so the job slices can borrow.
        let tbs_bytes: Vec<Vec<u8>> = batch
            .iter()
            .map(|(_, cert)| qos_wire::to_bytes(&cert.tbs))
            .collect();
        let jobs: Vec<(&[u8], PublicKey, qos_crypto::Signature)> = batch
            .iter()
            .zip(&tbs_bytes)
            .flat_map(|((rar, cert), tbs)| {
                [
                    (tbs.as_slice(), self.user_ca, cert.signature),
                    (
                        rar.layer_bytes(),
                        cert.tbs.subject_public_key,
                        rar.signature(),
                    ),
                ]
            })
            .collect();
        let verdicts = if qos_crypto::vcache::verify_batch_cached(&jobs) {
            vec![true; batch.len()]
        } else {
            crate::parallel::verify_each(&jobs)
                .chunks(2)
                .map(|c| c[0] && c[1])
                .collect()
        };
        drop(jobs);
        drop(tbs_bytes);
        let mut out = Vec::new();
        for ((rar, cert), ok) in batch.into_iter().zip(verdicts) {
            // A failed batch item re-verifies inline so the denial
            // attributes the exact broken signature.
            out.extend(self.submit_checked(rar, &cert, ok));
        }
        out
    }

    fn submit_checked(
        &mut self,
        rar_u: SignedRar,
        user_cert: &Certificate,
        pre_verified: bool,
    ) -> Vec<(PeerId, SignalMessage)> {
        self.counters.add_rx(1);
        let spec = rar_u.res_spec();
        let rar_id = spec.rar_id;
        // The trace is minted here, at the edge of the system; every
        // downstream broker re-derives the same id from the same signed
        // fields (see `TraceId::mint`).
        let trace = TraceId::mint(&spec.source_domain, rar_id.0);
        let (_, t_sub) = self.t0();
        let depth = rar_u.depth();
        self.audit_event(AuditEvent::RequestReceived {
            rar_id,
            from: "user".into(),
            depth,
        });
        match self.process_submit(rar_u, user_cert, trace, pre_verified) {
            Ok(out) => {
                let end = if self.tracer.is_enabled() {
                    self.clock.now_ns()
                } else {
                    0
                };
                self.span_at(trace, rar_id, SpanKind::Submit, "user request", t_sub, end);
                for (peer, _) in &out {
                    let peer = peer.to_string();
                    self.span_at(trace, rar_id, SpanKind::Forward, peer, end, end);
                }
                out
            }
            Err(e) => {
                let end = if self.tracer.is_enabled() {
                    self.clock.now_ns()
                } else {
                    0
                };
                self.span_at(
                    trace,
                    rar_id,
                    SpanKind::Submit,
                    format!("denied: {e}"),
                    t_sub,
                    end,
                );
                self.deny_locally(rar_id, e);
                Vec::new()
            }
        }
    }

    fn deny_locally(&mut self, rar_id: RarId, e: CoreError) {
        self.instruments.completions_denied.inc();
        let denial = match e {
            CoreError::Denied {
                rar_id,
                domain,
                reason,
            } => Denial {
                rar_id,
                domain,
                reason,
            },
            other => Denial {
                rar_id,
                domain: self.domain.clone(),
                reason: other.to_string(),
            },
        };
        self.completions.push(Completion::Reservation {
            rar_id,
            result: Err(denial),
        });
    }

    fn process_submit(
        &mut self,
        rar_u: SignedRar,
        user_cert: &Certificate,
        trace: TraceId,
        pre_verified: bool,
    ) -> Result<Vec<(PeerId, SignalMessage)>, CoreError> {
        let spec = rar_u.res_spec().clone();
        let rar_id = spec.rar_id;

        // Authenticate the user: certificate from a trusted CA, request
        // signed by the certified key, addressed to this broker. When the
        // two signatures were already checked in a batch equation
        // (`pre_verified`), only the non-signature checks run here; the
        // verified counters still advance so batched and per-item ingress
        // report identical crypto work.
        if !pre_verified {
            user_cert.verify_signature_cached(self.user_ca, self.now)?;
        }
        user_cert.check_validity(self.now)?;
        self.counters.add_verified(1);
        if !user_cert.tbs.subject.same_principal(&spec.requestor) {
            return Err(CoreError::LayerSignature {
                signer: spec.requestor.clone(),
            });
        }
        if !pre_verified && !rar_u.verify_signature(user_cert.tbs.subject_public_key) {
            return Err(CoreError::LayerSignature {
                signer: spec.requestor.clone(),
            });
        }
        self.counters.add_verified(1);
        if let RarLayer::User { source_bb, .. } = &rar_u.layer {
            if *source_bb != self.dn {
                return Err(CoreError::PathMismatch {
                    expected: source_bb.clone(),
                    found: self.dn.clone(),
                });
            }
        }

        // Verify any capability chain the user attached (delegated to us).
        let caps = self.verify_capability_chain(&rar_u)?;

        // Local policy.
        let mut attachments = self.check_policy(&spec, &caps, &AttributeSet::new(), trace)?;

        // Local admission (two-phase hold).
        let egress = self.next_peer_towards(&spec.dest_domain)?;

        // §6.1 step 2: the source BB augments the request with
        // domain-wide information — traffic-engineering parameters for
        // downstream domains derived from its peering contract ("such as
        // parameters for treatment of excess traffic or reliability
        // parameters expected for this service").
        if let Some(next) = &egress {
            if let Some(sla) = self.core.egress_sla(next) {
                attachments.set(
                    "sls_excess_treatment",
                    Value::Str(match sla.sls.excess {
                        ExcessTreatment::Drop => "drop".into(),
                        ExcessTreatment::Downgrade => "downgrade".into(),
                    }),
                );
                attachments.set(
                    "sls_reliability_ppm",
                    Value::Int((sla.sls.reliability * 1_000_000.0) as i64),
                );
                attachments.set("sls_burst_bytes", Value::Int(sla.sls.burst_bytes as i64));
            }
        }
        let segment = PathSegment {
            ingress_peer: None,
            egress_peer: egress.clone(),
        };
        self.hold(rar_id, spec.interval, spec.rate_bps, segment.clone(), trace)?;
        self.pending.insert(
            rar_id,
            Pending {
                upstream: None,
                requestor: spec.requestor.clone(),
                flow: spec.flow,
                rate_bps: spec.rate_bps,
                interval: spec.interval,
                segment,
                tunnel: spec.tunnel,
                trace,
            },
        );

        match egress {
            None => {
                // Single-domain reservation: we are also the destination.
                let approval =
                    self.finalize_destination_approval(rar_id, AttributeSet::new(), trace);
                self.complete_source(rar_id, Ok(approval));
                Ok(Vec::new())
            }
            Some(next) => {
                // Delegate capabilities onward and wrap (§6.1 step 4).
                let new_caps = self.delegate_caps(&rar_u, &next, rar_id)?;
                let next_dn = DistinguishedName::broker(&next);
                let (timing, t_sign) = self.t0();
                let wrapped = SignedRar::wrap(
                    rar_u,
                    user_cert.clone(),
                    Some(next_dn),
                    new_caps,
                    attachments,
                    self.dn.clone(),
                    &self.key,
                );
                if timing {
                    let end = self.clock.now_ns();
                    self.instruments.sign_ns.observe(end - t_sign);
                    self.span_at(trace, rar_id, SpanKind::Sign, "wrap", t_sign, end);
                }
                self.counters.add_signed(1);
                self.counters.add_tx(1);
                Ok(vec![(next.into(), SignalMessage::Request(wrapped))])
            }
        }
    }

    // ------------------------------------------------------------------
    // Message dispatch
    // ------------------------------------------------------------------

    /// Handle a message from peer `from` (already authenticated by the
    /// channel layer). Returns the messages to transmit.
    pub fn recv(&mut self, from: &str, msg: SignalMessage) -> Vec<(PeerId, SignalMessage)> {
        self.counters.add_rx(1);
        let out = match msg {
            SignalMessage::Request(rar) => self.on_request(from, rar),
            SignalMessage::Approve(a) => self.on_approve(from, a),
            SignalMessage::Deny(d) => self.on_deny(from, d),
            SignalMessage::Direct(d) => self.on_direct(d),
            SignalMessage::DirectReply(_) => Vec::new(), // agents consume these
            SignalMessage::TunnelFlow(t) => self.on_tunnel_flow(from, t),
            SignalMessage::TunnelFlowReply(r) => self.on_tunnel_flow_reply(r),
            SignalMessage::Release(r) => self.on_release(from, r),
            SignalMessage::TunnelFlowRelease(r) => self.on_tunnel_flow_release(r),
        };
        self.counters.add_tx(out.len() as u64);
        out
    }

    /// Handle a burst of tunnel sub-flow requests at once (the paper's
    /// per-flow admission inside an established aggregate, §7).
    ///
    /// Each request is signed by its tunnel's source BB, and the
    /// signatures are over unrelated bytes — so the whole burst goes
    /// through one Schnorr batch equation ([`qos_crypto::verify_batch`],
    /// ~µs-amortized per signature) with per-item fallback for
    /// attribution, like [`Self::recv_requests`]. Admission then runs
    /// serially against the shared aggregate budgets. Drivers that see
    /// several `TunnelFlow` messages queued (e.g. the actor runtime's
    /// mailbox) should prefer this over per-message [`Self::recv`].
    pub fn recv_tunnel_flows(
        &mut self,
        batch: Vec<(String, TunnelFlowRequest)>,
    ) -> Vec<(PeerId, SignalMessage)> {
        self.counters.add_rx(batch.len() as u64);
        // Resolve each request's pinned source-BB key first (cheap map
        // lookups); unknown tunnels skip the batch and take the
        // unknown-tunnel denial in `admit_tunnel_flow`.
        let payloads: Vec<Option<(Vec<u8>, PublicKey, qos_crypto::Signature)>> = batch
            .iter()
            .map(|(_, req)| {
                self.tunnels_dst
                    .get(&req.tunnel)
                    .map(|t| (req.signed_payload(), t.source_pk, req.signature))
            })
            .collect();
        let jobs: Vec<(&[u8], PublicKey, qos_crypto::Signature)> = payloads
            .iter()
            .flatten()
            .map(|(bytes, pk, sig)| (bytes.as_slice(), *pk, *sig))
            .collect();
        // Plain (uncached) batch equation: sub-flow signatures are
        // one-shot — a distinct payload per flow — so the verdict cache
        // would only add a digest + insertion per flow and evict entries
        // that actually repeat (SLA envelopes).
        let verdicts = if qos_crypto::verify_batch(&jobs) {
            vec![true; jobs.len()]
        } else {
            crate::parallel::verify_each(&jobs)
        };
        drop(jobs);
        let known: Vec<bool> = payloads.iter().map(Option::is_some).collect();
        drop(payloads);
        let mut verdicts = verdicts.into_iter();
        let mut out = Vec::with_capacity(batch.len());
        for ((from, req), known) in batch.into_iter().zip(known) {
            let ok = known && verdicts.next().unwrap_or(false);
            out.extend(self.admit_tunnel_flow(&from, req, ok));
        }
        self.counters.add_tx(out.len() as u64);
        out
    }

    /// Handle a burst of peer reservation requests at once. Each
    /// request's outer signature is the sending peer's, over that
    /// envelope's own canonical bytes — mutually independent checks, so
    /// the burst goes through one Schnorr batch equation
    /// ([`qos_crypto::verify_batch`]) with per-item fallback for
    /// attribution, exactly like [`Self::recv_tunnel_flows`]. Protocol
    /// processing then runs serially in arrival order.
    pub fn recv_requests(
        &mut self,
        batch: Vec<(String, SignedRar)>,
    ) -> Vec<(PeerId, SignalMessage)> {
        if batch.len() < 2 {
            return batch
                .into_iter()
                .flat_map(|(from, rar)| self.recv(&from, SignalMessage::Request(rar)))
                .collect();
        }
        self.counters.add_rx(batch.len() as u64);
        // Resolve each sender's pinned key first (cheap map lookups); an
        // unknown peer skips the batch and fails in `process_request`
        // with its usual error.
        let pks: Vec<Option<PublicKey>> = batch
            .iter()
            .map(|(from, _)| self.peers.get(from).map(|c| c.tbs.subject_public_key))
            .collect();
        let jobs: Vec<(&[u8], PublicKey, qos_crypto::Signature)> = batch
            .iter()
            .zip(&pks)
            .filter_map(|((_, rar), pk)| pk.map(|pk| (rar.layer_bytes(), pk, rar.signature())))
            .collect();
        let verdicts = if qos_crypto::vcache::verify_batch_cached(&jobs) {
            vec![true; jobs.len()]
        } else {
            crate::parallel::verify_each(&jobs)
        };
        drop(jobs);
        let mut verdicts = verdicts.into_iter();
        let mut out = Vec::new();
        for ((from, rar), pk) in batch.into_iter().zip(pks) {
            let ok = pk.is_some() && verdicts.next().unwrap_or(false);
            out.extend(self.on_request_checked(&from, rar, ok));
        }
        self.counters.add_tx(out.len() as u64);
        out
    }

    fn on_request(&mut self, from: &str, rar: SignedRar) -> Vec<(PeerId, SignalMessage)> {
        self.on_request_checked(from, rar, false)
    }

    /// Warm-path replay (DESIGN.md §D15): if `env` is byte-identical to
    /// a `Request` this node already answered — same envelope bytes,
    /// same outer signature, same peer, same clock instant — append the
    /// recorded reply's encoded `SignalMessage` to `out` and return its
    /// destination, with zero owned decoding and zero state mutation.
    /// `None` sends the caller down the normal owned-decode path.
    pub fn revalidate_request(
        &mut self,
        from: &str,
        env: &crate::envelope_ref::EnvelopeRef<'_>,
        out: &mut Vec<u8>,
    ) -> Option<PeerId> {
        if self.replies.cap == 0 {
            return None;
        }
        let key = sha256(env.layer_bytes());
        let now = self.now;
        let hit = match self.replies.probe(&key, env.signature(), from, now) {
            Some((to, bytes)) => {
                out.extend_from_slice(bytes);
                Some(to)
            }
            None => None,
        };
        if hit.is_some() {
            // The replay is a real message in and a real message out —
            // the traffic counters must not diverge from the slow path.
            self.counters.add_rx(1);
            self.counters.add_tx(1);
        }
        hit
    }

    /// Resize the warm-path reply cache. `0` disables it entirely (the
    /// D10 "caches off" ablation); shrinking drops all entries.
    pub fn set_reply_cache_capacity(&mut self, cap: usize) {
        self.replies.cap = cap;
        if self.replies.map.len() > cap {
            self.replies.map.clear();
            self.replies.by_rar.clear();
        }
    }

    /// `(hits, misses, evictions)` of the warm-path reply cache.
    pub fn reply_cache_stats(&self) -> (u64, u64, u64) {
        (
            self.replies.hits.load(Ordering::Relaxed),
            self.replies.misses.load(Ordering::Relaxed),
            self.replies.evictions.load(Ordering::Relaxed),
        )
    }

    fn on_request_checked(
        &mut self,
        from: &str,
        rar: SignedRar,
        pre_verified: bool,
    ) -> Vec<(PeerId, SignalMessage)> {
        let rar_id = rar.res_spec().rar_id;
        // Remember enough to cache the reply before the envelope is
        // consumed; the digest is skipped entirely when the cache is off.
        let cache_key = (self.replies.cap > 0).then(|| sha256(rar.layer_bytes()));
        let sig = rar.signature();
        match self.process_request(from, rar, pre_verified) {
            Ok(out) => {
                if let (Some(key), [(to, msg)]) = (cache_key, &out[..]) {
                    // Approvals and transit forwards replay safely (the
                    // hold they describe is already in place); denials
                    // never do — see [`ReplyCache`].
                    if matches!(msg, SignalMessage::Approve(_) | SignalMessage::Request(_)) {
                        self.replies.insert(
                            key,
                            CachedReply {
                                sig,
                                from: PeerId::from(from),
                                to: to.clone(),
                                rar_id,
                                now: self.now,
                                bytes: qos_wire::to_bytes(msg),
                                stamp: 0,
                            },
                        );
                    }
                }
                out
            }
            Err(e) => {
                let denial = match e {
                    CoreError::Denied {
                        rar_id,
                        domain,
                        reason,
                    } => Denial {
                        rar_id,
                        domain,
                        reason,
                    },
                    other => Denial {
                        rar_id,
                        domain: self.domain.clone(),
                        reason: other.to_string(),
                    },
                };
                vec![(PeerId::from(from), SignalMessage::Deny(denial))]
            }
        }
    }

    fn process_request(
        &mut self,
        from: &str,
        rar: SignedRar,
        pre_verified: bool,
    ) -> Result<Vec<(PeerId, SignalMessage)>, CoreError> {
        // Re-derive the trace minted at the source edge: the spec's
        // signed fields are the same at every hop.
        let spec0 = rar.res_spec();
        let trace = TraceId::mint(&spec0.source_domain, spec0.rar_id.0);
        let rar_id0 = spec0.rar_id;
        let depth = rar.depth();
        let (_, t_arrive) = self.t0();
        self.span_at(
            trace,
            rar_id0,
            SpanKind::RecvRequest,
            format!("from {from}, depth {depth}"),
            t_arrive,
            t_arrive,
        );
        self.audit_event(AuditEvent::RequestReceived {
            rar_id: rar_id0,
            from: from.to_string(),
            depth,
        });
        let peer_pk = self
            .peers
            .get(from)
            .ok_or_else(|| CoreError::UnknownPeer { peer: from.into() })?
            .tbs
            .subject_public_key;
        // Outer signature must be the direct peer's (§6.4: messages
        // between BBs are mutually authenticated). Skipped only when a
        // batch equation already vouched for it; the verified counter
        // still advances so batched ingress reports the same crypto work.
        if !pre_verified && !rar.verify_signature(peer_pk) {
            return Err(CoreError::LayerSignature {
                signer: rar.signer.clone(),
            });
        }
        self.counters.add_verified(1);

        let spec = rar.res_spec().clone();
        let rar_id = spec.rar_id;
        if spec.dest_domain == self.domain {
            self.process_destination(from, rar, peer_pk, trace)
        } else {
            self.process_transit(from, rar, spec, rar_id, trace)
        }
    }

    /// §6.2 intermediate domain.
    fn process_transit(
        &mut self,
        from: &str,
        rar: SignedRar,
        spec: crate::rar::ResSpec,
        rar_id: RarId,
        trace: TraceId,
    ) -> Result<Vec<(PeerId, SignalMessage)>, CoreError> {
        // SLA conformance + local policy. Transit domains check the
        // traffic profile against the SLA (the admission tables) and may
        // evaluate local policy over the accumulated information.
        let caps = self.verify_capability_chain(&rar)?;
        let attachments = self.check_policy(&spec, &caps, &rar.merged_attachments(), trace)?;

        let next =
            self.next_peer_towards(&spec.dest_domain)?
                .ok_or_else(|| CoreError::UnknownPeer {
                    peer: spec.dest_domain.clone(),
                })?;
        let segment = PathSegment {
            ingress_peer: Some(from.to_string()),
            egress_peer: Some(next.clone()),
        };
        self.hold(rar_id, spec.interval, spec.rate_bps, segment.clone(), trace)?;
        self.pending.insert(
            rar_id,
            Pending {
                upstream: Some(from.to_string()),
                requestor: spec.requestor.clone(),
                flow: spec.flow,
                rate_bps: spec.rate_bps,
                interval: spec.interval,
                segment,
                tunnel: spec.tunnel,
                trace,
            },
        );

        let new_caps = self.delegate_caps(&rar, &next, rar_id)?;
        let upstream_cert = self.peers.get(from).cloned().expect("checked above");
        let next_dn = DistinguishedName::broker(&next);
        let (timing, t_sign) = self.t0();
        let wrapped = SignedRar::wrap(
            rar,
            upstream_cert,
            Some(next_dn),
            new_caps,
            attachments,
            self.dn.clone(),
            &self.key,
        );
        if timing {
            let end = self.clock.now_ns();
            self.instruments.sign_ns.observe(end - t_sign);
            self.span_at(trace, rar_id, SpanKind::Sign, "wrap", t_sign, end);
            self.span_at(trace, rar_id, SpanKind::Forward, next.clone(), end, end);
        }
        self.counters.add_signed(1);
        Ok(vec![(next.into(), SignalMessage::Request(wrapped))])
    }

    /// §6.3 destination domain.
    fn process_destination(
        &mut self,
        from: &str,
        rar: SignedRar,
        peer_pk: PublicKey,
        trace: TraceId,
    ) -> Result<Vec<(PeerId, SignalMessage)>, CoreError> {
        // Full transitive-trust verification of the nested envelope.
        let (timing, t_verify) = self.t0();
        let verified: VerifiedRar = verify_rar(
            &rar,
            peer_pk,
            &self.dn,
            self.trust_policy,
            self.now,
            &KeySource::Introducers,
        )?;
        let depth = rar.depth();
        if timing {
            let end = self.clock.now_ns();
            self.instruments.verify_ns.observe(end - t_verify);
            self.span_at(
                trace,
                verified.res_spec.rar_id,
                SpanKind::VerifyEnvelope,
                format!("{depth} layers"),
                t_verify,
                end,
            );
        }
        self.counters.add_verified(depth as u64);
        let spec = verified.res_spec.clone();
        let rar_id = spec.rar_id;
        // Keep the cryptographically recovered path: the observable span
        // chain must match it hop for hop (see `verified_signer_path`).
        self.verified_paths
            .insert(rar_id, verified.signer_path.clone());
        // Journal the recovered path so a remote scraper can compare the
        // cross-process span timeline against the cryptographic ground
        // truth without reaching into this process (exp_trace_assembly).
        if let Some(flight) = self.telemetry.flight() {
            let path = verified
                .signer_path
                .iter()
                .map(|dn| match dn.common_name() {
                    Some("BB") => format!("BB@{}", dn.org_unit().unwrap_or("?")),
                    other => other.unwrap_or("?").to_string(),
                })
                .collect::<Vec<_>>()
                .join(",");
            flight.record(
                FlightEvent::new(
                    EventFamily::Path,
                    self.domain.clone(),
                    "verified_signer_path",
                )
                .trace(trace)
                .request(rar_id.0)
                .detail(path)
                .wall(self.now.0),
            );
        }

        let caps = self.verify_capability_chain(&rar)?;
        let attachments = self.check_policy(&spec, &caps, &verified.attachments, trace)?;

        let segment = PathSegment {
            ingress_peer: Some(from.to_string()),
            egress_peer: None,
        };
        self.hold(rar_id, spec.interval, spec.rate_bps, segment.clone(), trace)?;
        self.pending.insert(
            rar_id,
            Pending {
                upstream: Some(from.to_string()),
                requestor: spec.requestor.clone(),
                flow: spec.flow,
                rate_bps: spec.rate_bps,
                interval: spec.interval,
                segment,
                tunnel: spec.tunnel,
                trace,
            },
        );

        // Tunnel bookkeeping: remember the source BB so sub-flow requests
        // over the direct channel can be authenticated.
        if spec.tunnel {
            let source_pk = verified
                .source_bb_cert
                .as_ref()
                .map(|c| c.tbs.subject_public_key)
                .or_else(|| {
                    self.peers
                        .get(&spec.source_domain)
                        .map(|c| c.tbs.subject_public_key)
                })
                .ok_or_else(|| CoreError::Tunnel("cannot identify source BB".into()))?;
            self.tunnels_dst.insert(
                rar_id,
                TunnelDst {
                    source_pk,
                    source_domain: spec.source_domain.as_str().into(),
                    aggregate_bps: spec.rate_bps,
                    allocated_bps: 0,
                    flows: FlowTable::new(),
                },
            );
        }

        let approval = self.finalize_destination_approval(rar_id, attachments, trace);
        Ok(vec![(PeerId::from(from), SignalMessage::Approve(approval))])
    }

    /// Commit the destination's hold, emit edge config, sign the
    /// approval.
    fn finalize_destination_approval(
        &mut self,
        rar_id: RarId,
        attachments: AttributeSet,
        trace: TraceId,
    ) -> Approval {
        self.commit_and_configure(rar_id);
        self.counters.add_signed(1);
        let (timing, t_sign) = self.t0();
        let approval = Approval::originate(
            rar_id,
            self.cert.clone(),
            &self.domain,
            self.dn.clone(),
            attachments,
            &self.key,
        );
        if timing {
            let end = self.clock.now_ns();
            self.instruments.sign_ns.observe(end - t_sign);
            self.span_at(
                trace,
                rar_id,
                SpanKind::Sign,
                "originate approval",
                t_sign,
                end,
            );
        }
        approval
    }

    fn on_approve(&mut self, _from: &str, approval: Approval) -> Vec<(PeerId, SignalMessage)> {
        let rar_id = approval.rar_id;
        let Some(pending) = self.pending.get(&rar_id) else {
            return Vec::new(); // stale or duplicate
        };
        // The approval arrives over the authenticated downstream channel;
        // its chained signatures let any upstream domain audit the path.
        let upstream = pending.upstream.clone();
        let (rate_bps, secs) = (pending.rate_bps, pending.interval.secs());
        let trace = pending.trace;
        let (_, t_arrive) = self.t0();
        self.span_at(
            trace,
            rar_id,
            SpanKind::RecvApproval,
            format!("{} endorsements", approval.entries.len()),
            t_arrive,
            t_arrive,
        );
        self.commit_and_configure(rar_id);
        // Source domain: set up the §6.4 transitive billing chain now
        // that the whole path stands.
        if upstream.is_none() {
            self.record_billing(rar_id, &approval);
        }
        self.counters.add_signed(1);
        // Endorsements carry this domain's transit cost for the hop it
        // forwards into, so the source can reconstruct the full billing
        // chain ("additional cost offers for the particular request").
        let mut endorsement_attrs = AttributeSet::new();
        if let Some(downstream) = approval.entries.last().map(|e| e.domain.clone()) {
            if let Some(sla) = self.core.egress_sla(&downstream) {
                endorsement_attrs.set(
                    "transit_cost",
                    Value::Int(sla.transit_cost(rate_bps, secs) as i64),
                );
            }
        }
        let (timing, t_sign) = self.t0();
        let approval =
            approval.endorse(&self.domain, self.dn.clone(), endorsement_attrs, &self.key);
        if timing {
            let end = self.clock.now_ns();
            self.instruments.sign_ns.observe(end - t_sign);
            self.span_at(
                trace,
                rar_id,
                SpanKind::Sign,
                "endorse approval",
                t_sign,
                end,
            );
        }
        match upstream {
            Some(peer) => vec![(peer.into(), SignalMessage::Approve(approval))],
            None => {
                // Source domain: the end-to-end reservation stands.
                let (_, t_done) = self.t0();
                self.span_at(
                    trace,
                    rar_id,
                    SpanKind::Complete,
                    "approved",
                    t_done,
                    t_done,
                );
                self.complete_source(rar_id, Ok(approval));
                Vec::new()
            }
        }
    }

    /// §6.4 accounting: "the source domain would bill the traffic
    /// against the originator", with each transit domain billing its
    /// upstream peer per SLA.
    fn record_billing(&mut self, rar_id: RarId, approval: &Approval) {
        let Some(p) = self.pending.get(&rar_id) else {
            return;
        };
        let originator = p.requestor.common_name().unwrap_or("unknown").to_string();
        let rate = p.rate_bps;
        let secs = p.interval.secs();
        // The approval entries run destination-first and do not yet
        // include this (source) domain; the billing path runs
        // source-first.
        let mut path = vec![self.domain.clone()];
        path.extend(approval.entries.iter().rev().map(|e| e.domain.clone()));
        // Per-hop prices: our own egress SLA for the first hop, the
        // `transit_cost` attachments in the endorsement entries for
        // every hop further downstream.
        let mut prices: std::collections::HashMap<(String, String), u64> =
            std::collections::HashMap::new();
        if let Some(w) = path.windows(2).next() {
            let price = self
                .core
                .egress_sla(&w[1])
                .map(|sla| sla.transit_cost(rate, secs))
                .unwrap_or(0);
            prices.insert((w[0].clone(), w[1].clone()), price);
        }
        // entries run destination-first: entries[i] forwards into
        // entries[i-1]'s domain.
        for pair in approval.entries.windows(2) {
            let (downstream, upstream_entry) = (&pair[0], &pair[1]);
            if let Some(Value::Int(cost)) = upstream_entry.attachments.get("transit_cost") {
                prices.insert(
                    (upstream_entry.domain.clone(), downstream.domain.clone()),
                    (*cost).max(0) as u64,
                );
            }
        }
        for invoice in qos_broker::settle_chain(&originator, &path, rar_id.0, |up, down| {
            prices
                .get(&(up.to_string(), down.to_string()))
                .copied()
                .unwrap_or(0)
        }) {
            self.core.record_invoice(invoice);
        }
    }

    fn complete_source(&mut self, rar_id: RarId, result: Result<Approval, Denial>) {
        match &result {
            Ok(_) => self.instruments.completions_ok.inc(),
            Err(_) => self.instruments.completions_denied.inc(),
        }
        if let Ok(approval) = &result {
            let pending = self.pending.get(&rar_id);
            if let Some(p) = pending {
                if p.tunnel {
                    self.tunnels_src.insert(
                        rar_id,
                        TunnelSrc {
                            dest_domain: approval
                                .entries
                                .first()
                                .map(|e| e.domain.as_str())
                                .unwrap_or_default()
                                .into(),
                            dest_pk: approval.dest_cert.tbs.subject_public_key,
                            aggregate_bps: p.rate_bps,
                            allocated_bps: 0,
                            pending_bps: 0,
                            interval: p.interval,
                            pending_flows: FlowTable::new(),
                            held_flows: FlowTable::new(),
                        },
                    );
                }
            }
        }
        self.completions
            .push(Completion::Reservation { rar_id, result });
    }

    fn on_deny(&mut self, _from: &str, denial: Denial) -> Vec<(PeerId, SignalMessage)> {
        let rar_id = denial.rar_id;
        let Some(pending) = self.pending.remove(&rar_id) else {
            return Vec::new();
        };
        let (_, t_arrive) = self.t0();
        self.span_at(
            pending.trace,
            rar_id,
            SpanKind::RecvDenial,
            format!("by {}: {}", denial.domain, denial.reason),
            t_arrive,
            t_arrive,
        );
        // Roll back the two-phase hold.
        let _ = self.core.release(rar_id_to_reservation(rar_id));
        match pending.upstream {
            Some(peer) => vec![(peer.into(), SignalMessage::Deny(denial))],
            None => {
                self.instruments.completions_denied.inc();
                self.completions.push(Completion::Reservation {
                    rar_id,
                    result: Err(denial),
                });
                Vec::new()
            }
        }
    }

    /// Expire reservations whose interval has ended: release their
    /// capacity and undo their edge configuration. Returns the ids
    /// expired. Drivers call this as simulated wall time advances; the
    /// admission tables are time-indexed, so capacity accounting is
    /// already correct — this sweep cleans up the *data plane* (stale
    /// classifiers and policer dimensioning).
    pub fn expire(&mut self, now: Timestamp) -> Vec<RarId> {
        let expired: Vec<RarId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.interval.end <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in &expired {
            let msg = Release::new(*id, &self.domain, &self.key);
            // Local-only: every domain expires on its own clock, no
            // signalling needed (the interval is part of the signed spec).
            let _ = self.release_locally_and_forward(*id, msg);
            // Drop any forwarded release message: expiry is local.
        }
        // release_locally_and_forward queues downstream forwards via its
        // return value, which we discarded above — expiry is local by
        // design. Edge commands remain queued for the driver.
        expired
    }

    /// Tear down a standing reservation end-to-end (invoked at the
    /// source broker). The release propagates downstream; every domain
    /// frees its capacity and re-dimensions its edge.
    pub fn initiate_release(
        &mut self,
        rar_id: RarId,
    ) -> Result<Vec<(PeerId, SignalMessage)>, CoreError> {
        let pending = self
            .pending
            .get(&rar_id)
            .ok_or(CoreError::UnknownRar(rar_id))?;
        if pending.upstream.is_some() {
            return Err(CoreError::UnknownRar(rar_id)); // only the source initiates
        }
        let msg = Release::new(rar_id, &self.domain, &self.key);
        self.counters.add_signed(1);
        Ok(self.release_locally_and_forward(rar_id, msg))
    }

    fn on_release(&mut self, from: &str, release: Release) -> Vec<(PeerId, SignalMessage)> {
        // Only accept teardowns arriving from the upstream peer that the
        // reservation actually came through (the authenticated channel
        // vouches for `from`; the signature ties the message to the
        // originating source broker).
        let Some(pending) = self.pending.get(&release.rar_id) else {
            return Vec::new();
        };
        if pending.upstream.as_deref() != Some(from) {
            return Vec::new();
        }
        self.release_locally_and_forward(release.rar_id, release)
    }

    fn release_locally_and_forward(
        &mut self,
        rar_id: RarId,
        msg: Release,
    ) -> Vec<(PeerId, SignalMessage)> {
        // A released reservation's cached approve/forward must never
        // replay (DESIGN.md §D15).
        self.replies.invalidate_rar(rar_id);
        let Some(pending) = self.pending.remove(&rar_id) else {
            return Vec::new();
        };
        self.verified_paths.remove(&rar_id);
        let (_, t_rel) = self.t0();
        self.span_at(pending.trace, rar_id, SpanKind::Release, "", t_rel, t_rel);
        self.audit_event(AuditEvent::Released { rar_id });
        let _ = self.core.release(rar_id_to_reservation(rar_id));
        // A torn-down tunnel takes its per-flow state with it (the
        // pre-§D14 path leaked both maps forever). Wheel entries for the
        // source side go stale and are skipped on fire.
        if let Some(t) = self.tunnels_src.remove(&rar_id) {
            let held = t.held_flows.len() as i64;
            self.instruments.flow_table_occupancy.add(-held);
        }
        if let Some(t) = self.tunnels_dst.remove(&rar_id) {
            let held = t.flows.len() as i64;
            self.instruments.flow_table_occupancy.add(-held);
        }
        // Undo the edge configuration this reservation installed.
        if pending.upstream.is_none() && !pending.tunnel {
            if let Some(router) = self.edge.first_router {
                self.edge_cmds.push(EdgeCommand::RemoveFlow {
                    router,
                    flow: FlowId(pending.flow),
                });
            }
        }
        if let Some(peer) = &pending.segment.ingress_peer {
            if let Some(&link) = self.edge.ingress_links.get(peer) {
                let aggregate = self
                    .core
                    .admitted_ingress_aggregate(peer, pending.interval.start);
                let excess = self
                    .core
                    .ingress_sla(peer)
                    .map(|s| s.sls.excess)
                    .unwrap_or(ExcessTreatment::Drop);
                self.edge_cmds.push(EdgeCommand::SetIngressAggregate {
                    link,
                    profile: TrafficProfile::with_default_burst(aggregate),
                    excess,
                });
            }
        }
        match &pending.segment.egress_peer {
            Some(next) => vec![(next.as_str().into(), SignalMessage::Release(msg))],
            None => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Approach 1: source-domain-based signalling
    // ------------------------------------------------------------------

    fn on_direct(&mut self, req: DirectRequest) -> Vec<(PeerId, SignalMessage)> {
        let spec = req.rar.res_spec().clone();
        let rar_id = spec.rar_id;
        let my_domain = self.domain.clone();
        let reply_to = PeerId::from(format!("user:{}", spec.source_domain));
        let reply = move |accepted: bool, reason: String| {
            vec![(
                reply_to,
                SignalMessage::DirectReply(DirectReply {
                    rar_id,
                    domain: my_domain,
                    accepted,
                    reason,
                }),
            )]
        };
        // Approach 1's scalability problem in code: this domain must know
        // the *signer* a priori — the user herself, or (STARS) the
        // source domain's reservation coordinator.
        let Some(&user_pk) = self.direct_users.get(&req.rar.signer) else {
            return reply(
                false,
                format!(
                    "{}: no direct trust relationship with {}",
                    self.domain, req.rar.signer
                ),
            );
        };
        if !req.rar.verify_signature(user_pk) {
            return reply(false, "bad user signature".into());
        }
        self.counters.add_verified(1);
        let trace = TraceId::mint(&spec.source_domain, rar_id.0);
        let caps = Vec::new(); // Approach 1 carries no delegated capabilities.
        match self.check_policy(&spec, &caps, &AttributeSet::new(), trace) {
            Ok(_) => {}
            Err(e) => return reply(false, e.to_string()),
        }
        let segment = PathSegment {
            ingress_peer: req.ingress_peer.clone(),
            egress_peer: req.egress_peer.clone(),
        };
        if let Err(e) = self.hold(rar_id, spec.interval, spec.rate_bps, segment.clone(), trace) {
            return reply(false, e.to_string());
        }
        // Approach 1 has no end-to-end commit phase: each domain commits
        // independently — exactly what makes misreservation possible.
        self.pending.insert(
            rar_id,
            Pending {
                // For edge-configuration purposes the path position comes
                // from the agent's declaration: no ingress peer ⇒ this is
                // the flow's source domain ⇒ install the classifier.
                upstream: req.ingress_peer.clone(),
                requestor: spec.requestor.clone(),
                flow: spec.flow,
                rate_bps: spec.rate_bps,
                interval: spec.interval,
                segment,
                tunnel: false,
                trace,
            },
        );
        self.commit_and_configure(rar_id);
        reply(true, String::new())
    }

    // ------------------------------------------------------------------
    // Tunnels: direct source↔destination sub-flow signalling
    // ------------------------------------------------------------------

    /// Request a sub-flow within an established tunnel (invoked at the
    /// source broker by an authorized user). The message goes straight to
    /// the destination domain.
    pub fn request_tunnel_flow(
        &mut self,
        tunnel: RarId,
        flow: u64,
        rate_bps: u64,
        requestor: DistinguishedName,
    ) -> Result<Vec<(PeerId, SignalMessage)>, CoreError> {
        self.request_tunnel_flow_held(tunnel, flow, rate_bps, None, requestor)
            .map_err(|code| match code {
                DenialCode::UnknownTunnel => {
                    CoreError::Tunnel(format!("unknown tunnel {tunnel:?}"))
                }
                _ => {
                    let (used, agg) = self
                        .tunnels_src
                        .get(&tunnel)
                        .map(|t| (t.allocated_bps + t.pending_bps, t.aggregate_bps))
                        .unwrap_or_default();
                    CoreError::Tunnel(format!(
                        "tunnel {tunnel:?} exhausted: {used} of {agg} bps allocated"
                    ))
                }
            })
    }

    /// [`Self::request_tunnel_flow`] with an optional hold: when
    /// `hold_until` is set, the flow — if the destination accepts it —
    /// is torn down automatically once [`Self::expire_tunnel_flows`]
    /// passes that time, exactly as if [`Self::release_tunnel_flow`] had
    /// been invoked. Denials come back as static [`DenialCode`]s — no
    /// error-string formatting on the fast path.
    pub fn request_tunnel_flow_held(
        &mut self,
        tunnel: RarId,
        flow: u64,
        rate_bps: u64,
        hold_until: Option<Timestamp>,
        requestor: DistinguishedName,
    ) -> Result<Vec<(PeerId, SignalMessage)>, DenialCode> {
        let t = self
            .tunnels_src
            .get_mut(&tunnel)
            .ok_or(DenialCode::UnknownTunnel)?;
        if t.allocated_bps + t.pending_bps + rate_bps > t.aggregate_bps {
            return Err(DenialCode::SourceExhausted);
        }
        if rate_bps > MAX_FLOW_RATE_BPS {
            return Err(DenialCode::RateOverCap);
        }
        let expiry = hold_until
            .map(|ts| ts.0.min(u64::from(EXPIRY_NEVER - 1)) as u32)
            .unwrap_or(EXPIRY_NEVER);
        if let Some(old) = t.pending_flows.insert(flow, rate_bps as u32, expiry) {
            t.pending_bps -= u64::from(old);
        }
        t.pending_bps += rate_bps;
        let dest = t.dest_domain.clone();
        let msg = TunnelFlowRequest::new(tunnel, flow, rate_bps, requestor, &self.key);
        self.counters.add_signed(1);
        self.counters.add_tx(1);
        Ok(vec![(dest, SignalMessage::TunnelFlow(msg))])
    }

    fn on_tunnel_flow(
        &mut self,
        from: &str,
        req: TunnelFlowRequest,
    ) -> Vec<(PeerId, SignalMessage)> {
        // Authenticate the direct channel peer: the source BB's key was
        // learned through the introducer chain at reservation time.
        let signature_ok = self
            .tunnels_dst
            .get(&req.tunnel)
            .is_some_and(|t| req.verify(t.source_pk));
        self.admit_tunnel_flow(from, req, signature_ok)
    }

    /// Admit (or reject) one sub-flow whose signature verdict was
    /// already computed — serially in [`Self::on_tunnel_flow`], or on
    /// the worker pool in [`Self::recv_tunnel_flows`]. Admission itself
    /// stays serial: sub-flows of one tunnel race for the same
    /// aggregate budget.
    fn admit_tunnel_flow(
        &mut self,
        from: &str,
        req: TunnelFlowRequest,
        signature_ok: bool,
    ) -> Vec<(PeerId, SignalMessage)> {
        let (timing, t_start) = self.t0();
        let reply = |accepted: bool, reason: DenialCode, source: PeerId| {
            vec![(
                source,
                SignalMessage::TunnelFlowReply(TunnelFlowReply {
                    tunnel: req.tunnel,
                    flow: req.flow,
                    accepted,
                    reason,
                }),
            )]
        };
        let out = 'admit: {
            let Some(t) = self.tunnels_dst.get_mut(&req.tunnel) else {
                break 'admit reply(false, DenialCode::UnknownTunnel, PeerId::from(from));
            };
            // Interned at reservation time: the reply address is a
            // refcount bump, not a String clone per sub-flow.
            let source = t.source_domain.clone();
            if !signature_ok {
                break 'admit reply(false, DenialCode::BadSignature, source);
            }
            self.counters.add_verified(1);
            if t.allocated_bps + req.rate_bps > t.aggregate_bps {
                break 'admit reply(false, DenialCode::Exhausted, source);
            }
            if req.rate_bps > MAX_FLOW_RATE_BPS {
                break 'admit reply(false, DenialCode::RateOverCap, source);
            }
            // Deliberate pre-§D14 quirk, kept for verdict equivalence: a
            // duplicate admit replaces the record but still adds its full
            // rate to the aggregate (the old `HashMap` path did exactly
            // this).
            t.allocated_bps += req.rate_bps;
            if t.flows
                .insert(req.flow, req.rate_bps as u32, EXPIRY_NEVER)
                .is_none()
            {
                self.instruments.flow_table_occupancy.add(1);
            }
            reply(true, DenialCode::None, source)
        };
        if timing {
            let end = self.clock.now_ns();
            self.instruments
                .flow_admit_ns
                .observe(end.saturating_sub(t_start));
        }
        out
    }

    /// Tear down one tunnel sub-flow (invoked at the source broker): the
    /// aggregate budget is returned on both ends and the per-flow
    /// classifier is removed.
    pub fn release_tunnel_flow(
        &mut self,
        tunnel: RarId,
        flow: u64,
        rate_bps: u64,
    ) -> Result<Vec<(PeerId, SignalMessage)>, CoreError> {
        let t = self
            .tunnels_src
            .get_mut(&tunnel)
            .ok_or_else(|| CoreError::Tunnel(format!("unknown tunnel {tunnel:?}")))?;
        t.allocated_bps = t.allocated_bps.saturating_sub(rate_bps);
        if t.held_flows.remove(flow).is_some() {
            // Any wheel entry for this flow is now stale; expiry skips it
            // (lazy cancellation).
            self.instruments.flow_table_occupancy.add(-1);
        }
        let dest = t.dest_domain.clone();
        if let Some(router) = self.edge.first_router {
            self.edge_cmds.push(EdgeCommand::RemoveFlow {
                router,
                flow: FlowId(flow),
            });
        }
        let msg = TunnelFlowRelease::new(tunnel, flow, &self.key);
        self.counters.add_signed(1);
        self.counters.add_tx(1);
        Ok(vec![(dest, SignalMessage::TunnelFlowRelease(msg))])
    }

    /// Advance the hold-expiry wheel to `now` and tear down every
    /// source-side held sub-flow whose hold has lapsed — aggregate
    /// returned on both ends, per-flow classifier removed, signed
    /// release sent to the destination, exactly as if
    /// [`Self::release_tunnel_flow`] had been invoked. Cost is
    /// O(ticks crossed + flows expired): the wheel never walks the
    /// held-flow table. Drivers call this as wall time advances,
    /// alongside [`Self::expire`].
    pub fn expire_tunnel_flows(&mut self, now: Timestamp) -> Vec<(PeerId, SignalMessage)> {
        let tick = now.0.min(u64::from(u32::MAX)) as u32;
        if tick <= self.flow_expiry.now() {
            return Vec::new();
        }
        self.instruments.flow_expiry_sweeps.inc();
        let mut fired: Vec<(RarId, u64)> = Vec::new();
        self.flow_expiry.advance(tick, |entry| fired.push(entry));
        let mut out = Vec::with_capacity(fired.len());
        for (tunnel, flow) in fired {
            let Some(t) = self.tunnels_src.get_mut(&tunnel) else {
                continue; // tunnel torn down since scheduling
            };
            let Some((rate, expiry)) = t.held_flows.get(flow) else {
                continue; // released since scheduling
            };
            if expiry > tick {
                continue; // re-admitted with a longer hold
            }
            t.held_flows.remove(flow);
            t.allocated_bps = t.allocated_bps.saturating_sub(u64::from(rate));
            self.instruments.flow_table_occupancy.add(-1);
            if let Some(router) = self.edge.first_router {
                self.edge_cmds.push(EdgeCommand::RemoveFlow {
                    router,
                    flow: FlowId(flow),
                });
            }
            let msg = TunnelFlowRelease::new(tunnel, flow, &self.key);
            self.counters.add_signed(1);
            out.push((t.dest_domain.clone(), SignalMessage::TunnelFlowRelease(msg)));
        }
        self.counters.add_tx(out.len() as u64);
        out
    }

    /// Held tunnel sub-flow state on this broker, as
    /// `(records, resident_bytes)`: source-side pending + held flows,
    /// destination-side admitted flows, and the expiry wheel's bucket
    /// storage. EXP-T and EXP-M report exactly this accounting.
    pub fn held_flow_stats(&self) -> (usize, usize) {
        let mut records = 0usize;
        let mut bytes = self.flow_expiry.resident_bytes();
        for t in self.tunnels_src.values() {
            records += t.pending_flows.len() + t.held_flows.len();
            bytes += t.pending_flows.resident_bytes() + t.held_flows.resident_bytes();
        }
        for t in self.tunnels_dst.values() {
            records += t.flows.len();
            bytes += t.flows.resident_bytes();
        }
        (records, bytes)
    }

    fn on_tunnel_flow_release(&mut self, rel: TunnelFlowRelease) -> Vec<(PeerId, SignalMessage)> {
        if let Some(t) = self.tunnels_dst.get_mut(&rel.tunnel) {
            if rel.verify(t.source_pk) {
                self.counters.add_verified(1);
                if let Some((rate, _)) = t.flows.remove(rel.flow) {
                    t.allocated_bps = t.allocated_bps.saturating_sub(u64::from(rate));
                    self.instruments.flow_table_occupancy.add(-1);
                }
            }
        }
        Vec::new()
    }

    fn on_tunnel_flow_reply(&mut self, reply: TunnelFlowReply) -> Vec<(PeerId, SignalMessage)> {
        if let Some(t) = self.tunnels_src.get_mut(&reply.tunnel) {
            if let Some((rate, expiry)) = t.pending_flows.remove(reply.flow) {
                t.pending_bps -= u64::from(rate);
                if reply.accepted {
                    t.allocated_bps += u64::from(rate);
                    if t.held_flows.insert(reply.flow, rate, expiry).is_none() {
                        self.instruments.flow_table_occupancy.add(1);
                    }
                    if expiry != EXPIRY_NEVER {
                        self.flow_expiry
                            .schedule(expiry, (reply.tunnel, reply.flow));
                    }
                    // Per-flow classification at the source edge; transit
                    // policers were dimensioned by the aggregate already.
                    if let Some(router) = self.edge.first_router {
                        self.edge_cmds.push(EdgeCommand::InstallFlow {
                            router,
                            flow: FlowId(reply.flow),
                            profile: TrafficProfile::with_default_burst(u64::from(rate)),
                            excess: ExcessTreatment::Drop,
                        });
                    }
                }
            }
        }
        self.completions.push(Completion::TunnelFlow {
            tunnel: reply.tunnel,
            flow: reply.flow,
            accepted: reply.accepted,
            reason: reply.reason,
        });
        Vec::new()
    }

    // ------------------------------------------------------------------
    // Shared helpers
    // ------------------------------------------------------------------

    fn next_peer_towards(&self, dest_domain: &str) -> Result<Option<String>, CoreError> {
        if dest_domain == self.domain {
            return Ok(None);
        }
        self.routes
            .get(dest_domain)
            .cloned()
            .map(Some)
            .ok_or_else(|| CoreError::UnknownPeer {
                peer: dest_domain.to_string(),
            })
    }

    fn hold(
        &mut self,
        rar_id: RarId,
        interval: Interval,
        rate_bps: u64,
        segment: PathSegment,
        trace: TraceId,
    ) -> Result<(), CoreError> {
        let (timing, t_hold) = self.t0();
        let result = self
            .core
            .hold(rar_id_to_reservation(rar_id), interval, rate_bps, segment)
            .map_err(|e| CoreError::Denied {
                rar_id,
                domain: self.domain.clone(),
                reason: e.to_string(),
            });
        if timing {
            let end = self.clock.now_ns();
            self.span_at(
                trace,
                rar_id,
                SpanKind::Admission,
                if result.is_ok() { "held" } else { "refused" },
                t_hold,
                end,
            );
        }
        if result.is_ok() {
            self.instruments.admission_held.inc();
        } else {
            self.instruments.admission_refused.inc();
        }
        // Admission verdicts are first-class flight events (not just
        // spans): they journal even when tracing is off, and a refusal
        // burst is one of the recorder's anomaly-dump triggers.
        if let Some(flight) = self.telemetry.flight() {
            flight.record(
                FlightEvent::new(
                    EventFamily::Admission,
                    self.domain.clone(),
                    if result.is_ok() { "held" } else { "refused" },
                )
                .trace(trace)
                .request(rar_id.0)
                .detail(format!("rate {rate_bps} bps"))
                .wall(self.now.0),
            );
        }
        self.audit_event(AuditEvent::Admission {
            rar_id,
            ok: result.is_ok(),
            rate_bps,
        });
        result
    }

    /// Commit the hold and emit the edge configuration that enforces it.
    fn commit_and_configure(&mut self, rar_id: RarId) {
        self.audit_event(AuditEvent::Approved { rar_id });
        let _ = self.core.commit(rar_id_to_reservation(rar_id));
        let Some(p) = self.pending.get(&rar_id) else {
            return;
        };
        // Source domain: install the per-flow classifier at the first
        // router ("only the first router recognizes packets on a per flow
        // base").
        if p.upstream.is_none() && !p.tunnel {
            if let Some(router) = self.edge.first_router {
                self.edge_cmds.push(EdgeCommand::InstallFlow {
                    router,
                    flow: FlowId(p.flow),
                    profile: TrafficProfile::with_default_burst(p.rate_bps),
                    excess: ExcessTreatment::Drop,
                });
            }
        }
        // Any domain with an upstream peer: re-dimension the ingress
        // aggregate policer to the admitted sum.
        if let Some(peer) = &p.segment.ingress_peer {
            if let Some(&link) = self.edge.ingress_links.get(peer) {
                let aggregate = self.core.admitted_ingress_aggregate(peer, p.interval.start);
                let excess = self
                    .core
                    .ingress_sla(peer)
                    .map(|s| s.sls.excess)
                    .unwrap_or(ExcessTreatment::Drop);
                self.edge_cmds.push(EdgeCommand::SetIngressAggregate {
                    link,
                    profile: TrafficProfile::with_default_burst(aggregate),
                    excess,
                });
            }
        }
        self.maybe_snapshot();
    }

    /// Verify the capability chain carried by the envelope (if any) and
    /// convert it to the PDP's verified-capability form.
    fn verify_capability_chain(
        &mut self,
        rar: &SignedRar,
    ) -> Result<Vec<VerifiedCapability>, CoreError> {
        let certs = rar.capability_certs();
        if certs.is_empty() {
            return Ok(Vec::new());
        }
        let chain = DelegationChain { certs };
        let issuer = chain.certs[0]
            .tbs
            .issuer
            .common_name()
            .unwrap_or_default()
            .to_string();
        let Some(&cas_pk) = self.cas_keys.get(&issuer) else {
            // Unknown community: ignore the capabilities rather than deny —
            // policy decides whether anything required them.
            return Ok(Vec::new());
        };
        // §6.5 checklist: link signatures, monotonicity, validity
        // windows. Structural failures mean tampering and are fatal.
        let verified = chain
            .verify_links(cas_pk, self.now)
            .map_err(CoreError::from)?;
        self.counters.add_verified(chain.certs.len() as u64);
        // The possession step: attributes are only *usable* if the chain
        // was delegated to this very broker (we can prove possession of
        // our own key). A structurally valid chain delegated to someone
        // else is carried onward but grants us nothing.
        if chain.tip().tbs.subject_public_key != self.key.public() {
            return Ok(Vec::new());
        }
        let nonce = self.now.0.to_le_bytes();
        let proof = self.key.prove_possession(&nonce);
        if !chain
            .tip()
            .tbs
            .subject_public_key
            .check_possession(&nonce, &proof)
        {
            return Ok(Vec::new());
        }
        Ok(vec![VerifiedCapability {
            issuer,
            attributes: verified.capabilities,
            restrictions: verified
                .restrictions
                .iter()
                .map(|r| r.to_string())
                .collect(),
        }])
    }

    /// Extend the capability chain to the next broker (Neuman cascade:
    /// sign with our key, bind to the peer's real public key, restrict to
    /// this RAR).
    fn delegate_caps(
        &mut self,
        rar: &SignedRar,
        next_peer: &str,
        rar_id: RarId,
    ) -> Result<Vec<Certificate>, CoreError> {
        let certs = rar.capability_certs();
        if certs.is_empty() {
            return Ok(Vec::new());
        }
        let chain = DelegationChain { certs };
        // Only delegate chains that were delegated *to us*.
        if chain.tip().tbs.subject_public_key != self.key.public() {
            return Ok(Vec::new());
        }
        let peer_cert = self
            .peers
            .get(next_peer)
            .ok_or_else(|| CoreError::UnknownPeer {
                peer: next_peer.to_string(),
            })?;
        let extended = chain
            .delegate(
                &self.key,
                peer_cert.tbs.subject.clone(),
                peer_cert.tbs.subject_public_key,
                vec![Restriction::ValidForRar(rar_id.0)],
                Validity::starting_at(self.now, 7 * 24 * 3600),
            )
            .map_err(CoreError::from)?;
        self.counters.add_signed(1);
        Ok(vec![extended.tip().clone()])
    }

    /// Run the local PDP over everything known about the request.
    fn check_policy(
        &mut self,
        spec: &crate::rar::ResSpec,
        caps: &[VerifiedCapability],
        upstream_attachments: &AttributeSet,
        trace: TraceId,
    ) -> Result<AttributeSet, CoreError> {
        let mut req = qos_policy::PolicyRequest::new(spec.requestor.clone());
        req.attrs.merge(upstream_attachments);
        req.attrs.merge(&spec.attrs);
        req.attrs
            .set("bw", Value::Bandwidth(spec.rate_bps))
            .set("reservation_type", Value::Str("network".into()))
            .set("source_domain", Value::Str(spec.source_domain.clone()))
            .set("dest_domain", Value::Str(spec.dest_domain.clone()));
        if let Some(cn) = spec.requestor.common_name() {
            req.attrs.set("user", Value::Str(cn.to_string()));
        }
        if let Some(id) = spec.cpu_reservation_id {
            req.attrs.set("cpu_reservation_id", Value::Int(id as i64));
        }
        req.assertions = spec.assertions.clone();
        req.capabilities = caps.to_vec();

        let vars = qos_policy::DomainVars {
            avail_bw_bps: self.core.available_bw_at(spec.interval.start),
            now_minutes: ((self.now.0 / 60) % 1440) as u32,
            domain: self.domain.clone(),
        };
        let oracle = CpuOracle(&self.cpu_reservations);
        let (timing, t_decide) = self.t0();
        let decided = self.pdp.decide(&req, &vars, &oracle);
        if timing {
            let end = self.clock.now_ns();
            self.instruments.decide_ns.observe(end - t_decide);
            let detail = match &decided {
                Ok(d) => match &d.decision {
                    qos_policy::Decision::Grant => "GRANT".to_string(),
                    qos_policy::Decision::Deny(r) => {
                        format!("DENY: {}", r.as_deref().unwrap_or("policy denied"))
                    }
                },
                Err(e) => format!("ERROR: {e}"),
            };
            self.span_at(
                trace,
                spec.rar_id,
                SpanKind::PolicyDecision,
                detail,
                t_decide,
                end,
            );
        }
        let decision = decided.map_err(|e| CoreError::Denied {
            rar_id: spec.rar_id,
            domain: self.domain.clone(),
            reason: format!("policy evaluation error: {e}"),
        })?;
        match decision.decision {
            qos_policy::Decision::Grant => {
                self.audit_event(AuditEvent::PolicyDecision {
                    rar_id: spec.rar_id,
                    decision: "GRANT".into(),
                });
                Ok(decision.attachments)
            }
            qos_policy::Decision::Deny(reason) => {
                let reason = reason.unwrap_or_else(|| "policy denied".into());
                self.audit_event(AuditEvent::PolicyDecision {
                    rar_id: spec.rar_id,
                    decision: format!("DENY: {reason}"),
                });
                Err(CoreError::Denied {
                    rar_id: spec.rar_id,
                    domain: self.domain.clone(),
                    reason,
                })
            }
        }
    }

    /// Build a user assertion helper (used by tests and harnesses).
    pub fn policy_groups_mut(&mut self) -> &mut GroupServer {
        Arc::get_mut(&mut self.pdp)
            .expect("group edits happen before the PDP is shared across shards")
            .groups_mut()
    }

    /// A shard replica of this broker: same identity, keys, peers,
    /// routes, and — crucially — the *same* [`BrokerCore`] ledger, PDP,
    /// counter cells, and metric instruments (all internally shared), so
    /// N replicas admitting concurrently report exactly what one node
    /// would. Per-request protocol state (pending map, tunnels,
    /// completions) starts empty: the shard router pins each reservation
    /// id to one replica, so no two replicas ever track the same
    /// request.
    pub fn clone_shard(&self) -> Self {
        let mut audit = AuditLog::new(self.audit.capacity());
        audit.set_enabled(self.audit.is_enabled());
        let mut tracer = Tracer::default();
        tracer.set_enabled(self.tracer.is_enabled());
        Self {
            domain: self.domain.clone(),
            dn: self.dn.clone(),
            key: self.key.clone(),
            cert: self.cert.clone(),
            now: self.now,
            core: self.core.clone(),
            pdp: Arc::clone(&self.pdp),
            trust_policy: self.trust_policy,
            cas_keys: self.cas_keys.clone(),
            user_ca: self.user_ca,
            peers: self.peers.clone(),
            routes: self.routes.clone(),
            edge: self.edge.clone(),
            pending: HashMap::new(),
            completions: Vec::new(),
            edge_cmds: Vec::new(),
            cpu_reservations: self.cpu_reservations.clone(),
            direct_users: self.direct_users.clone(),
            tunnels_src: HashMap::new(),
            tunnels_dst: HashMap::new(),
            flow_expiry: TimerWheel::new(),
            counters: self.counters.clone(),
            audit,
            telemetry: self.telemetry.clone(),
            instruments: self.instruments.clone(),
            tracer,
            clock: Arc::clone(&self.clock),
            verified_paths: HashMap::new(),
            // Fresh map (requests are pinned per replica) but shared
            // counter cells, like every other instrument.
            replies: ReplyCache {
                map: HashMap::new(),
                by_rar: HashMap::new(),
                tick: 0,
                cap: self.replies.cap,
                hits: Arc::clone(&self.replies.hits),
                misses: Arc::clone(&self.replies.misses),
                evictions: Arc::clone(&self.replies.evictions),
            },
            snapshot_extra: self.snapshot_extra.clone(),
            recovered_tickets: RecoveredTickets::default(),
        }
    }
}

/// RAR ids map one-to-one onto broker reservation ids.
pub fn rar_id_to_reservation(rar_id: RarId) -> ReservationId {
    ReservationId(rar_id.0)
}

/// Assertion re-export convenience for harnesses building requests.
pub fn group_assertion(name: &str) -> Assertion {
    Assertion::group(name)
}
