//! Nested signed RAR envelopes — the wire format of §6.4.
//!
//! The user signs the innermost layer:
//!
//! ```text
//! RAR_U = sign_U({res_spec, DN_BB_A, CapCert'_CAS, CapCert'_U})
//! ```
//!
//! and every broker wraps what it received, adding the upstream peer's
//! certificate (learned from the secure-channel handshake — this is what
//! makes each broker a *key introducer*), the DN of the next downstream
//! broker, any new capability delegations, and its policy attachments:
//!
//! ```text
//! RAR_{N+1} = sign_{BB_{N+1}}({RAR_N, cert_N, DN_BB_{N+2}, CapCert'_{N+1}})
//! ```
//!
//! "A complete request therefore is comprised of a collection of
//! information, each signed by the entity that added it. The signatures
//! both assert the authenticity of the information and allows for the
//! tracking the path taken by a request as it moves from BB to BB."

use crate::rar::ResSpec;
use qos_crypto::{Certificate, DistinguishedName, KeyPair, PublicKey, Signature};
use qos_policy::AttributeSet;
use qos_wire::{Decode, Encode, Reader, SharedBytes, WireError, Writer};
use std::sync::OnceLock;

/// One layer of the envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum RarLayer {
    /// The user's innermost request.
    User {
        /// The reservation specification.
        res_spec: ResSpec,
        /// `DN_BB_A`: the broker the user submits to (binds the request
        /// to its entry point).
        source_bb: DistinguishedName,
        /// `CapCert'_CAS` and `CapCert'_U`: the CAS-issued capability
        /// certificate plus the user's delegation of it to the source BB.
        capability_certs: Vec<Certificate>,
    },
    /// A broker's wrapper around what it received.
    Broker {
        /// The signed message this broker received (`RAR_N`).
        inner: Box<SignedRar>,
        /// `cert_N`: certificate of the inner message's signer, added by
        /// this broker as introducer material.
        upstream_cert: Certificate,
        /// `DN_BB_{N+2}`: the next downstream broker this copy is
        /// addressed to (None only on the destination's own records).
        next_bb: Option<DistinguishedName>,
        /// `CapCert'_{N+1}`: new delegation certificates added here.
        capability_certs: Vec<Certificate>,
        /// Additional policy information the local policy server attached
        /// ("the BB receives additional domain-wide information from the
        /// policy server").
        policy_attachments: AttributeSet,
    },
}

qos_wire::impl_wire_enum!(RarLayer {
    0 => User { res_spec, source_bb, capability_certs },
    1 => Broker { inner, upstream_cert, next_bb, capability_certs, policy_attachments },
});

/// A signed layer.
///
/// The canonical bytes of `layer` — the exact input of `signature` — are
/// cached the first time they are needed (**encode-once**): signing and
/// wrapping store the buffer they just produced, and decoding from a
/// shared buffer ([`qos_wire::from_bytes_shared`]) retains a zero-copy
/// sub-slice of the received message per layer. Verification and
/// re-encoding therefore never re-walk the nested structure, which turns
/// full-chain verification from `O(d²)` to `O(d)` in encoding work.
///
/// The cache is keyed by construction: `layer` must not be mutated after
/// the `SignedRar` is built (no code in this workspace does — and doing
/// so would invalidate `signature` anyway).
#[derive(Debug, Clone)]
pub struct SignedRar {
    /// Payload.
    pub layer: RarLayer,
    /// Who signed it.
    pub signer: DistinguishedName,
    /// Signature over the canonical bytes of `layer`.
    pub signature: Signature,
    /// Lazily-filled canonical encoding of `layer`.
    canonical: OnceLock<SharedBytes>,
}

impl PartialEq for SignedRar {
    fn eq(&self, other: &Self) -> bool {
        // The cache is derived state: a decoded envelope with a
        // prefilled cache equals a freshly built one without.
        self.layer == other.layer
            && self.signer == other.signer
            && self.signature == other.signature
    }
}

impl Encode for SignedRar {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self.layer_bytes());
        self.signer.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for SignedRar {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let start = r.position();
        let layer = RarLayer::decode(r)?;
        let canonical = OnceLock::new();
        if let Some(span) = r.shared_span(start, r.position()) {
            let _ = canonical.set(span);
        }
        Ok(SignedRar {
            layer,
            signer: DistinguishedName::decode(r)?,
            signature: Signature::decode(r)?,
            canonical,
        })
    }
}

/// A cache cell already holding `bytes`.
fn prefilled(bytes: Vec<u8>) -> OnceLock<SharedBytes> {
    let cell = OnceLock::new();
    let _ = cell.set(SharedBytes::from_vec(bytes));
    cell
}

impl SignedRar {
    /// Build and sign the user's innermost request (`RAR_U`).
    pub fn user_request(
        res_spec: ResSpec,
        source_bb: DistinguishedName,
        capability_certs: Vec<Certificate>,
        user_key: &KeyPair,
    ) -> Self {
        let layer = RarLayer::User {
            res_spec: res_spec.clone(),
            source_bb,
            capability_certs,
        };
        let layer_bytes = qos_wire::to_bytes(&layer);
        let signature = user_key.sign(&layer_bytes);
        Self {
            layer,
            signer: res_spec.requestor,
            signature,
            canonical: prefilled(layer_bytes),
        }
    }

    /// Wrap a received message into the next hop's envelope
    /// (`RAR_{N+1}`).
    pub fn wrap(
        inner: SignedRar,
        upstream_cert: Certificate,
        next_bb: Option<DistinguishedName>,
        capability_certs: Vec<Certificate>,
        policy_attachments: AttributeSet,
        signer: DistinguishedName,
        key: &KeyPair,
    ) -> Self {
        let layer = RarLayer::Broker {
            inner: Box::new(inner),
            upstream_cert,
            next_bb,
            capability_certs,
            policy_attachments,
        };
        // Encoding the new layer appends the inner envelope's *cached*
        // canonical bytes (one memcpy) rather than re-walking the nest.
        let layer_bytes = qos_wire::to_bytes(&layer);
        let signature = key.sign(&layer_bytes);
        Self {
            layer,
            signer,
            signature,
            canonical: prefilled(layer_bytes),
        }
    }

    /// The canonical bytes of `layer` — the exact signature input —
    /// computed at most once per envelope lifetime.
    ///
    /// Envelopes built by [`SignedRar::user_request`] / [`SignedRar::wrap`]
    /// or decoded via [`qos_wire::from_bytes_shared`] never encode here;
    /// only envelopes decoded through a plain reader pay one encoding on
    /// first use.
    pub fn layer_bytes(&self) -> &[u8] {
        self.canonical
            .get_or_init(|| SharedBytes::from_vec(qos_wire::to_bytes(&self.layer)))
            .as_slice()
    }

    /// Verify this layer's signature under `pk`.
    pub fn verify_signature(&self, pk: PublicKey) -> bool {
        pk.verify(self.layer_bytes(), &self.signature)
    }

    /// The signature value (for tests).
    pub fn signature(&self) -> Signature {
        self.signature
    }

    /// The reservation specification, wherever it is nested.
    pub fn res_spec(&self) -> &ResSpec {
        match &self.layer {
            RarLayer::User { res_spec, .. } => res_spec,
            RarLayer::Broker { inner, .. } => inner.res_spec(),
        }
    }

    /// Envelope depth: 1 for a bare user request, +1 per broker wrap.
    pub fn depth(&self) -> usize {
        match &self.layer {
            RarLayer::User { .. } => 1,
            RarLayer::Broker { inner, .. } => 1 + inner.depth(),
        }
    }

    /// Signer DNs innermost-first: `[user, BB_A, BB_B, …]` — the signal
    /// path trace.
    pub fn signer_path(&self) -> Vec<DistinguishedName> {
        let mut path = Vec::with_capacity(self.depth());
        self.collect_signer_path(&mut path);
        path
    }

    fn collect_signer_path(&self, out: &mut Vec<DistinguishedName>) {
        if let RarLayer::Broker { inner, .. } = &self.layer {
            inner.collect_signer_path(out);
        }
        out.push(self.signer.clone());
    }

    /// All capability certificates, innermost (CAS grant) first — the
    /// growing capability list of Figure 7.
    pub fn capability_certs(&self) -> Vec<Certificate> {
        let mut all = Vec::new();
        self.collect_capability_certs(&mut all);
        all
    }

    fn collect_capability_certs(&self, out: &mut Vec<Certificate>) {
        match &self.layer {
            RarLayer::User {
                capability_certs, ..
            } => out.extend(capability_certs.iter().cloned()),
            RarLayer::Broker {
                inner,
                capability_certs,
                ..
            } => {
                inner.collect_capability_certs(out);
                out.extend(capability_certs.iter().cloned());
            }
        }
    }

    /// Union of all policy attachments, inner layers first (outer layers
    /// override on key conflicts).
    pub fn merged_attachments(&self) -> AttributeSet {
        let mut out = AttributeSet::new();
        fn walk(rar: &SignedRar, out: &mut AttributeSet) {
            if let RarLayer::Broker {
                inner,
                policy_attachments,
                ..
            } = &rar.layer
            {
                walk(inner, out);
                out.merge(policy_attachments);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Serialized size in bytes (the EXP-S metric).
    pub fn encoded_len(&self) -> usize {
        qos_wire::to_bytes(self).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rar::RarId;
    use qos_broker::Interval;
    use qos_crypto::{CertificateAuthority, Timestamp, Validity};
    use qos_policy::Value;

    fn spec() -> ResSpec {
        ResSpec::new(
            RarId(1),
            DistinguishedName::user("Alice", "ANL"),
            "domain-a",
            "domain-c",
            7,
            10_000_000,
            Interval::starting_at(Timestamp(0), 3600),
        )
    }

    struct Fix {
        ca: CertificateAuthority,
        user: KeyPair,
        bb_a: KeyPair,
        bb_b: KeyPair,
    }

    fn fix() -> Fix {
        Fix {
            ca: CertificateAuthority::new(
                DistinguishedName::authority("CA"),
                KeyPair::from_seed(b"ca"),
            ),
            user: KeyPair::from_seed(b"alice"),
            bb_a: KeyPair::from_seed(b"bb-a"),
            bb_b: KeyPair::from_seed(b"bb-b"),
        }
    }

    fn build_nested(f: &mut Fix) -> SignedRar {
        let user_cert = f.ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            f.user.public(),
            Validity::unbounded(),
        );
        let cert_a = f.ca.issue_identity(
            DistinguishedName::broker("domain-a"),
            f.bb_a.public(),
            Validity::unbounded(),
        );
        let rar_u = SignedRar::user_request(
            spec(),
            DistinguishedName::broker("domain-a"),
            vec![],
            &f.user,
        );
        let rar_a = SignedRar::wrap(
            rar_u,
            user_cert,
            Some(DistinguishedName::broker("domain-b")),
            vec![],
            AttributeSet::new().with("te_hint", Value::Int(1)),
            DistinguishedName::broker("domain-a"),
            &f.bb_a,
        );
        SignedRar::wrap(
            rar_a,
            cert_a,
            Some(DistinguishedName::broker("domain-c")),
            vec![],
            AttributeSet::new().with("sls_b", Value::Int(2)),
            DistinguishedName::broker("domain-b"),
            &f.bb_b,
        )
    }

    #[test]
    fn nesting_grows_depth_and_path() {
        let mut f = fix();
        let rar = build_nested(&mut f);
        assert_eq!(rar.depth(), 3);
        let path: Vec<String> = rar.signer_path().iter().map(|d| d.to_string()).collect();
        assert_eq!(
            path,
            vec![
                "CN=Alice,OU=Users,O=ANL",
                "CN=BB,OU=domain-a,O=QoS",
                "CN=BB,OU=domain-b,O=QoS"
            ]
        );
        assert_eq!(rar.res_spec().rar_id, RarId(1));
    }

    #[test]
    fn signatures_verify_layer_by_layer() {
        let mut f = fix();
        let rar = build_nested(&mut f);
        assert!(rar.verify_signature(f.bb_b.public()));
        let RarLayer::Broker { inner, .. } = &rar.layer else {
            panic!()
        };
        assert!(inner.verify_signature(f.bb_a.public()));
        let RarLayer::Broker { inner: user, .. } = &inner.layer else {
            panic!()
        };
        assert!(user.verify_signature(f.user.public()));
    }

    #[test]
    fn tampering_any_layer_breaks_outer_signature() {
        let mut f = fix();
        let rar = build_nested(&mut f);
        // Deep-tamper: mutate the serialized form so the damage lands
        // inside a nested, already-signed layer.
        let mut bytes = qos_wire::to_bytes(&rar);
        // Flip a byte near the middle (inside nested payload).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match qos_wire::from_bytes::<SignedRar>(&bytes) {
            Err(_) => {} // structural damage detected by codec
            Ok(mutated) => {
                assert!(
                    !mutated.verify_signature(f.bb_b.public()),
                    "outer signature must not survive inner mutation"
                );
            }
        }
    }

    #[test]
    fn merged_attachments_accumulate_inner_to_outer() {
        let mut f = fix();
        let rar = build_nested(&mut f);
        let merged = rar.merged_attachments();
        assert_eq!(merged.get("te_hint"), Some(&Value::Int(1)));
        assert_eq!(merged.get("sls_b"), Some(&Value::Int(2)));
    }

    #[test]
    fn wire_round_trip_preserves_verification() {
        let mut f = fix();
        let rar = build_nested(&mut f);
        let bytes = qos_wire::to_bytes(&rar);
        let back: SignedRar = qos_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, rar);
        assert!(back.verify_signature(f.bb_b.public()));
    }

    #[test]
    fn cached_layer_bytes_match_fresh_encoding() {
        let mut f = fix();
        let rar = build_nested(&mut f);
        // Built chain: caches were prefilled at sign time.
        assert_eq!(rar.layer_bytes(), &qos_wire::to_bytes(&rar.layer)[..]);

        // Shared-buffer decode: every nested layer must hold a view that
        // is byte-identical to a fresh encoding of that layer.
        let buf: std::sync::Arc<[u8]> = qos_wire::to_bytes(&rar).into();
        let back: SignedRar = qos_wire::from_bytes_shared(&buf).unwrap();
        let mut cur = &back;
        loop {
            assert_eq!(cur.layer_bytes(), &qos_wire::to_bytes(&cur.layer)[..]);
            match &cur.layer {
                RarLayer::Broker { inner, .. } => cur = inner,
                RarLayer::User { .. } => break,
            }
        }
        // Re-encoding the decoded envelope reproduces the wire bytes.
        assert_eq!(qos_wire::to_bytes(&back), &buf[..]);
    }

    #[test]
    fn encoded_len_grows_with_depth() {
        let mut f = fix();
        let rar_u = SignedRar::user_request(
            spec(),
            DistinguishedName::broker("domain-a"),
            vec![],
            &f.user,
        );
        let l1 = rar_u.encoded_len();
        let nested = build_nested(&mut f);
        assert!(nested.encoded_len() > l1 * 2, "nesting adds layers + certs");
    }
}
