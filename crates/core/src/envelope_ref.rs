//! Borrowed envelope decode (DESIGN.md §D15).
//!
//! The warm admit/deny path receives a `SignalMessage::Request` whose
//! byte-identical twin was fully verified moments ago (signalling
//! retries, two-phase commit re-sends). Re-materializing the whole
//! nested [`SignedRar`] — strings, DNs, certificate chains — just to
//! compute the same digest again is pure allocation churn.
//!
//! [`EnvelopeRef`] is a *skip-parser* over the exact canonical wire
//! layout: it walks the nested layers without building any owned value,
//! recording only the facts the warm path needs — the outer layer's
//! canonical byte span (the signature input, and the reply-cache key
//! material), the outer [`Signature`], the envelope depth, and the
//! `rar_id` buried in the innermost user layer (for shard routing).
//! Everything stays a slice into the receive buffer.
//!
//! ## Equivalence contract
//!
//! The skip-parser accepts exactly the inputs the owned decoder
//! ([`qos_wire::from_bytes`]`::<SignalMessage>`) accepts for `Request`
//! messages, and rejects exactly what it rejects (structural
//! validation included: enum tags, bool canonicality, UTF-8, length
//! bounds, trailing bytes). The borrowed-≡-owned proptests in
//! `qos-transport` pin this layer by layer; any divergence is a bug in
//! this module, never a protocol difference.
// Zero-alloc hot-path module (DESIGN.md §D15): the dedicated CI lint
// step loads .clippy-hotpath/clippy.toml, under which this attribute
// rejects un-annotated Vec::new / slice::to_vec in this module.
#![deny(clippy::disallowed_methods)]

use crate::envelope::SignedRar;
use crate::messages::SignalMessage;
use crate::rar::RarId;
use qos_crypto::Signature;
use qos_wire::{Decode, Reader, WireError};

/// Wire tag of `SignalMessage::Request`.
const TAG_REQUEST: u8 = 0;
/// Wire tag of `RarLayer::User`.
const TAG_LAYER_USER: u8 = 0;
/// Wire tag of `RarLayer::Broker`.
const TAG_LAYER_BROKER: u8 = 1;

/// A borrowed view of one `SignalMessage::Request` envelope: the facts
/// the warm revalidation path needs, with zero owned decoding.
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeRef<'a> {
    layer_bytes: &'a [u8],
    signature: Signature,
    depth: usize,
    rar_id: RarId,
}

impl<'a> EnvelopeRef<'a> {
    /// Parse `bytes` as a canonical `SignalMessage` encoding.
    ///
    /// Returns `Ok(Some(_))` for a structurally valid `Request`,
    /// `Ok(None)` for any other (valid-tagged) message variant — the
    /// caller falls back to owned decoding — and `Err` for input the
    /// owned decoder would also reject.
    pub fn parse(bytes: &'a [u8]) -> Result<Option<Self>, WireError> {
        let mut r = Reader::new(bytes);
        let tag = r.get_u8()?;
        if tag != TAG_REQUEST {
            return Ok(None);
        }
        let parsed = skip_signed_rar(&mut r, bytes)?;
        r.finish()?;
        Ok(Some(parsed))
    }

    /// The canonical bytes of the outer layer — the exact signature
    /// input, identical to [`SignedRar::layer_bytes`] on the owned
    /// decode of the same message.
    pub fn layer_bytes(&self) -> &'a [u8] {
        self.layer_bytes
    }

    /// The outer signature.
    pub fn signature(&self) -> Signature {
        self.signature
    }

    /// Envelope depth: 1 for a bare user request, +1 per broker wrap.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The request id from the innermost user layer (shard routing).
    pub fn rar_id(&self) -> RarId {
        self.rar_id
    }

    /// Owned decode of the same bytes — the slow-path escape hatch for
    /// callers that held an `EnvelopeRef` and then missed the warm
    /// cache. Allocates; never fails for bytes this type was parsed
    /// from (pinned by the equivalence tests).
    pub fn to_owned_message(bytes: &[u8]) -> Result<SignalMessage, WireError> {
        qos_wire::from_bytes(bytes)
    }
}

/// Skip one `SignedRar`, returning its borrowed facts. `input` is the
/// full buffer `r` reads from, used to recover byte spans by position.
fn skip_signed_rar<'a>(r: &mut Reader<'a>, input: &'a [u8]) -> Result<EnvelopeRef<'a>, WireError> {
    let layer_start = r.position();
    let (depth, rar_id) = skip_layer(r)?;
    let layer_bytes = &input[layer_start..r.position()];
    skip_dn(r)?; // signer
    let signature = Signature::decode(r)?;
    Ok(EnvelopeRef {
        layer_bytes,
        signature,
        depth,
        rar_id,
    })
}

/// Skip one `RarLayer`, returning `(depth, rar_id)` of the nest below.
fn skip_layer(r: &mut Reader<'_>) -> Result<(usize, RarId), WireError> {
    match r.get_u8()? {
        TAG_LAYER_USER => {
            let rar_id = skip_res_spec(r)?;
            skip_dn(r)?; // source_bb
            skip_vec(r, skip_certificate)?; // capability_certs
            Ok((1, rar_id))
        }
        TAG_LAYER_BROKER => {
            // inner: Box<SignedRar> — recurse; depth is bounded by the
            // same input-length argument as the owned decoder (every
            // layer consumes ≥ 1 byte).
            let (inner_depth, rar_id) = skip_layer(r)?;
            skip_dn(r)?; // inner signer
            r.skip(16)?; // inner signature
            skip_certificate(r)?; // upstream_cert
            skip_option(r, skip_dn)?; // next_bb
            skip_vec(r, skip_certificate)?; // capability_certs
            skip_attribute_set(r)?; // policy_attachments
            Ok((1 + inner_depth, rar_id))
        }
        t => Err(WireError::InvalidTag(t)),
    }
}

/// Skip a `ResSpec`, returning its `rar_id` (the first field).
fn skip_res_spec(r: &mut Reader<'_>) -> Result<RarId, WireError> {
    let rar_id = RarId(r.get_u64()?);
    skip_dn(r)?; // requestor
    skip_str(r)?; // source_domain
    skip_str(r)?; // dest_domain
    r.skip(16)?; // flow, rate_bps
    r.skip(16)?; // interval {start, end}
    skip_option(r, |r| r.skip(8))?; // max_cost
    skip_option(r, |r| r.skip(8))?; // cpu_reservation_id
    r.get_bool()?; // tunnel (canonicality check, like the decoder)
    skip_attribute_set(r)?; // attrs
    skip_vec(r, skip_str)?; // assertions (Assertion = { claim: String })
    Ok(rar_id)
}

fn skip_str(r: &mut Reader<'_>) -> Result<(), WireError> {
    // Validates UTF-8 like `get_str`, so borrowed and owned decoding
    // reject the same inputs.
    r.get_str_ref().map(|_| ())
}

fn skip_dn(r: &mut Reader<'_>) -> Result<(), WireError> {
    // DistinguishedName = Vec<Rdn>, Rdn = { attr: String, value: String }
    skip_vec(r, |r| {
        skip_str(r)?;
        skip_str(r)
    })
}

fn skip_vec<F>(r: &mut Reader<'_>, mut elem: F) -> Result<(), WireError>
where
    F: FnMut(&mut Reader<'_>) -> Result<(), WireError>,
{
    let len = r.get_seq_len()?;
    for _ in 0..len {
        elem(r)?;
    }
    Ok(())
}

fn skip_option<F>(r: &mut Reader<'_>, some: F) -> Result<(), WireError>
where
    F: FnOnce(&mut Reader<'_>) -> Result<(), WireError>,
{
    match r.get_u8()? {
        0 => Ok(()),
        1 => some(r),
        t => Err(WireError::InvalidTag(t)),
    }
}

fn skip_certificate(r: &mut Reader<'_>) -> Result<(), WireError> {
    // TbsCertificate
    r.skip(8)?; // serial
    skip_dn(r)?; // issuer
    skip_dn(r)?; // subject
    r.skip(16)?; // validity {not_before, not_after}
    r.skip(8)?; // subject_public_key
    skip_vec(r, skip_extension)?;
    r.skip(16) // signature {r, s}
}

fn skip_extension(r: &mut Reader<'_>) -> Result<(), WireError> {
    match r.get_u8()? {
        0 => Ok(()),                // CapabilityCertificateFlag
        1 => skip_vec(r, skip_str), // Capabilities(Vec<String>)
        2 => skip_restriction(r),
        3 => r.get_bool().map(|_| ()), // BasicConstraints { is_ca }
        t => Err(WireError::InvalidTag(t)),
    }
}

fn skip_restriction(r: &mut Reader<'_>) -> Result<(), WireError> {
    match r.get_u8()? {
        0 => skip_str(r), // ValidForDomain
        1 => r.skip(8),   // ValidForRar
        2 => r.skip(8),   // MaxBandwidthBps
        t => Err(WireError::InvalidTag(t)),
    }
}

fn skip_attribute_set(r: &mut Reader<'_>) -> Result<(), WireError> {
    skip_vec(r, |r| {
        skip_str(r)?;
        skip_value(r)
    })
}

fn skip_value(r: &mut Reader<'_>) -> Result<(), WireError> {
    match r.get_u8()? {
        0 => skip_str(r),              // Str
        1 => r.skip(8),                // Int
        2 => r.skip(8),                // Bandwidth
        3 => r.skip(4),                // TimeOfDay
        4 => r.get_bool().map(|_| ()), // Bool
        5 => skip_vec(r, skip_value),  // List
        t => Err(WireError::InvalidTag(t)),
    }
}

/// Borrowed facts match the owned decode of the same envelope — the
/// programmatic form of the equivalence contract, used by tests and the
/// warm-path integration.
pub fn matches_owned(env: &EnvelopeRef<'_>, rar: &SignedRar) -> bool {
    env.layer_bytes == rar.layer_bytes()
        && env.signature == rar.signature()
        && env.depth == rar.depth()
        && env.rar_id == rar.res_spec().rar_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::SignedRar;
    use crate::rar::ResSpec;
    use qos_broker::Interval;
    use qos_crypto::{CertificateAuthority, DistinguishedName, KeyPair, Timestamp, Validity};
    use qos_policy::request::Assertion;
    use qos_policy::{AttributeSet, Value};

    fn build_chain(depth: usize, rich: bool) -> SignedRar {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("CA"),
            KeyPair::from_seed(b"ca"),
        );
        let user = KeyPair::from_seed(b"alice");
        let mut spec = ResSpec::new(
            RarId(42),
            DistinguishedName::user("Alice", "ANL"),
            "domain-0",
            &format!("domain-{}", depth.max(1) - 1),
            7,
            10_000_000,
            Interval::starting_at(Timestamp(0), 3600),
        );
        if rich {
            spec = spec
                .with_max_cost(5000)
                .with_cpu_reservation(111)
                .with_assertion(Assertion::group("ATLAS"))
                .as_tunnel();
            spec.attrs = AttributeSet::new().with("offer", Value::Int(3)).with(
                "list",
                Value::List(vec![Value::Bool(true), Value::Str("x".into())]),
            );
        }
        let user_cert = ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            user.public(),
            Validity::unbounded(),
        );
        let mut rar = SignedRar::user_request(
            spec,
            DistinguishedName::broker("domain-0"),
            vec![user_cert.clone()],
            &user,
        );
        let mut prev_cert = user_cert;
        for i in 1..depth {
            let key = KeyPair::from_seed(format!("bb-{i}").as_bytes());
            let dn = DistinguishedName::broker(&format!("domain-{i}"));
            let cert = ca.issue_identity(dn.clone(), key.public(), Validity::unbounded());
            let attach = if rich {
                AttributeSet::new().with(&format!("hop-{i}"), Value::Bandwidth(1_000_000))
            } else {
                AttributeSet::new()
            };
            rar = SignedRar::wrap(
                rar,
                prev_cert,
                Some(DistinguishedName::broker(&format!("domain-{}", i + 1))),
                vec![],
                attach,
                dn,
                &key,
            );
            prev_cert = cert;
        }
        rar
    }

    #[test]
    fn borrowed_facts_match_owned_decode() {
        for depth in [1usize, 2, 4, 8] {
            for rich in [false, true] {
                let rar = build_chain(depth, rich);
                let bytes = qos_wire::to_bytes(&SignalMessage::Request(rar.clone()));
                let env = EnvelopeRef::parse(&bytes)
                    .expect("valid request parses")
                    .expect("request variant");
                assert!(
                    matches_owned(&env, &rar),
                    "depth={depth} rich={rich}: borrowed facts diverge from owned"
                );
            }
        }
    }

    #[test]
    fn non_request_messages_yield_none() {
        let mut ca = CertificateAuthority::new(
            DistinguishedName::authority("CA"),
            KeyPair::from_seed(b"ca"),
        );
        let key = KeyPair::from_seed(b"z");
        let cert = ca.issue_identity(
            DistinguishedName::broker("domain-z"),
            key.public(),
            Validity::unbounded(),
        );
        let bytes = qos_wire::to_bytes(&SignalMessage::Approve(
            crate::messages::Approval::originate(
                RarId(1),
                cert,
                "domain-z",
                DistinguishedName::broker("domain-z"),
                AttributeSet::new(),
                &key,
            ),
        ));
        assert!(EnvelopeRef::parse(&bytes).unwrap().is_none());
    }

    #[test]
    fn borrowed_and_owned_agree_on_corrupted_input() {
        // Deterministic mini-fuzz: on every mutation, the skip-parser
        // and the owned decoder must agree on accept/reject. (On accept
        // the facts must also match — tampered-but-structurally-valid
        // envelopes still parse; signatures catch them later.)
        let rar = build_chain(3, true);
        let valid = qos_wire::to_bytes(&SignalMessage::Request(rar));
        let mut lcg: u64 = 0x0dd0_5e5e_1234_5678;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as usize
        };
        for _ in 0..4000 {
            let mut m = valid.clone();
            match next() % 3 {
                0 => {
                    let i = next() % m.len();
                    m[i] ^= (next() % 255 + 1) as u8;
                }
                1 => m.truncate(next() % m.len()),
                _ => {
                    let len = next() % 96;
                    m = (0..len).map(|_| (next() % 256) as u8).collect();
                }
            }
            // Owned decode through the shared-buffer path, as the
            // transport does: layer_bytes() is then the raw received
            // span, which is what the borrowed span must equal. (A
            // plain `from_bytes` *re-encodes* the decoded value, which
            // legitimately differs for mutated-but-parseable input with
            // non-canonical map ordering.)
            let arc: std::sync::Arc<[u8]> = m.clone().into();
            let owned = qos_wire::from_bytes_shared::<SignalMessage>(&arc);
            let borrowed = EnvelopeRef::parse(&m);
            match (&owned, &borrowed) {
                (Ok(SignalMessage::Request(o)), Ok(Some(b))) => {
                    assert!(matches_owned(b, o), "facts diverge on mutated input");
                }
                (Ok(SignalMessage::Request(_)), _) => {
                    panic!("owned accepted a Request the skip-parser rejected")
                }
                (Ok(_), Ok(None)) => {} // non-Request variant, both fine
                (Ok(other), Ok(Some(_))) => {
                    panic!("skip-parser saw a Request where owned saw {other:?}")
                }
                (Err(_), Err(_)) => {}
                // The skip-parser returns None after the tag byte for
                // non-Request variants it never validates, so owned may
                // reject what borrowed shrugged at — but never a Some.
                (Err(_), Ok(None)) => {}
                (Err(e), Ok(Some(_))) => {
                    panic!("skip-parser accepted a Request owned rejects: {e:?}")
                }
                (Ok(msg), Err(e)) => {
                    panic!("skip-parser rejected input owned accepts ({msg:?}): {e:?}")
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let rar = build_chain(2, false);
        let mut bytes = qos_wire::to_bytes(&SignalMessage::Request(rar));
        bytes.push(0);
        assert!(EnvelopeRef::parse(&bytes).is_err());
        assert!(qos_wire::from_bytes::<SignalMessage>(&bytes).is_err());
    }
}
