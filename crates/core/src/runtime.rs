//! Threaded actor runtime: each broker runs on its own OS thread with a
//! crossbeam mailbox, and peer links carry authenticated channel frames.
//!
//! The virtual-time [`crate::drive::Mesh`] answers *how long* signalling
//! takes; this runtime demonstrates the same protocol state machines
//! running **concurrently** — messages between brokers are sealed and
//! opened on real [`crate::channel::SecureChannel`]s established by
//! mutual handshake, and many reservations can be in flight at once.
//! (The approved crate set has no async runtime, so signalling channels
//! are actor threads + crossbeam channels rather than tokio tasks; see
//! DESIGN.md §2.)

use crate::channel::{handshake, ChannelIdentity, PeerPin, SecureChannel};
use crate::envelope::SignedRar;
use crate::messages::SignalMessage;
use crate::node::{BbNode, Completion};
use crate::rar::RarId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use qos_crypto::{Certificate, PublicKey, Timestamp};
use qos_telemetry::{Counter, Gauge, Histogram, StdClock, Telemetry, TraceId};
use std::collections::HashMap;
use std::thread::JoinHandle;

enum ActorMsg {
    /// A sealed frame from a peer, stamped with its enqueue time so the
    /// receiving broker can attribute mailbox queue-wait to the trace.
    Frame {
        from: String,
        sealed: crate::channel::Sealed,
        enqueued_ns: u64,
    },
    /// A local user submission (trusted local delivery, not a peer frame).
    Submit {
        rar: Box<SignedRar>,
        user_cert: Box<Certificate>,
        enqueued_ns: u64,
    },
    /// A local sub-flow request inside an established tunnel.
    TunnelFlow {
        tunnel: crate::rar::RarId,
        flow: u64,
        rate_bps: u64,
        requestor: Box<qos_crypto::DistinguishedName>,
    },
    /// Advance the actor's wall clock.
    SetTime(Timestamp),
    /// Drain completions to the supervisor and stop.
    Shutdown,
}

/// Unit of work in an actor's loop: a raw mailbox message, or a frame
/// that was opened and decoded early while coalescing a tunnel-flow
/// batch and must still be dispatched in order.
enum Work {
    Raw(ActorMsg),
    Decoded(String, Box<SignalMessage>, u64),
}

/// Per-actor instrument handles (all detached no-ops without a registry).
struct ActorInstruments {
    mailbox_depth: Gauge,
    completion_latency: Histogram,
    frames_sealed: Counter,
    frames_opened: Counter,
    frames_rejected: Counter,
    live: bool,
}

impl ActorInstruments {
    fn resolve(telemetry: &Telemetry, domain: &str) -> Self {
        let dl: &[(&str, &str)] = &[("domain", domain)];
        Self {
            mailbox_depth: telemetry.gauge(
                "bb_mailbox_depth_peak",
                "Peak number of messages waiting in the actor mailbox",
                dl,
            ),
            completion_latency: telemetry.histogram(
                "bb_completion_latency_ns",
                "Submit-to-completion latency at the source broker",
                dl,
            ),
            frames_sealed: telemetry.counter(
                "bb_frames_sealed_total",
                "Channel frames sealed for peers",
                dl,
            ),
            frames_opened: telemetry.counter(
                "bb_frames_opened_total",
                "Channel frames opened and decoded from peers",
                dl,
            ),
            frames_rejected: telemetry.counter(
                "bb_frames_rejected_total",
                "Channel frames rejected (tampered, replayed, or undecodable)",
                dl,
            ),
            live: telemetry.is_enabled(),
        }
    }
}

/// A handle to a running broker actor.
pub struct ActorHandle {
    domain: String,
    tx: Sender<ActorMsg>,
    join: Option<JoinHandle<(BbNode, Vec<Completion>)>>,
}

/// A mesh of broker actors on OS threads.
pub struct ActorMesh {
    actors: HashMap<String, ActorHandle>,
    completion_rx: Receiver<(String, Completion)>,
    completion_tx: Sender<(String, Completion)>,
    telemetry: Telemetry,
}

impl Default for ActorMesh {
    fn default() -> Self {
        Self::new()
    }
}

impl ActorMesh {
    /// An empty actor mesh.
    pub fn new() -> Self {
        let (completion_tx, completion_rx) = unbounded();
        Self {
            actors: HashMap::new(),
            completion_rx,
            completion_tx,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Route mesh-level instruments (mailbox depth, completion latency,
    /// frame counters, handshakes) into `telemetry`. Call before
    /// [`ActorMesh::spawn`]; the per-broker instruments themselves are
    /// configured through [`crate::node::BbConfig::telemetry`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Spawn the brokers of `nodes` as actors, establishing pairwise
    /// secure channels between `links` (pairs of domain names).
    ///
    /// `identities` supplies each broker's channel identity and `ca_key`
    /// the CA all peer pins use.
    pub fn spawn(
        &mut self,
        nodes: Vec<BbNode>,
        identities: HashMap<String, ChannelIdentity>,
        links: &[(String, String)],
        ca_key: PublicKey,
    ) {
        // Establish channels synchronously before spawning (the paper's
        // SLAs exist before any signalling).
        let handshakes = self.telemetry.counter(
            "bb_channel_handshakes_total",
            "Secure-channel handshakes completed at mesh setup",
            &[],
        );
        let mut channels: HashMap<String, HashMap<String, SecureChannel>> = HashMap::new();
        for (nonce, (a, b)) in (1u64..).zip(links.iter()) {
            let ia = &identities[a];
            let ib = &identities[b];
            let (ca_end, cb_end) = handshake(
                ia,
                ib,
                &PeerPin {
                    ca_key,
                    dn: ib.cert.tbs.subject.clone(),
                },
                &PeerPin {
                    ca_key,
                    dn: ia.cert.tbs.subject.clone(),
                },
                nonce,
                Timestamp::ZERO,
            )
            .expect("handshake between configured peers");
            handshakes.inc();
            channels
                .entry(a.clone())
                .or_default()
                .insert(b.clone(), ca_end);
            channels
                .entry(b.clone())
                .or_default()
                .insert(a.clone(), cb_end);
        }

        // Build mailboxes first so every actor can reach every peer.
        let mut mailboxes: HashMap<String, Sender<ActorMsg>> = HashMap::new();
        let mut receivers: HashMap<String, Receiver<ActorMsg>> = HashMap::new();
        for node in &nodes {
            let (tx, rx) = unbounded();
            mailboxes.insert(node.domain().to_string(), tx);
            receivers.insert(node.domain().to_string(), rx);
        }

        for mut node in nodes {
            let domain = node.domain().to_string();
            let rx = receivers.remove(&domain).unwrap();
            let peers_tx = mailboxes.clone();
            let mut my_channels = channels.remove(&domain).unwrap_or_default();
            let completion_tx = self.completion_tx.clone();
            let dom = domain.clone();
            let ins = ActorInstruments::resolve(&self.telemetry, &domain);
            let join = std::thread::spawn(move || {
                // Frames already opened + decoded while coalescing a
                // tunnel-flow batch, awaiting normal dispatch in their
                // arrival order.
                let mut pending: std::collections::VecDeque<Work> =
                    std::collections::VecDeque::new();
                // Source-side submit times, for completion latency.
                let mut submitted_ns: HashMap<RarId, u64> = HashMap::new();
                loop {
                    if ins.live {
                        ins.mailbox_depth
                            .record_max(pending.len() as i64 + rx.len() as i64);
                    }
                    let work = match pending.pop_front() {
                        Some(w) => w,
                        None => match rx.recv() {
                            Ok(m) => Work::Raw(m),
                            Err(_) => break,
                        },
                    };
                    let (from, msg, enqueued_ns) = match work {
                        Work::Raw(ActorMsg::SetTime(t)) => {
                            node.set_time(t);
                            continue;
                        }
                        Work::Raw(ActorMsg::Shutdown) => break,
                        Work::Raw(ActorMsg::Submit {
                            rar,
                            user_cert,
                            enqueued_ns,
                        }) => {
                            let spec = rar.res_spec();
                            let (rar_id, trace) = (
                                spec.rar_id,
                                TraceId::mint(&spec.source_domain, spec.rar_id.0),
                            );
                            if ins.live {
                                submitted_ns.insert(rar_id, enqueued_ns);
                            }
                            node.record_queue_wait(trace, rar_id, enqueued_ns);
                            let out = node.submit(*rar, &user_cert);
                            route_out(&dom, out, &mut my_channels, &peers_tx, &ins);
                            drain_completions(
                                &mut node,
                                &dom,
                                &completion_tx,
                                &mut submitted_ns,
                                &ins,
                            );
                            continue;
                        }
                        Work::Raw(ActorMsg::TunnelFlow {
                            tunnel,
                            flow,
                            rate_bps,
                            requestor,
                        }) => {
                            match node.request_tunnel_flow(tunnel, flow, rate_bps, *requestor) {
                                Ok(out) => route_out(&dom, out, &mut my_channels, &peers_tx, &ins),
                                // Rejected at the source (aggregate spent):
                                // complete immediately, as the mesh driver
                                // does.
                                Err(e) => {
                                    let _ = completion_tx.send((
                                        dom.clone(),
                                        Completion::TunnelFlow {
                                            tunnel,
                                            flow,
                                            accepted: false,
                                            reason: e.to_string(),
                                        },
                                    ));
                                }
                            }
                            drain_completions(
                                &mut node,
                                &dom,
                                &completion_tx,
                                &mut submitted_ns,
                                &ins,
                            );
                            continue;
                        }
                        Work::Raw(ActorMsg::Frame {
                            from,
                            sealed,
                            enqueued_ns,
                        }) => match open_frame(&mut my_channels, &from, sealed, &ins) {
                            Some(m) => (from, m, enqueued_ns),
                            None => continue, // tampered / replayed frame
                        },
                        Work::Decoded(from, m, enqueued_ns) => (from, *m, enqueued_ns),
                    };
                    if let Some(trace) = msg.trace_id() {
                        node.record_queue_wait(trace, msg.rar_id(), enqueued_ns);
                    }
                    let out = if let SignalMessage::TunnelFlow(t) = msg {
                        // Coalesce: any tunnel sub-flow requests already
                        // sitting in the mailbox join this one in a single
                        // batch whose signatures verify on the worker
                        // pool. Other queued messages keep their arrival
                        // order via `pending`; a control message stops the
                        // drain.
                        let mut batch = vec![(from, t)];
                        while let Ok(raw) = rx.try_recv() {
                            match raw {
                                ActorMsg::Frame {
                                    from: f2,
                                    sealed,
                                    enqueued_ns,
                                } => match open_frame(&mut my_channels, &f2, sealed, &ins) {
                                    Some(SignalMessage::TunnelFlow(t2)) => {
                                        batch.push((f2, t2));
                                    }
                                    Some(m2) => pending.push_back(Work::Decoded(
                                        f2,
                                        Box::new(m2),
                                        enqueued_ns,
                                    )),
                                    None => {}
                                },
                                other => {
                                    pending.push_back(Work::Raw(other));
                                    break;
                                }
                            }
                        }
                        node.recv_tunnel_flows(batch)
                    } else {
                        node.recv(&from, msg)
                    };
                    route_out(&dom, out, &mut my_channels, &peers_tx, &ins);
                    drain_completions(&mut node, &dom, &completion_tx, &mut submitted_ns, &ins);
                }
                let completions = node.take_completions();
                (node, completions)
            });
            self.actors.insert(
                domain.clone(),
                ActorHandle {
                    tx: mailboxes[&domain].clone(),
                    domain,
                    join: Some(join),
                },
            );
        }
    }

    /// Domains with running actors.
    pub fn domains(&self) -> impl Iterator<Item = &str> {
        self.actors.values().map(|h| h.domain.as_str())
    }

    /// Submit a user request to a broker actor.
    pub fn submit(&self, domain: &str, rar: SignedRar, user_cert: Certificate) {
        let h = &self.actors[domain];
        let _ = h.tx.send(ActorMsg::Submit {
            rar: Box::new(rar),
            user_cert: Box::new(user_cert),
            enqueued_ns: StdClock::now(),
        });
    }

    /// Request a sub-flow inside an established tunnel at its source
    /// broker. Bursts of these from one or many sources reach the
    /// destination's mailbox together, where their signatures are
    /// verified as one parallel batch
    /// ([`crate::node::BbNode::recv_tunnel_flows`]).
    pub fn tunnel_flow(
        &self,
        domain: &str,
        tunnel: crate::rar::RarId,
        flow: u64,
        rate_bps: u64,
        requestor: qos_crypto::DistinguishedName,
    ) {
        let h = &self.actors[domain];
        let _ = h.tx.send(ActorMsg::TunnelFlow {
            tunnel,
            flow,
            rate_bps,
            requestor: Box::new(requestor),
        });
    }

    /// Broadcast a wall-clock update.
    pub fn set_time(&self, now: Timestamp) {
        for h in self.actors.values() {
            let _ = h.tx.send(ActorMsg::SetTime(now));
        }
    }

    /// Wait for `n` completions (across all source brokers).
    pub fn wait_completions(&self, n: usize) -> Vec<(String, Completion)> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self
                .completion_rx
                .recv_timeout(std::time::Duration::from_secs(30))
            {
                Ok(c) => out.push(c),
                Err(_) => break,
            }
        }
        out
    }

    /// Stop all actors and return the nodes.
    pub fn shutdown(mut self) -> HashMap<String, BbNode> {
        for h in self.actors.values() {
            let _ = h.tx.send(ActorMsg::Shutdown);
        }
        let mut nodes = HashMap::new();
        for (domain, mut h) in self.actors.drain() {
            if let Some(join) = h.join.take() {
                if let Ok((node, _)) = join.join() {
                    nodes.insert(domain, node);
                }
            }
        }
        nodes
    }
}

/// Open a sealed peer frame and decode the signalling message inside.
///
/// Frames are opened strictly in arrival order per peer (the channel's
/// replay window depends on it). Shared-buffer decode: any RAR envelope
/// in the message keeps zero-copy views of its layers' canonical bytes,
/// so later verification never re-encodes the nest. `None` means the
/// frame was tampered with, replayed, or from an unknown peer.
fn open_frame(
    channels: &mut HashMap<String, SecureChannel>,
    from: &str,
    sealed: crate::channel::Sealed,
    ins: &ActorInstruments,
) -> Option<SignalMessage> {
    let opened = (|| {
        let ch = channels.get_mut(from)?;
        let bytes = ch.open(sealed).ok()?;
        let shared: std::sync::Arc<[u8]> = bytes.into();
        qos_wire::from_bytes_shared::<SignalMessage>(&shared).ok()
    })();
    match &opened {
        Some(_) => ins.frames_opened.inc(),
        None => ins.frames_rejected.inc(),
    }
    opened
}

fn drain_completions(
    node: &mut BbNode,
    dom: &str,
    tx: &Sender<(String, Completion)>,
    submitted_ns: &mut HashMap<RarId, u64>,
    ins: &ActorInstruments,
) {
    for c in node.take_completions() {
        if ins.live {
            if let Completion::Reservation { rar_id, .. } = &c {
                if let Some(t0) = submitted_ns.remove(rar_id) {
                    ins.completion_latency
                        .observe(StdClock::now().saturating_sub(t0));
                }
            }
        }
        let _ = tx.send((dom.to_string(), c));
    }
}

fn route_out(
    from: &str,
    out: Vec<(String, SignalMessage)>,
    channels: &mut HashMap<String, SecureChannel>,
    peers: &HashMap<String, Sender<ActorMsg>>,
    ins: &ActorInstruments,
) {
    for (to, msg) in out {
        let to = to.strip_prefix("user:").unwrap_or(&to).to_string();
        let (Some(ch), Some(tx)) = (channels.get_mut(&to), peers.get(&to)) else {
            continue;
        };
        let sealed = ch.seal(qos_wire::to_bytes(&msg));
        ins.frames_sealed.inc();
        let _ = tx.send(ActorMsg::Frame {
            from: from.to_string(),
            sealed,
            enqueued_ns: StdClock::now(),
        });
    }
}
