//! Threaded actor runtime: each broker runs as a [`ShardedNode`] —
//! N admission shards with work-stealing ingress — and peer links carry
//! authenticated channel frames through per-domain ingress threads.
//!
//! The virtual-time [`crate::drive::Mesh`] answers *how long* signalling
//! takes; this runtime demonstrates the same protocol state machines
//! running **concurrently** — messages between brokers are sealed and
//! opened on real [`crate::channel::SecureChannel`]s established by
//! mutual handshake, and many reservations can be in flight at once.
//! (The approved crate set has no async runtime, so signalling channels
//! are threads + crossbeam channels rather than tokio tasks; see
//! DESIGN.md §2 and §D11.)
//!
//! Division of labour per domain:
//!
//! * the **ingress thread** owns every inbound [`OpenHalf`] — frames
//!   from one peer are opened strictly in arrival order (the channel's
//!   replay window depends on it), decoded once, and dispatched into
//!   the domain's [`ShardedNode`] by reservation id;
//! * the **shard workers** (inside [`ShardedNode`]) run admission and
//!   hand outputs to an [`ActorSink`], which seals under a per-link
//!   [`SealHalf`] lock and drops the frame into the peer's ingress
//!   mailbox — the send happens under the seal lock so frames enter the
//!   mailbox in sequence order.

use crate::channel::{handshake, ChannelIdentity, OpenHalf, PeerPin, SealHalf, Sealed};
use crate::envelope::SignedRar;
use crate::messages::SignalMessage;
use crate::node::{BbNode, Completion};
use crate::shard::{ShardSink, ShardedNode};
use crossbeam::channel::{unbounded, Receiver, Sender};
use qos_crypto::{Certificate, PublicKey, Timestamp};
use qos_telemetry::{Counter, StdClock, Telemetry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

enum IngressMsg {
    /// A sealed frame from a peer, stamped with its enqueue time so the
    /// receiving broker can attribute queue-wait to the trace.
    Frame {
        from: String,
        sealed: Sealed,
        enqueued_ns: u64,
    },
    /// Advance the domain's wall clock (ordered with inbound frames).
    SetTime(Timestamp),
    /// Stop the ingress thread.
    Shutdown,
}

/// The fabric side of one domain: seals shard outputs onto peer links
/// and forwards completions to the mesh supervisor.
struct ActorSink {
    domain: String,
    /// One seal half per peer link, locked per frame; the mailbox send
    /// happens under the lock so sequence numbers and mailbox order
    /// agree (the open side enforces strict per-direction sequencing).
    seals: HashMap<String, Mutex<SealHalf>>,
    peers: HashMap<String, Sender<IngressMsg>>,
    completion_tx: Sender<(String, Completion)>,
    frames_sealed: Counter,
}

impl ShardSink for ActorSink {
    fn deliver(&self, to: &str, msg: SignalMessage) {
        let to = to.strip_prefix("user:").unwrap_or(to);
        let (Some(seal), Some(tx)) = (self.seals.get(to), self.peers.get(to)) else {
            return; // completion address or unlinked peer
        };
        let mut half = seal.lock().unwrap_or_else(|e| e.into_inner());
        let sealed = half.seal(qos_wire::to_bytes(&msg));
        self.frames_sealed.inc();
        let _ = tx.send(IngressMsg::Frame {
            from: self.domain.clone(),
            sealed,
            enqueued_ns: StdClock::now(),
        });
    }

    fn complete(&self, completion: Completion) {
        let _ = self.completion_tx.send((self.domain.clone(), completion));
    }
}

/// A handle to one running domain: its sharded broker plus the ingress
/// thread feeding it.
struct ActorHandle {
    domain: String,
    sharded: Arc<ShardedNode>,
    ingress_tx: Sender<IngressMsg>,
    ingress_join: Option<JoinHandle<()>>,
}

/// A mesh of sharded broker runtimes on OS threads.
pub struct ActorMesh {
    actors: HashMap<String, ActorHandle>,
    completion_rx: Receiver<(String, Completion)>,
    completion_tx: Sender<(String, Completion)>,
    telemetry: Telemetry,
    shards: usize,
}

impl Default for ActorMesh {
    fn default() -> Self {
        Self::new()
    }
}

/// The default shard count for a broker runtime: `min(4, cores)`.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

impl ActorMesh {
    /// An empty actor mesh with the default shard count
    /// ([`default_shards`]).
    pub fn new() -> Self {
        let (completion_tx, completion_rx) = unbounded();
        Self {
            actors: HashMap::new(),
            completion_rx,
            completion_tx,
            telemetry: Telemetry::disabled(),
            shards: default_shards(),
        }
    }

    /// Route mesh-level instruments (shard queues, completion latency,
    /// frame counters, handshakes) into `telemetry`. Call before
    /// [`ActorMesh::spawn`]; the per-broker instruments themselves are
    /// configured through [`crate::node::BbConfig::telemetry`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Run each broker as `n` admission shards (clamped to ≥ 1). Call
    /// before [`ActorMesh::spawn`]. Admission outcomes and committed
    /// bandwidth are shard-count-invariant; only concurrency changes.
    pub fn set_shards(&mut self, n: usize) {
        self.shards = n.max(1);
    }

    /// Spawn the brokers of `nodes` as sharded runtimes, establishing
    /// pairwise secure channels between `links` (pairs of domain names).
    ///
    /// `identities` supplies each broker's channel identity and `ca_key`
    /// the CA all peer pins use.
    pub fn spawn(
        &mut self,
        nodes: Vec<BbNode>,
        identities: HashMap<String, ChannelIdentity>,
        links: &[(String, String)],
        ca_key: PublicKey,
    ) {
        // Establish channels synchronously before spawning (the paper's
        // SLAs exist before any signalling).
        let handshakes = self.telemetry.counter(
            "bb_channel_handshakes_total",
            "Secure-channel handshakes completed at mesh setup",
            &[],
        );
        let mut seal_halves: HashMap<String, HashMap<String, Mutex<SealHalf>>> = HashMap::new();
        let mut open_halves: HashMap<String, HashMap<String, OpenHalf>> = HashMap::new();
        for (nonce, (a, b)) in (1u64..).zip(links.iter()) {
            let ia = &identities[a];
            let ib = &identities[b];
            let (ca_end, cb_end) = handshake(
                ia,
                ib,
                &PeerPin {
                    ca_key,
                    dn: ib.cert.tbs.subject.clone(),
                },
                &PeerPin {
                    ca_key,
                    dn: ia.cert.tbs.subject.clone(),
                },
                nonce,
                Timestamp::ZERO,
            )
            .expect("handshake between configured peers");
            handshakes.inc();
            let (a_seal, a_open) = ca_end.split();
            let (b_seal, b_open) = cb_end.split();
            seal_halves
                .entry(a.clone())
                .or_default()
                .insert(b.clone(), Mutex::new(a_seal));
            open_halves
                .entry(a.clone())
                .or_default()
                .insert(b.clone(), a_open);
            seal_halves
                .entry(b.clone())
                .or_default()
                .insert(a.clone(), Mutex::new(b_seal));
            open_halves
                .entry(b.clone())
                .or_default()
                .insert(a.clone(), b_open);
        }

        // Build ingress mailboxes first so every sink can reach every
        // peer.
        let mut mailboxes: HashMap<String, Sender<IngressMsg>> = HashMap::new();
        let mut receivers: HashMap<String, Receiver<IngressMsg>> = HashMap::new();
        for node in &nodes {
            let (tx, rx) = unbounded();
            mailboxes.insert(node.domain().to_string(), tx);
            receivers.insert(node.domain().to_string(), rx);
        }

        for node in nodes {
            let domain = node.domain().to_string();
            let rx = receivers.remove(&domain).unwrap();
            let dl: &[(&str, &str)] = &[("domain", &domain)];
            let sink = ActorSink {
                domain: domain.clone(),
                seals: seal_halves.remove(&domain).unwrap_or_default(),
                peers: mailboxes.clone(),
                completion_tx: self.completion_tx.clone(),
                frames_sealed: self.telemetry.counter(
                    "bb_frames_sealed_total",
                    "Channel frames sealed for peers",
                    dl,
                ),
            };
            let frames_opened = self.telemetry.counter(
                "bb_frames_opened_total",
                "Channel frames opened and decoded from peers",
                dl,
            );
            let frames_rejected = self.telemetry.counter(
                "bb_frames_rejected_total",
                "Channel frames rejected (tampered, replayed, or undecodable)",
                dl,
            );
            let sharded = Arc::new(ShardedNode::new(
                node,
                self.shards,
                Arc::new(sink),
                &self.telemetry,
            ));
            let mut opens = open_halves.remove(&domain).unwrap_or_default();
            let sharded_ingress = Arc::clone(&sharded);
            let ingress_join = std::thread::Builder::new()
                .name(format!("bb-ingress-{domain}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            IngressMsg::Frame {
                                from,
                                sealed,
                                enqueued_ns,
                            } => {
                                match open_frame(&mut opens, &from, sealed) {
                                    Some(m) => {
                                        frames_opened.inc();
                                        sharded_ingress.dispatch_peer(from, m, enqueued_ns);
                                    }
                                    None => frames_rejected.inc(), // tampered / replayed
                                }
                            }
                            IngressMsg::SetTime(t) => sharded_ingress.set_time(t),
                            IngressMsg::Shutdown => break,
                        }
                    }
                })
                .expect("spawn ingress thread");
            self.actors.insert(
                domain.clone(),
                ActorHandle {
                    ingress_tx: mailboxes[&domain].clone(),
                    domain,
                    sharded,
                    ingress_join: Some(ingress_join),
                },
            );
        }
    }

    /// Domains with running brokers.
    pub fn domains(&self) -> impl Iterator<Item = &str> {
        self.actors.values().map(|h| h.domain.as_str())
    }

    /// Submit a user request to a broker (trusted local delivery, not a
    /// peer frame).
    pub fn submit(&self, domain: &str, rar: SignedRar, user_cert: Certificate) {
        self.actors[domain]
            .sharded
            .dispatch_submit(rar, user_cert, StdClock::now());
    }

    /// Request a sub-flow inside an established tunnel at its source
    /// broker. Bursts of these from one or many sources land on the
    /// tunnel's shard together, where their signatures are verified as
    /// one parallel batch ([`crate::node::BbNode::recv_tunnel_flows`]).
    pub fn tunnel_flow(
        &self,
        domain: &str,
        tunnel: crate::rar::RarId,
        flow: u64,
        rate_bps: u64,
        requestor: qos_crypto::DistinguishedName,
    ) {
        self.actors[domain]
            .sharded
            .dispatch_tunnel_flow(tunnel, flow, rate_bps, requestor);
    }

    /// Broadcast a wall-clock update, ordered with inbound frames.
    pub fn set_time(&self, now: Timestamp) {
        for h in self.actors.values() {
            let _ = h.ingress_tx.send(IngressMsg::SetTime(now));
        }
    }

    /// Wait for `n` completions (across all source brokers).
    pub fn wait_completions(&self, n: usize) -> Vec<(String, Completion)> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self
                .completion_rx
                .recv_timeout(std::time::Duration::from_secs(30))
            {
                Ok(c) => out.push(c),
                Err(_) => break,
            }
        }
        out
    }

    /// Stop all brokers and return one node per domain (its ledger and
    /// counters are the ones every shard shared).
    pub fn shutdown(mut self) -> HashMap<String, BbNode> {
        // Stop every ingress thread first so no new frames reach the
        // shards, then drain and join the shards themselves.
        for h in self.actors.values() {
            let _ = h.ingress_tx.send(IngressMsg::Shutdown);
        }
        for h in self.actors.values_mut() {
            if let Some(join) = h.ingress_join.take() {
                let _ = join.join();
            }
        }
        let mut nodes = HashMap::new();
        for (domain, h) in self.actors.drain() {
            let sharded = Arc::into_inner(h.sharded)
                .expect("ingress joined; mesh holds the only other handle");
            nodes.insert(domain, sharded.shutdown());
        }
        nodes
    }
}

/// Open a sealed peer frame and decode the signalling message inside.
///
/// Frames are opened strictly in arrival order per peer (the channel's
/// replay window depends on it). Shared-buffer decode: any RAR envelope
/// in the message keeps zero-copy views of its layers' canonical bytes,
/// so later verification never re-encodes the nest. `None` means the
/// frame was tampered with, replayed, or from an unknown peer.
fn open_frame(
    opens: &mut HashMap<String, OpenHalf>,
    from: &str,
    sealed: Sealed,
) -> Option<SignalMessage> {
    let half = opens.get_mut(from)?;
    let bytes = half.open(sealed).ok()?;
    let shared: std::sync::Arc<[u8]> = bytes.into();
    qos_wire::from_bytes_shared::<SignalMessage>(&shared).ok()
}
