//! Reusable scenario builders: the paper's multi-domain world, wired up.
//!
//! Builds the complete cast of Figures 2–7 — a root CA, an ESnet CAS, a
//! linear chain of domains A…N (plus David's domain D attached to the
//! second domain), per-domain brokers with policies, SLAs with pinned
//! certificates, user identities, capability grants — and, optionally,
//! the matching `qos_net` data plane. Shared by the integration tests,
//! the examples, and every experiment binary.

use crate::envelope::SignedRar;
use crate::node::{BbConfig, BbNode, EdgeBinding};
use crate::rar::{RarId, ResSpec};
use qos_broker::{Interval, Sla, Sls};
use qos_crypto::{
    Certificate, CertificateAuthority, CommunityAuthorizationServer, DelegationChain,
    DistinguishedName, KeyPair, PublicKey, Timestamp, TrustPolicy, Validity,
};
use qos_net::{Network, NodeId, SimDuration};
use qos_policy::GroupServer;
use qos_telemetry::Telemetry;
use rand::{Rng, ThreadRng};
use std::collections::HashMap;

/// A permissive policy for domains whose admission is under test but
/// whose authorization is not.
pub const PERMIT_ALL: &str = "return grant";

/// One user in the scenario.
pub struct UserIdentity {
    /// Key pair.
    pub key: KeyPair,
    /// CA-issued identity certificate.
    pub cert: Certificate,
    /// DN.
    pub dn: DistinguishedName,
    /// Private proxy key for capability certificates (if granted).
    pub proxy: KeyPair,
    /// CAS grant + delegation material, if granted.
    pub capability: Option<Certificate>,
}

impl UserIdentity {
    /// Build the user's innermost signed request, delegating the
    /// capability (if any) to the source broker per §6.5.
    pub fn sign_request(&self, spec: ResSpec, source_bb: &BbNode) -> SignedRar {
        let mut caps = Vec::new();
        if let Some(grant) = &self.capability {
            let chain = DelegationChain::new(grant.clone());
            let chain = chain
                .delegate(
                    &self.proxy,
                    source_bb.dn().clone(),
                    source_bb.public_key(),
                    vec![],
                    Validity::unbounded(),
                )
                .expect("user holds the proxy key");
            caps = chain.certs;
        }
        SignedRar::user_request(spec, source_bb.dn().clone(), caps, &self.key)
    }
}

/// Everything a scenario needs.
pub struct Scenario {
    /// Root CA (already consumed for issuing; kept for its key).
    pub ca_key: PublicKey,
    /// CAS public key by community name.
    pub cas_keys: HashMap<String, PublicKey>,
    /// Domain names in chain order (`domain-a`, `domain-b`, …).
    pub domains: Vec<String>,
    /// Brokers by domain, ready to drop into a [`crate::drive::Mesh`].
    pub nodes: Vec<BbNode>,
    /// Users by name.
    pub users: HashMap<String, UserIdentity>,
    /// Monotonic RAR id source.
    next_rar: u64,
}

impl Scenario {
    /// Take a fresh RAR id.
    pub fn next_rar_id(&mut self) -> RarId {
        self.next_rar += 1;
        RarId(self.next_rar)
    }

    /// Convenience: a reservation spec from `user` across the whole
    /// chain.
    pub fn spec(
        &mut self,
        user: &str,
        flow: u64,
        rate_bps: u64,
        start: Timestamp,
        secs: u64,
    ) -> ResSpec {
        let rar_id = self.next_rar_id();
        let first = self.domains.first().unwrap().clone();
        let last = self.domains.last().unwrap().clone();
        ResSpec::new(
            rar_id,
            self.users[user].dn.clone(),
            &first,
            &last,
            flow,
            rate_bps,
            Interval::starting_at(start, secs),
        )
    }
}

/// Options for [`build_chain`].
pub struct ChainOptions {
    /// Number of domains in the line (≥ 2).
    pub domains: usize,
    /// Per-domain policy source (defaults to [`PERMIT_ALL`]); keyed by
    /// index.
    pub policies: HashMap<usize, String>,
    /// Local capacity per domain (bits/s).
    pub local_capacity_bps: u64,
    /// SLA committed rate between adjacent domains (bits/s).
    pub sla_rate_bps: u64,
    /// Capability communities to create, with the users granted each.
    pub grants: Vec<(String, Vec<String>)>,
    /// Users to create (Alice and David always exist).
    pub extra_users: Vec<String>,
    /// Trust-policy depth bound for all brokers.
    pub trust_policy: TrustPolicy,
    /// Metrics sink shared by all brokers (disabled by default).
    pub telemetry: Telemetry,
    /// Record per-RAR trace spans on every broker.
    pub tracing: bool,
    /// Enable the per-broker audit trail.
    pub audit: bool,
    /// Audit-trail eviction bound.
    pub audit_capacity: usize,
}

impl Default for ChainOptions {
    fn default() -> Self {
        Self {
            domains: 3,
            policies: HashMap::new(),
            local_capacity_bps: 1_000_000_000,
            sla_rate_bps: 100_000_000,
            grants: vec![("ESnet".to_string(), vec!["alice".to_string()])],
            extra_users: vec![],
            trust_policy: TrustPolicy::default(),
            telemetry: Telemetry::disabled(),
            tracing: false,
            audit: false,
            audit_capacity: 4096,
        }
    }
}

/// Domain name for chain index `i`: `domain-a`, `domain-b`, …
pub fn domain_name(i: usize) -> String {
    if i < 26 {
        format!("domain-{}", (b'a' + i as u8) as char)
    } else {
        format!("domain-{i}")
    }
}

/// Build a linear chain of domains with brokers, SLAs, users, and
/// capability grants.
pub fn build_chain(opts: ChainOptions) -> Scenario {
    assert!(opts.domains >= 2, "a chain needs at least two domains");
    let mut ca = CertificateAuthority::new(
        DistinguishedName::authority("RootCA"),
        KeyPair::from_seed(b"root-ca"),
    );

    // Broker identities.
    let domains: Vec<String> = (0..opts.domains).map(domain_name).collect();
    let keys: Vec<KeyPair> = domains
        .iter()
        .map(|d| KeyPair::from_seed(format!("bb-{d}").as_bytes()))
        .collect();
    let certs: Vec<Certificate> = domains
        .iter()
        .zip(&keys)
        .map(|(d, k)| {
            ca.issue_identity(
                DistinguishedName::broker(d),
                k.public(),
                Validity::unbounded(),
            )
        })
        .collect();

    // Communities and grants.
    let mut cas_keys = HashMap::new();
    let mut cas_servers: HashMap<String, CommunityAuthorizationServer> = HashMap::new();
    for (community, _) in &opts.grants {
        let server = CommunityAuthorizationServer::new(
            community,
            KeyPair::from_seed(format!("cas-{community}").as_bytes()),
        );
        cas_keys.insert(community.clone(), server.public_key());
        cas_servers.insert(community.clone(), server);
    }

    // Users.
    let mut user_names = vec!["alice".to_string(), "david".to_string()];
    user_names.extend(opts.extra_users.iter().cloned());
    let mut users = HashMap::new();
    for name in &user_names {
        let key = KeyPair::from_seed(format!("user-{name}").as_bytes());
        let proxy = KeyPair::from_seed(format!("proxy-{name}").as_bytes());
        let display = capitalize(name);
        let dn = DistinguishedName::user(&display, "ANL");
        let cert = ca.issue_identity(dn.clone(), key.public(), Validity::unbounded());
        let mut capability = None;
        for (community, granted) in &opts.grants {
            if granted.contains(name) {
                let server = cas_servers.get_mut(community).unwrap();
                capability = Some(server.grant(
                    &dn,
                    proxy.public(),
                    vec![format!("{community}:member")],
                    Validity::unbounded(),
                ));
            }
        }
        users.insert(
            name.clone(),
            UserIdentity {
                key,
                cert,
                dn,
                proxy,
                capability,
            },
        );
    }

    // Brokers with SLAs and routes.
    let mut nodes = Vec::new();
    for i in 0..opts.domains {
        let policy = opts
            .policies
            .get(&i)
            .cloned()
            .unwrap_or_else(|| PERMIT_ALL.to_string());
        let groups = GroupServer::new(
            &format!("groups-{}", domains[i]),
            KeyPair::from_seed(format!("gs-{}", domains[i]).as_bytes()),
        );
        let mut node = BbNode::new(BbConfig {
            domain: domains[i].clone(),
            key: keys[i].clone(),
            cert: certs[i].clone(),
            policy_src: policy,
            groups,
            local_capacity_bps: opts.local_capacity_bps,
            trust_policy: opts.trust_policy,
            cas_keys: cas_keys.clone(),
            user_ca: ca.public_key(),
            telemetry: opts.telemetry.clone(),
            tracing: opts.tracing,
            audit: opts.audit,
            audit_capacity: opts.audit_capacity,
        });
        // Peering with the previous domain (they send into us).
        if i > 0 {
            node.add_peer(
                certs[i - 1].clone(),
                Some(Sla {
                    upstream: domains[i - 1].clone(),
                    downstream: domains[i].clone(),
                    sls: Sls::strict(opts.sla_rate_bps),
                    peer_cert: certs[i - 1].clone(),
                    ca_cert: certs[i - 1].clone(),
                    price_per_mbps_sec: 1,
                }),
                None,
            );
            // Everything upstream routes through the previous domain.
            for d in domains[..i].iter() {
                node.add_route(d, &domains[i - 1]);
            }
        }
        // Peering with the next domain (we send into them).
        if i + 1 < opts.domains {
            node.add_peer(
                certs[i + 1].clone(),
                None,
                Some(Sla {
                    upstream: domains[i].clone(),
                    downstream: domains[i + 1].clone(),
                    sls: Sls::strict(opts.sla_rate_bps),
                    peer_cert: certs[i + 1].clone(),
                    ca_cert: certs[i + 1].clone(),
                    price_per_mbps_sec: 1,
                }),
            );
            for d in domains[i + 1..].iter() {
                node.add_route(d, &domains[i + 1]);
            }
        }
        nodes.push(node);
    }

    Scenario {
        ca_key: ca.public_key(),
        cas_keys,
        domains,
        nodes,
        users,
        next_rar: 0,
    }
}

/// Build a hub-and-spoke world: `leaves` leaf domains all peering with a
/// central transit domain `hub` (an ISP backbone). Any leaf-to-leaf path
/// is leaf → hub → leaf, so the hub's SLAs and local capacity are the
/// shared bottleneck — the topology where aggregate admission control at
/// a transit domain actually bites.
///
/// The returned scenario's `domains` lists the leaves first, then `hub`.
pub fn build_star(leaves: usize, opts: ChainOptions) -> Scenario {
    assert!(leaves >= 2, "a star needs at least two leaves");
    let mut ca = CertificateAuthority::new(
        DistinguishedName::authority("RootCA"),
        KeyPair::from_seed(b"root-ca"),
    );
    let mut domains: Vec<String> = (0..leaves).map(domain_name).collect();
    domains.push("hub".to_string());
    let keys: Vec<KeyPair> = domains
        .iter()
        .map(|d| KeyPair::from_seed(format!("bb-{d}").as_bytes()))
        .collect();
    let certs: Vec<Certificate> = domains
        .iter()
        .zip(&keys)
        .map(|(d, k)| {
            ca.issue_identity(
                DistinguishedName::broker(d),
                k.public(),
                Validity::unbounded(),
            )
        })
        .collect();

    let mut cas_keys = HashMap::new();
    let mut cas_servers: HashMap<String, CommunityAuthorizationServer> = HashMap::new();
    for (community, _) in &opts.grants {
        let server = CommunityAuthorizationServer::new(
            community,
            KeyPair::from_seed(format!("cas-{community}").as_bytes()),
        );
        cas_keys.insert(community.clone(), server.public_key());
        cas_servers.insert(community.clone(), server);
    }
    let mut user_names = vec!["alice".to_string(), "david".to_string()];
    user_names.extend(opts.extra_users.iter().cloned());
    let mut users = HashMap::new();
    for name in &user_names {
        let key = KeyPair::from_seed(format!("user-{name}").as_bytes());
        let proxy = KeyPair::from_seed(format!("proxy-{name}").as_bytes());
        let dn = DistinguishedName::user(&capitalize(name), "ANL");
        let cert = ca.issue_identity(dn.clone(), key.public(), Validity::unbounded());
        let mut capability = None;
        for (community, granted) in &opts.grants {
            if granted.contains(name) {
                let server = cas_servers.get_mut(community).unwrap();
                capability = Some(server.grant(
                    &dn,
                    proxy.public(),
                    vec![format!("{community}:member")],
                    Validity::unbounded(),
                ));
            }
        }
        users.insert(
            name.clone(),
            UserIdentity {
                key,
                cert,
                dn,
                proxy,
                capability,
            },
        );
    }

    let hub_idx = leaves;
    let mk_sla = |up: usize, down: usize| Sla {
        upstream: domains[up].clone(),
        downstream: domains[down].clone(),
        sls: Sls::strict(opts.sla_rate_bps),
        peer_cert: certs[up].clone(),
        ca_cert: certs[up].clone(),
        price_per_mbps_sec: 1,
    };
    let mut nodes = Vec::new();
    for i in 0..domains.len() {
        let policy = opts
            .policies
            .get(&i)
            .cloned()
            .unwrap_or_else(|| PERMIT_ALL.to_string());
        let groups = GroupServer::new(
            &format!("groups-{}", domains[i]),
            KeyPair::from_seed(format!("gs-{}", domains[i]).as_bytes()),
        );
        let mut node = BbNode::new(BbConfig {
            domain: domains[i].clone(),
            key: keys[i].clone(),
            cert: certs[i].clone(),
            policy_src: policy,
            groups,
            local_capacity_bps: opts.local_capacity_bps,
            trust_policy: opts.trust_policy,
            cas_keys: cas_keys.clone(),
            user_ca: ca.public_key(),
            telemetry: opts.telemetry.clone(),
            tracing: opts.tracing,
            audit: opts.audit,
            audit_capacity: opts.audit_capacity,
        });
        if i == hub_idx {
            // The hub peers with every leaf, both directions.
            for leaf in 0..leaves {
                node.add_peer(
                    certs[leaf].clone(),
                    Some(mk_sla(leaf, hub_idx)),
                    Some(mk_sla(hub_idx, leaf)),
                );
                node.add_route(&domains[leaf], &domains[leaf]);
            }
        } else {
            // Each leaf peers only with the hub and routes everything
            // through it.
            node.add_peer(
                certs[hub_idx].clone(),
                Some(mk_sla(hub_idx, i)),
                Some(mk_sla(i, hub_idx)),
            );
            for (j, d) in domains.iter().enumerate() {
                if j != i {
                    node.add_route(d, "hub");
                }
            }
        }
        nodes.push(node);
    }

    Scenario {
        ca_key: ca.public_key(),
        cas_keys,
        domains,
        nodes,
        users,
        next_rar: 0,
    }
}

/// Options for [`build_as_graph`].
pub struct AsGraphOptions {
    /// Transit (backbone) domains, `transit-00`, `transit-01`, … (≥ 1).
    pub transits: usize,
    /// Stub (edge) domains, `stub-000`, `stub-001`, … (≥ 2).
    pub stubs: usize,
    /// Seed for every random draw — topology, SLA rates, capacities,
    /// policy templates. The same seed always builds the same world.
    pub seed: u64,
    /// Fraction of stubs (0.0–1.0) that get a second, independent
    /// transit uplink.
    pub multihome_fraction: f64,
    /// Baseline SLA rate: stub uplinks draw 1–4× this, transit trunks
    /// 10–40×.
    pub base_sla_rate_bps: u64,
    /// Baseline local capacity: stubs draw 1–4× this, transits 8–16×.
    pub local_capacity_bps: u64,
    /// Capability communities to create, with the users granted each.
    pub grants: Vec<(String, Vec<String>)>,
    /// Users to create (Alice and David always exist).
    pub extra_users: Vec<String>,
    /// Trust-policy depth bound for all brokers.
    pub trust_policy: TrustPolicy,
    /// Metrics sink shared by all brokers (disabled by default).
    pub telemetry: Telemetry,
    /// Record per-RAR trace spans on every broker.
    pub tracing: bool,
    /// Enable the per-broker audit trail.
    pub audit: bool,
    /// Audit-trail eviction bound.
    pub audit_capacity: usize,
}

impl Default for AsGraphOptions {
    fn default() -> Self {
        Self {
            transits: 10,
            stubs: 90,
            seed: 0xA5_57AB,
            multihome_fraction: 0.35,
            base_sla_rate_bps: 200_000_000,
            local_capacity_bps: 1_000_000_000,
            grants: vec![("ESnet".to_string(), vec!["alice".to_string()])],
            extra_users: vec![],
            trust_policy: TrustPolicy::default(),
            telemetry: Telemetry::disabled(),
            tracing: false,
            audit: false,
            audit_capacity: 4096,
        }
    }
}

/// A seeded transit/stub AS graph: the scenario plus the structure the
/// experiments need to pick tunnel endpoints and watch transit load.
pub struct AsGraph {
    /// The built world (domains list transits first, then stubs).
    pub scenario: Scenario,
    /// Transit domain names in index order.
    pub transits: Vec<String>,
    /// Stub domain names in index order.
    pub stubs: Vec<String>,
    /// Undirected peering edges `(a, b, sla_rate_bps)`; every edge is
    /// installed as a both-direction SLA pair on both endpoints.
    pub edges: Vec<(String, String, u64)>,
}

/// Build a seeded transit/stub AS graph: a preferential-attachment
/// transit backbone, stubs homed (and fractionally multi-homed) onto it,
/// heterogeneous per-edge SLA rates and per-domain capacities, a
/// generated policy file per domain, and BFS shortest-path next-hop
/// routes between every pair of domains.
///
/// Every generated policy grants `Network` reservations at or below
/// 50 Mb/s regardless of template, so workloads that stay under that
/// aggregate rate are policy-transparent; larger reservations exercise
/// capability checks and time-of-day caps on a seeded subset of domains.
pub fn build_as_graph(opts: AsGraphOptions) -> AsGraph {
    assert!(opts.transits >= 1, "an AS graph needs at least one transit");
    assert!(opts.stubs >= 2, "an AS graph needs at least two stubs");
    let mut rng = ThreadRng::seed_from_u64(opts.seed);

    let transits: Vec<String> = (0..opts.transits)
        .map(|i| format!("transit-{i:02}"))
        .collect();
    let stubs: Vec<String> = (0..opts.stubs).map(|i| format!("stub-{i:03}")).collect();
    let mut domains = transits.clone();
    domains.extend(stubs.iter().cloned());
    let n = domains.len();

    // ---- Topology: undirected edges by domain index. -------------------
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    let add_edge = |adj: &mut Vec<Vec<usize>>,
                    edges: &mut Vec<(usize, usize, u64)>,
                    a: usize,
                    b: usize,
                    rate: u64| {
        adj[a].push(b);
        adj[b].push(a);
        edges.push((a, b, rate));
    };
    let trunk_rate = |rng: &mut ThreadRng| opts.base_sla_rate_bps * (10 + rng.random_range(31));
    let uplink_rate = |rng: &mut ThreadRng| opts.base_sla_rate_bps * (1 + rng.random_range(4));
    // Pick one of the first `n` nodes proportionally to degree (+1 so
    // isolated nodes stay reachable).
    let weighted_pick = |adj: &[Vec<usize>], n: usize, rng: &mut ThreadRng| -> usize {
        let total: u64 = adj[..n].iter().map(|l| l.len() as u64 + 1).sum();
        let mut r = rng.random_range(total);
        for (j, links) in adj[..n].iter().enumerate() {
            let w = links.len() as u64 + 1;
            if r < w {
                return j;
            }
            r -= w;
        }
        n - 1
    };

    // Transit backbone: each new transit attaches to 1–2 existing ones,
    // chosen proportionally to current degree (+1 so isolated transits
    // stay reachable). Always connected by construction.
    for i in 1..opts.transits {
        let uplinks = (1 + rng.random_range(2) as usize).min(i);
        let mut chosen: Vec<usize> = Vec::new();
        while chosen.len() < uplinks {
            let pick = weighted_pick(&adj, i, &mut rng);
            if !chosen.contains(&pick) {
                chosen.push(pick);
                let rate = trunk_rate(&mut rng);
                add_edge(&mut adj, &mut edges, i, pick, rate);
            }
        }
    }

    // Stubs: primary uplink chosen by transit degree; a seeded fraction
    // gets a second, distinct uplink chosen uniformly.
    for s in 0..opts.stubs {
        let idx = opts.transits + s;
        let primary = weighted_pick(&adj, opts.transits, &mut rng);
        let rate = uplink_rate(&mut rng);
        add_edge(&mut adj, &mut edges, idx, primary, rate);
        if opts.transits > 1 && rng.random_f64() < opts.multihome_fraction {
            let mut second = rng.random_range(opts.transits as u64) as usize;
            if second == primary {
                second = (second + 1) % opts.transits;
            }
            let rate = uplink_rate(&mut rng);
            add_edge(&mut adj, &mut edges, idx, second, rate);
        }
    }

    // ---- Identities. ---------------------------------------------------
    let mut ca = CertificateAuthority::new(
        DistinguishedName::authority("RootCA"),
        KeyPair::from_seed(b"root-ca"),
    );
    let keys: Vec<KeyPair> = domains
        .iter()
        .map(|d| KeyPair::from_seed(format!("bb-{d}").as_bytes()))
        .collect();
    let certs: Vec<Certificate> = domains
        .iter()
        .zip(&keys)
        .map(|(d, k)| {
            ca.issue_identity(
                DistinguishedName::broker(d),
                k.public(),
                Validity::unbounded(),
            )
        })
        .collect();

    let mut cas_keys = HashMap::new();
    let mut cas_servers: HashMap<String, CommunityAuthorizationServer> = HashMap::new();
    for (community, _) in &opts.grants {
        let server = CommunityAuthorizationServer::new(
            community,
            KeyPair::from_seed(format!("cas-{community}").as_bytes()),
        );
        cas_keys.insert(community.clone(), server.public_key());
        cas_servers.insert(community.clone(), server);
    }
    let mut user_names = vec!["alice".to_string(), "david".to_string()];
    user_names.extend(opts.extra_users.iter().cloned());
    let mut users = HashMap::new();
    for name in &user_names {
        let key = KeyPair::from_seed(format!("user-{name}").as_bytes());
        let proxy = KeyPair::from_seed(format!("proxy-{name}").as_bytes());
        let dn = DistinguishedName::user(&capitalize(name), "ANL");
        let cert = ca.issue_identity(dn.clone(), key.public(), Validity::unbounded());
        let mut capability = None;
        for (community, granted) in &opts.grants {
            if granted.contains(name) {
                let server = cas_servers.get_mut(community).unwrap();
                capability = Some(server.grant(
                    &dn,
                    proxy.public(),
                    vec![format!("{community}:member")],
                    Validity::unbounded(),
                ));
            }
        }
        users.insert(
            name.clone(),
            UserIdentity {
                key,
                cert,
                dn,
                proxy,
                capability,
            },
        );
    }

    // ---- Brokers: policy, capacity, peerings, routes. ------------------
    let mut nodes = Vec::new();
    for i in 0..n {
        let is_transit = i < opts.transits;
        let policy = as_graph_policy(&domains[i], is_transit, &mut rng);
        let capacity = if is_transit {
            opts.local_capacity_bps * (8 + rng.random_range(9))
        } else {
            opts.local_capacity_bps * (1 + rng.random_range(4))
        };
        let groups = GroupServer::new(
            &format!("groups-{}", domains[i]),
            KeyPair::from_seed(format!("gs-{}", domains[i]).as_bytes()),
        );
        let node = BbNode::new(BbConfig {
            domain: domains[i].clone(),
            key: keys[i].clone(),
            cert: certs[i].clone(),
            policy_src: policy,
            groups,
            local_capacity_bps: capacity,
            trust_policy: opts.trust_policy,
            cas_keys: cas_keys.clone(),
            user_ca: ca.public_key(),
            telemetry: opts.telemetry.clone(),
            tracing: opts.tracing,
            audit: opts.audit,
            audit_capacity: opts.audit_capacity,
        });
        nodes.push(node);
    }
    let mk_sla = |up: usize, down: usize, rate: u64| Sla {
        upstream: domains[up].clone(),
        downstream: domains[down].clone(),
        sls: Sls::strict(rate),
        peer_cert: certs[up].clone(),
        ca_cert: certs[up].clone(),
        price_per_mbps_sec: 1,
    };
    for &(a, b, rate) in &edges {
        nodes[a].add_peer(
            certs[b].clone(),
            Some(mk_sla(b, a, rate)),
            Some(mk_sla(a, b, rate)),
        );
        nodes[b].add_peer(
            certs[a].clone(),
            Some(mk_sla(a, b, rate)),
            Some(mk_sla(b, a, rate)),
        );
    }

    // BFS shortest-path next hops from every source. `first_hop[d]` is
    // the neighbor of the source on one shortest path to `d`.
    for src in 0..n {
        let mut first_hop: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[src] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    first_hop[v] = if u == src { Some(v) } else { first_hop[u] };
                    queue.push_back(v);
                }
            }
        }
        for (d, hop) in first_hop.iter().enumerate() {
            if let Some(h) = hop {
                nodes[src].add_route(&domains[d], &domains[*h]);
            }
        }
    }

    let scenario = Scenario {
        ca_key: ca.public_key(),
        cas_keys,
        domains,
        nodes,
        users,
        next_rar: 0,
    };
    let named_edges = edges
        .iter()
        .map(|&(a, b, r)| (scenario.domains[a].clone(), scenario.domains[b].clone(), r))
        .collect();
    AsGraph {
        scenario,
        transits,
        stubs,
        edges: named_edges,
    }
}

/// One of four seeded policy templates for an AS-graph domain. Every
/// template grants `Network` reservations at or below 50 Mb/s.
fn as_graph_policy(domain: &str, is_transit: bool, rng: &mut ThreadRng) -> String {
    match rng.random_range(4) {
        0 => PERMIT_ALL.to_string(),
        1 => format!(
            "# {domain}: barred-user policy\n\
             if User = Mallory {{ return deny \"{domain}: user is barred\" }}\n\
             return grant\n"
        ),
        2 if is_transit => format!(
            "# {domain}: transit rate tiering\n\
             if BW <= 50Mb/s {{ return grant }}\n\
             if Issued_by(Capability) = ESnet {{ return grant }}\n\
             return deny \"{domain}: above 50Mb/s requires an ESnet capability\"\n"
        ),
        2 => format!(
            "# {domain}: stub access policy\n\
             if Reservation_Type = Network {{ return grant }}\n\
             return deny \"{domain}: only network reservations\"\n"
        ),
        _ => format!(
            "# {domain}: business-hours tiering\n\
             if Time > 8am and Time < 5pm {{\n\
                 if BW <= 50Mb/s {{ return grant }}\n\
                 return deny \"{domain}: business-hours cap is 50Mb/s\"\n\
             }}\n\
             return grant\n"
        ),
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// The paper's Figure 4 world: the three-domain chain plus David's
/// domain D peering into the middle domain, and a matching data plane.
///
/// Returns `(scenario_with_4_nodes, network, node_ids)` where the fourth
/// node is `domain-d` and `node_ids` resolves `alice`/`charlie`/`david`
/// hosts and the `edge-*` routers.
pub fn build_paper_world(
    capacity_bps: u64,
    hop_delay: SimDuration,
) -> (Scenario, Network, HashMap<String, NodeId>) {
    let mut scenario = build_chain(ChainOptions {
        domains: 3,
        ..ChainOptions::default()
    });

    // Domain D: David's home, peering into domain-b.
    let mut ca = CertificateAuthority::new(
        DistinguishedName::authority("RootCA"),
        KeyPair::from_seed(b"root-ca"),
    );
    // Re-issue against the same deterministic CA key; serial differences
    // are irrelevant to verification.
    let key_d = KeyPair::from_seed(b"bb-domain-d");
    let cert_d = ca.issue_identity(
        DistinguishedName::broker("domain-d"),
        key_d.public(),
        Validity::unbounded(),
    );
    let key_b = KeyPair::from_seed(b"bb-domain-b");
    let cert_b = ca.issue_identity(
        DistinguishedName::broker("domain-b"),
        key_b.public(),
        Validity::unbounded(),
    );
    let mut node_d = BbNode::new(BbConfig {
        domain: "domain-d".into(),
        key: key_d,
        cert: cert_d.clone(),
        policy_src: PERMIT_ALL.to_string(),
        groups: GroupServer::new("groups-d", KeyPair::from_seed(b"gs-d")),
        local_capacity_bps: 1_000_000_000,
        trust_policy: TrustPolicy::default(),
        cas_keys: scenario.cas_keys.clone(),
        user_ca: scenario.ca_key,
        telemetry: Telemetry::disabled(),
        tracing: false,
        audit: false,
        audit_capacity: 4096,
    });
    node_d.add_peer(
        cert_b,
        None,
        Some(Sla {
            upstream: "domain-d".into(),
            downstream: "domain-b".into(),
            sls: Sls::strict(100_000_000),
            peer_cert: scenario.nodes[1].cert().clone(),
            ca_cert: scenario.nodes[1].cert().clone(),
            price_per_mbps_sec: 1,
        }),
    );
    node_d.add_route("domain-a", "domain-b");
    node_d.add_route("domain-b", "domain-b");
    node_d.add_route("domain-c", "domain-b");
    // Domain B accepts from D.
    scenario.nodes[1].add_peer(
        cert_d,
        Some(Sla {
            upstream: "domain-d".into(),
            downstream: "domain-b".into(),
            sls: Sls::strict(100_000_000),
            peer_cert: node_d.cert().clone(),
            ca_cert: node_d.cert().clone(),
            price_per_mbps_sec: 1,
        }),
        None,
    );
    scenario.nodes.push(node_d);
    scenario.domains.push("domain-d".into());

    // Matching data plane.
    let (topo, names) = qos_net::paper_topology(capacity_bps, hop_delay);
    let network = Network::new(topo);

    // Bind brokers to their edge routers / ingress links.
    let mut bindings: Vec<(usize, EdgeBinding)> = Vec::new();
    {
        let net = &network;
        let n = &names;
        // domain-a: Alice's first router.
        bindings.push((
            0,
            EdgeBinding {
                first_router: net.first_router(n["alice"], n["charlie"]),
                ingress_links: HashMap::new(),
            },
        ));
        // domain-b: ingress from A and from D.
        let mut b_links = HashMap::new();
        if let Some(l) = net.ingress_link_on_path(n["alice"], n["charlie"], n["edge-b"]) {
            b_links.insert("domain-a".to_string(), l);
        }
        if let Some(l) = net.ingress_link_on_path(n["david"], n["charlie"], n["edge-b"]) {
            b_links.insert("domain-d".to_string(), l);
        }
        bindings.push((
            1,
            EdgeBinding {
                first_router: None,
                ingress_links: b_links,
            },
        ));
        // domain-c: ingress from B.
        let mut c_links = HashMap::new();
        if let Some(l) = net.ingress_link_on_path(n["alice"], n["charlie"], n["edge-c"]) {
            c_links.insert("domain-b".to_string(), l);
        }
        bindings.push((
            2,
            EdgeBinding {
                first_router: None,
                ingress_links: c_links,
            },
        ));
        // domain-d: David's first router.
        bindings.push((
            3,
            EdgeBinding {
                first_router: net.first_router(n["david"], n["charlie"]),
                ingress_links: HashMap::new(),
            },
        ));
    }
    for (i, b) in bindings {
        scenario.nodes[i].set_edge_binding(b);
    }

    (scenario, network, names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_builder_wires_routes_and_slas() {
        let s = build_chain(ChainOptions {
            domains: 4,
            ..ChainOptions::default()
        });
        assert_eq!(s.domains.len(), 4);
        assert_eq!(s.nodes.len(), 4);
        // Middle node routes both ways.
        let b = &s.nodes[1];
        assert_eq!(b.route_towards("domain-a"), Some("domain-a".into()));
        assert_eq!(b.route_towards("domain-d"), Some("domain-c".into()));
        assert!(s.users.contains_key("alice"));
        assert!(s.users["alice"].capability.is_some());
        assert!(s.users["david"].capability.is_none());
    }

    #[test]
    fn paper_world_has_four_domains_and_bindings() {
        let (s, net, names) = build_paper_world(100_000_000, SimDuration::from_millis(5));
        assert_eq!(s.domains.len(), 4);
        assert!(names.contains_key("edge-b"));
        assert!(net.first_router(names["alice"], names["charlie"]).is_some());
    }

    #[test]
    fn as_graph_is_connected_and_deterministic() {
        let opts = || AsGraphOptions {
            transits: 6,
            stubs: 30,
            seed: 42,
            ..AsGraphOptions::default()
        };
        let g = build_as_graph(opts());
        assert_eq!(g.scenario.domains.len(), 36);
        assert_eq!(g.transits.len(), 6);
        assert_eq!(g.stubs.len(), 30);
        // Every node can route to every other domain (BFS covered the
        // whole graph, i.e. the topology is connected).
        for node in &g.scenario.nodes {
            for d in &g.scenario.domains {
                if d != node.domain() {
                    assert!(
                        node.route_towards(d).is_some(),
                        "{} has no route to {d}",
                        node.domain()
                    );
                }
            }
        }
        // Stubs only peer with transits; their next hop anywhere is a
        // transit.
        for s in &g.stubs {
            let node = g.scenario.nodes.iter().find(|n| n.domain() == s).unwrap();
            let hop = node.route_towards(&g.stubs[0]);
            if let Some(h) = hop {
                if &h != s {
                    assert!(h.starts_with("transit-"), "{s} routes via {h}");
                }
            }
        }
        // Same seed, same world.
        let h = build_as_graph(opts());
        assert_eq!(g.edges, h.edges);
        assert_eq!(g.scenario.domains, h.scenario.domains);
        // Different seed, different wiring (overwhelmingly likely).
        let k = build_as_graph(AsGraphOptions { seed: 43, ..opts() });
        assert_ne!(g.edges, k.edges);
    }

    #[test]
    fn user_signs_verifiable_requests() {
        let mut s = build_chain(ChainOptions::default());
        let spec = s.spec("alice", 7, 10_000_000, Timestamp(0), 3600);
        let rar = {
            let alice = &s.users["alice"];
            alice.sign_request(spec, &s.nodes[0])
        };
        let alice = &s.users["alice"];
        assert!(rar.verify_signature(alice.key.public()));
        // Capability chain: CAS grant + delegation to BB_A.
        assert_eq!(rar.capability_certs().len(), 2);
    }
}
