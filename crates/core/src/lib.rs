//! # qos-core — end-to-end provision of policy information for network QoS
//!
//! The primary contribution of the HPDC 2001 paper, as a library:
//!
//! * [`rar`], [`envelope`] — resource allocation requests and the
//!   nested-signature wire format of §6.4
//!   (`RAR_{N+1} = sign_{BB_{N+1}}({RAR_N, cert_N, DN_{BB_{N+2}}, caps})`);
//! * [`trust`] — the destination's transitive-trust verification walk
//!   (key introducers, path-continuity, chain-depth policy) and the
//!   directory-based alternative;
//! * [`channel`] — mutually authenticated peer channels (the TLS stand-in,
//!   DESIGN.md §2);
//! * [`messages`] — requests, chained approvals, denials, direct
//!   (Approach-1) requests, tunnel sub-flow signalling;
//! * [`node`] — the per-domain broker engine: §6.1 source steps, §6.2
//!   transit steps, §6.3 destination authorization, two-phase admission,
//!   capability delegation, edge configuration, tunnels;
//! * [`source`] — the Approach-1 baseline (GARA end-to-end agent,
//!   sequential/concurrent) and the STARS reservation coordinator;
//! * [`drive`] — a deterministic virtual-time mesh driver (latency and
//!   message-count experiments; optional live `qos_net` data plane);
//! * [`runtime`] — the same brokers as concurrent actor threads over
//!   sealed secure channels;
//! * [`shard`] — [`ShardedNode`]: one domain's broker as N admission
//!   shards with work-stealing ingress (DESIGN.md §D11), shared by the
//!   actor fabric and the TCP reactor runtime;
//! * [`scenario`] — the paper's multi-domain world, ready-built.
//!
//! Observability (DESIGN.md §D7): brokers and both drivers thread a
//! `qos_telemetry` registry and per-RAR tracer through every protocol
//! step — see [`node::BbConfig::telemetry`], [`BbNode::tracer`],
//! [`drive::Mesh::install_sim_clock`] and
//! [`runtime::ActorMesh::set_telemetry`].

pub mod audit;
pub mod channel;
pub mod drive;
pub mod envelope;
pub mod envelope_ref;
pub mod error;
pub mod flowtable;
pub mod messages;
pub mod node;
pub mod parallel;
pub mod rar;
pub mod runtime;
pub mod scenario;
pub mod shard;
pub mod source;
pub mod trust;

pub use audit::{AuditEvent, AuditLog};

/// Register the process-wide memoization caches' hit/miss/eviction cells
/// with `telemetry` as the `cache_*_total` counter families: the
/// signature-verification cache under `cache="verify"` and the
/// envelope-verdict memo under `cache="rar"`. Registration is idempotent
/// (the registry reuses the cell for an already-known label set), so
/// every broker, daemon, or bench harness can call this unconditionally.
pub fn install_verify_cache_telemetry(telemetry: &qos_telemetry::Telemetry) {
    if !telemetry.is_enabled() {
        return;
    }
    let caches = [
        ("verify", qos_crypto::vcache::counter_cells()),
        ("rar", trust::rar_memo_counter_cells()),
    ];
    for (cache, (hits, misses, evictions)) in caches {
        let labels: &[(&str, &str)] = &[("cache", cache)];
        telemetry.register_counter(
            "cache_hits_total",
            "Memoization cache hits, by cache",
            labels,
            hits,
        );
        telemetry.register_counter(
            "cache_misses_total",
            "Memoization cache misses, by cache",
            labels,
            misses,
        );
        telemetry.register_counter(
            "cache_evictions_total",
            "Memoization cache evictions, by cache",
            labels,
            evictions,
        );
    }
}
pub use drive::Mesh;
pub use envelope::{RarLayer, SignedRar};
pub use error::CoreError;
pub use flowtable::{FlowTable, TimerWheel};
pub use messages::{Approval, Denial, DenialCode, SignalMessage};
pub use node::{BbConfig, BbNode, Completion, EdgeBinding, NodeCounters, PeerId, RecoveredTickets};
pub use rar::{RarId, ResSpec};
pub use runtime::ActorMesh;
pub use shard::{shard_of, ShardMsg, ShardSink, ShardedNode};
pub use source::{AgentMode, ReservationCoordinator, SourceBasedRun};
pub use trust::{verify_rar, KeySource, VerifiedRar};
