//! Compact per-flow state for the tunnel sub-flow fast path (DESIGN.md
//! §D14).
//!
//! A [`FlowTable`] holds one 16-byte record per admitted sub-flow —
//! `{flow id: u64, rate: u32, expiry tick: u32}` — in a slab indexed by
//! an open-addressing hash (parallel key/value arrays, linear probing,
//! backward-shift deletion). No per-flow heap allocation, no iteration
//! on the admit/release path, and a measurable memory bound:
//! [`FlowTable::resident_bytes`] reports the real footprint the
//! million-flow experiment gates at ≤ 64 B per held flow.
//!
//! A [`TimerWheel`] schedules hold expiries: two 256-slot levels (1-tick
//! and 256-tick granularity) plus an overflow list, so expiring 10⁵
//! flows per second costs O(expired) per sweep — never a walk of the
//! table. Cancellation is lazy: the wheel fires `(due, item)` and the
//! caller checks the item against the table (a released flow is simply
//! absent).

/// Sub-flow rates above this cannot be represented in the 16-byte record
/// (`u32::MAX` itself is the slab's vacancy marker). The fast path denies
/// such requests with [`crate::messages::DenialCode::RateOverCap`]; at
/// 4.29 Gb/s per *sub-flow* the cap is far above any per-flow rate the
/// paper's scenarios use — aggregates stay `u64` and are unaffected.
pub const MAX_FLOW_RATE_BPS: u64 = (u32::MAX - 1) as u64;

/// Expiry tick meaning "never expires" (flows released only explicitly).
pub const EXPIRY_NEVER: u32 = u32::MAX;

const VACANT_RATE: u32 = u32::MAX;
const NIL: u32 = u32::MAX;
const EMPTY_SLOT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct FlowSlot {
    flow_id: u64,
    /// Admitted rate; [`VACANT_RATE`] marks a free slot (the free list is
    /// threaded through `expiry`).
    rate_bps: u32,
    /// Absolute expiry tick, or the next free slot index when vacant.
    expiry: u32,
}

/// Open-addressing `flow id → slot` index. Parallel arrays keep a bucket
/// at 12 bytes; emptiness lives in the value array (`EMPTY_SLOT`), so
/// every 64-bit flow id — including `u64::MAX` — is a legal key.
#[derive(Debug, Default)]
struct FlowIndex {
    keys: Vec<u64>,
    vals: Vec<u32>,
    len: usize,
}

impl FlowIndex {
    fn with_capacity(n: usize) -> Self {
        let cap = (n.max(8) * 8 / 7 + 1).next_power_of_two();
        Self {
            keys: vec![0; cap],
            vals: vec![EMPTY_SLOT; cap],
            len: 0,
        }
    }

    #[inline]
    fn ideal(&self, key: u64) -> usize {
        // Multiply-shift (Fibonacci) hashing: sequential flow ids — the
        // common workload — spread uniformly.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.vals.len() - 1)
    }

    fn get(&self, key: u64) -> Option<u32> {
        let mask = self.vals.len() - 1;
        let mut i = self.ideal(key);
        loop {
            if self.vals[i] == EMPTY_SLOT {
                return None;
            }
            if self.keys[i] == key {
                return Some(self.vals[i]);
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert or overwrite; returns the previous slot for `key`, if any.
    fn insert(&mut self, key: u64, val: u32) -> Option<u32> {
        if (self.len + 1) * 8 > self.vals.len() * 7 {
            self.grow();
        }
        let mask = self.vals.len() - 1;
        let mut i = self.ideal(key);
        loop {
            if self.vals[i] == EMPTY_SLOT {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            if self.keys[i] == key {
                let old = self.vals[i];
                self.vals[i] = val;
                return Some(old);
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove `key`, compacting the probe chain (backward-shift deletion
    /// — no tombstones, so probe lengths never degrade under the
    /// admit/release churn of an open-loop workload).
    fn remove(&mut self, key: u64) -> Option<u32> {
        let mask = self.vals.len() - 1;
        let mut i = self.ideal(key);
        loop {
            if self.vals[i] == EMPTY_SLOT {
                return None;
            }
            if self.keys[i] == key {
                break;
            }
            i = (i + 1) & mask;
        }
        let removed = self.vals[i];
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if self.vals[j] == EMPTY_SLOT {
                break;
            }
            let ideal_j = self.ideal(self.keys[j]);
            // `j`'s entry may fill the hole iff its ideal position is not
            // cyclically inside (hole, j].
            if (j.wrapping_sub(ideal_j) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.keys[hole] = self.keys[j];
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.vals[hole] = EMPTY_SLOT;
        self.len -= 1;
        Some(removed)
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        let cap = (old_vals.len() * 2).max(16);
        self.keys = vec![0; cap];
        self.vals = vec![EMPTY_SLOT; cap];
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v != EMPTY_SLOT {
                self.insert(k, v);
            }
        }
    }

    fn resident_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + self.vals.capacity() * std::mem::size_of::<u32>()
    }
}

/// Slab-backed per-flow record store. See the module docs.
#[derive(Debug, Default)]
pub struct FlowTable {
    slots: Vec<FlowSlot>,
    free_head: u32,
    index: FlowIndex,
    len: u32,
}

impl FlowTable {
    /// An empty table (grows on demand).
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free_head: NIL,
            index: FlowIndex::with_capacity(8),
            len: 0,
        }
    }

    /// An empty table pre-sized for `n` flows (a single slab and index
    /// allocation — the million-flow driver uses this to avoid doubling
    /// slack in the ≤ 64 B/flow accounting).
    pub fn with_capacity(n: usize) -> Self {
        Self {
            slots: Vec::with_capacity(n),
            free_head: NIL,
            index: FlowIndex::with_capacity(n),
            len: 0,
        }
    }

    /// Held flows.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no flows are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or overwrite) the record for `flow_id`. Returns the
    /// previous rate when the flow was already present — the caller owns
    /// the aggregate counters and replicates the pre-FlowTable
    /// `HashMap::insert` accounting exactly.
    ///
    /// # Panics
    /// Debug-asserts `rate_bps != u32::MAX` (the vacancy marker); the
    /// admission path rejects such rates before they reach the table
    /// ([`MAX_FLOW_RATE_BPS`]).
    pub fn insert(&mut self, flow_id: u64, rate_bps: u32, expiry: u32) -> Option<u32> {
        debug_assert_ne!(
            rate_bps, VACANT_RATE,
            "rate {rate_bps} is the vacancy marker"
        );
        let slot = if self.free_head != NIL {
            let s = self.free_head;
            self.free_head = self.slots[s as usize].expiry;
            s
        } else {
            self.slots.push(FlowSlot {
                flow_id: 0,
                rate_bps: VACANT_RATE,
                expiry: NIL,
            });
            (self.slots.len() - 1) as u32
        };
        match self.index.insert(flow_id, slot) {
            None => {
                self.slots[slot as usize] = FlowSlot {
                    flow_id,
                    rate_bps,
                    expiry,
                };
                self.len += 1;
                None
            }
            Some(prev_slot) => {
                // Flow already present: the index now points at the fresh
                // slot, so the record moves there and the old slot joins
                // the free list.
                let old_rate = self.slots[prev_slot as usize].rate_bps;
                self.slots[slot as usize] = FlowSlot {
                    flow_id,
                    rate_bps,
                    expiry,
                };
                let prev = &mut self.slots[prev_slot as usize];
                prev.rate_bps = VACANT_RATE;
                prev.expiry = self.free_head;
                self.free_head = prev_slot;
                Some(old_rate)
            }
        }
    }

    /// Remove `flow_id`, returning its `(rate, expiry)`.
    pub fn remove(&mut self, flow_id: u64) -> Option<(u32, u32)> {
        let slot = self.index.remove(flow_id)?;
        let s = &mut self.slots[slot as usize];
        let out = (s.rate_bps, s.expiry);
        s.rate_bps = VACANT_RATE;
        s.expiry = self.free_head;
        self.free_head = slot;
        self.len -= 1;
        Some(out)
    }

    /// The `(rate, expiry)` of a held flow.
    pub fn get(&self, flow_id: u64) -> Option<(u32, u32)> {
        let slot = self.index.get(flow_id)?;
        let s = &self.slots[slot as usize];
        Some((s.rate_bps, s.expiry))
    }

    /// Iterate held flows as `(flow_id, rate, expiry)` (tests and
    /// diagnostics only — O(slab capacity)).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32, u32)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.rate_bps != VACANT_RATE)
            .map(|s| (s.flow_id, s.rate_bps, s.expiry))
    }

    /// Bytes this table actually holds resident: slab + index arrays, at
    /// their allocated capacities. This is the number the ≤ 64 B/flow
    /// gate in `exp_million_flows` measures.
    pub fn resident_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<FlowSlot>() + self.index.resident_bytes()
    }
}

/// Hierarchical timer wheel: level 0 covers the next 256 ticks at
/// 1-tick granularity, level 1 the next 65 536 at 256-tick granularity,
/// and an overflow list holds the far future. `advance` fires every item
/// whose due tick has passed; a tick is whatever the caller makes it
/// (the broker uses seconds of wall clock).
#[derive(Debug)]
pub struct TimerWheel<T> {
    l0: Vec<Vec<(u32, T)>>,
    l1: Vec<Vec<(u32, T)>>,
    overflow: Vec<(u32, T)>,
    now: u32,
    pending: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel at tick 0.
    pub fn new() -> Self {
        Self {
            l0: (0..256).map(|_| Vec::new()).collect(),
            l1: (0..256).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            now: 0,
            pending: 0,
        }
    }

    /// The wheel's current tick.
    pub fn now(&self) -> u32 {
        self.now
    }

    /// Scheduled items not yet fired.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedule `item` to fire once `advance` passes `due`. Items already
    /// due fire on the next `advance` call.
    pub fn schedule(&mut self, due: u32, item: T) {
        self.pending += 1;
        let floor = self.now.saturating_add(1);
        self.place(due, item, floor);
    }

    fn place(&mut self, due: u32, item: T, floor: u32) {
        let eff = due.max(floor);
        let delta = eff - self.now;
        if delta < 256 {
            self.l0[(eff & 255) as usize].push((due, item));
        } else if delta < 65_536 {
            self.l1[((eff >> 8) & 255) as usize].push((due, item));
        } else {
            self.overflow.push((due, item));
        }
    }

    /// Advance to `to`, invoking `fire` for every item whose due tick is
    /// ≤ `to`, in tick order. Cost is O(ticks crossed + items fired);
    /// when nothing is pending the jump is O(1).
    pub fn advance(&mut self, to: u32, mut fire: impl FnMut(T)) {
        if to <= self.now {
            return;
        }
        if self.pending == 0 {
            self.now = to;
            return;
        }
        while self.now < to {
            let t = self.now + 1;
            self.now = t;
            if t & 255 == 0 {
                // Cascade the level-1 bucket covering [t, t+255] down to
                // exact ticks (entries due right now land in l0[t & 255],
                // drained below).
                let bucket = std::mem::take(&mut self.l1[((t >> 8) & 255) as usize]);
                for (due, item) in bucket {
                    self.place(due, item, t);
                }
                if t & 65_535 == 0 {
                    let far = std::mem::take(&mut self.overflow);
                    for (due, item) in far {
                        self.place(due, item, t);
                    }
                }
            }
            let bucket = std::mem::take(&mut self.l0[(t & 255) as usize]);
            for (due, item) in bucket {
                if due <= t {
                    self.pending -= 1;
                    fire(item);
                } else {
                    // Defensive: never fires with a correct cascade, but
                    // a misplace must delay, not drop.
                    self.place(due, item, t + 1);
                }
            }
            if self.pending == 0 {
                self.now = to;
                return;
            }
        }
    }

    /// Bytes resident in bucket storage (capacity-based, like
    /// [`FlowTable::resident_bytes`]).
    pub fn resident_bytes(&self) -> usize {
        let item = std::mem::size_of::<(u32, T)>();
        let vecs = self.l0.iter().chain(self.l1.iter());
        vecs.map(|v| v.capacity() * item).sum::<usize>()
            + self.overflow.capacity() * item
            + (self.l0.capacity() + self.l1.capacity()) * std::mem::size_of::<Vec<(u32, T)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = FlowTable::new();
        assert!(t.is_empty());
        for f in 0..1000u64 {
            assert_eq!(t.insert(f, (f as u32 + 1) * 10, f as u32), None);
        }
        assert_eq!(t.len(), 1000);
        for f in 0..1000u64 {
            assert_eq!(t.get(f), Some(((f as u32 + 1) * 10, f as u32)));
        }
        for f in (0..1000u64).step_by(2) {
            assert_eq!(t.remove(f), Some(((f as u32 + 1) * 10, f as u32)));
        }
        assert_eq!(t.len(), 500);
        for f in 0..1000u64 {
            assert_eq!(t.get(f).is_some(), f % 2 == 1, "flow {f}");
        }
        assert_eq!(t.remove(2), None);
    }

    #[test]
    fn duplicate_insert_overwrites_and_returns_old_rate() {
        let mut t = FlowTable::new();
        assert_eq!(t.insert(7, 100, 1), None);
        assert_eq!(t.insert(7, 250, 9), Some(100));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(7), Some((250, 9)));
        // The double-claimed slot went back to the free list: a third
        // flow reuses it instead of growing the slab.
        let slab_before = t.slots.len();
        t.insert(8, 1, 1);
        assert_eq!(t.slots.len(), slab_before);
    }

    #[test]
    fn extreme_flow_ids_are_legal_keys() {
        let mut t = FlowTable::new();
        for f in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            assert_eq!(t.insert(f, 5, EXPIRY_NEVER), None);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.remove(u64::MAX), Some((5, EXPIRY_NEVER)));
        assert_eq!(t.get(u64::MAX), None);
        assert_eq!(t.get(u64::MAX - 1), Some((5, EXPIRY_NEVER)));
    }

    #[test]
    fn slab_slots_are_reused_after_release() {
        let mut t = FlowTable::new();
        for f in 0..100u64 {
            t.insert(f, 1, 0);
        }
        for f in 0..100u64 {
            t.remove(f);
        }
        let cap = t.slots.len();
        for f in 100..200u64 {
            t.insert(f, 1, 0);
        }
        assert_eq!(t.slots.len(), cap, "released slots must be reused");
    }

    #[test]
    fn resident_bytes_stays_compact_at_scale() {
        let n = 100_000usize;
        let mut t = FlowTable::with_capacity(n);
        for f in 0..n as u64 {
            t.insert(f, 1000, 42);
        }
        let per_flow = t.resident_bytes() as f64 / n as f64;
        assert!(
            per_flow <= 64.0,
            "resident {per_flow:.1} B/flow exceeds the 64 B bound"
        );
    }

    #[test]
    fn index_survives_heavy_churn() {
        // Backward-shift deletion keeps probes correct across interleaved
        // insert/remove with colliding ideal positions.
        let mut t = FlowTable::new();
        let mut live = std::collections::HashSet::new();
        let mut x = 0x1234_5678_u64;
        for i in 0..50_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let f = x % 512; // force collisions
            if i % 3 == 0 && live.contains(&f) {
                assert!(t.remove(f).is_some());
                live.remove(&f);
            } else {
                t.insert(f, (i % 1000) as u32 + 1, i as u32);
                live.insert(f);
            }
            assert_eq!(t.len(), live.len());
        }
        for f in 0..512u64 {
            assert_eq!(t.get(f).is_some(), live.contains(&f), "flow {f}");
        }
    }

    #[test]
    fn wheel_fires_in_tick_order() {
        let mut w = TimerWheel::new();
        w.schedule(5, "e");
        w.schedule(1, "a");
        w.schedule(300, "far");
        w.schedule(3, "c");
        w.schedule(70_000, "vfar");
        let mut fired = Vec::new();
        w.advance(4, |s| fired.push(s));
        assert_eq!(fired, vec!["a", "c"]);
        w.advance(299, |s| fired.push(s));
        assert_eq!(fired, vec!["a", "c", "e"]);
        w.advance(80_000, |s| fired.push(s));
        assert_eq!(fired, vec!["a", "c", "e", "far", "vfar"]);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn wheel_past_due_fires_on_next_advance() {
        let mut w = TimerWheel::new();
        w.advance(100, |_: u32| unreachable!());
        w.schedule(10, 1u32); // already past due
        let mut fired = Vec::new();
        w.advance(101, |x| fired.push(x));
        assert_eq!(fired, vec![1]);
    }

    #[test]
    fn wheel_cascade_boundaries_are_exact() {
        // Items straddling the 256- and 65536-tick cascade edges fire at
        // exactly their due tick, not a bucket-granularity earlier/later.
        let mut w = TimerWheel::new();
        for due in [255u32, 256, 257, 511, 512, 65_535, 65_536, 65_537] {
            w.schedule(due, due);
        }
        let mut fired = Vec::new();
        for t in 1..=70_000u32 {
            w.advance(t, |d| fired.push((d, t)));
        }
        for (due, at) in fired {
            assert_eq!(due, at, "item due {due} fired at {at}");
        }
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn wheel_idle_jump_is_cheap_and_exact() {
        let mut w = TimerWheel::new();
        w.advance(1_000_000_000, |_: u32| unreachable!());
        assert_eq!(w.now(), 1_000_000_000);
        w.schedule(1_000_000_005, 7u32);
        let mut fired = Vec::new();
        w.advance(1_000_000_010, |x| fired.push(x));
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn wheel_bulk_expiry_is_o_expired() {
        // 100k items over 1000 distinct ticks: every advance only touches
        // the due buckets. (Correctness here; the cost claim is gated by
        // the open-loop experiment.)
        let mut w = TimerWheel::new();
        for i in 0..100_000u32 {
            w.schedule(1 + (i % 1000), i);
        }
        let mut count = 0u32;
        w.advance(1000, |_| count += 1);
        assert_eq!(count, 100_000);
    }
}
