//! Structured per-broker audit trail.
//!
//! The paper's signatures "allow for the tracking the path taken by a
//! request"; operationally, each broker also wants a local record of what
//! it decided and why. [`AuditLog`] is a bounded in-memory trail of the
//! protocol steps a [`crate::node::BbNode`] takes — disabled by default,
//! switched on per node for debugging, examples, and incident forensics.

use crate::rar::RarId;
use qos_crypto::Timestamp;
use std::collections::VecDeque;
use std::fmt;

/// One audited protocol step.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEvent {
    /// A request arrived (from a user or a peer).
    RequestReceived {
        /// The request.
        rar_id: RarId,
        /// `user` or the upstream peer domain.
        from: String,
        /// Envelope depth on arrival.
        depth: usize,
    },
    /// The local PDP decided.
    PolicyDecision {
        /// The request.
        rar_id: RarId,
        /// `GRANT` or the denial reason.
        decision: String,
    },
    /// Admission control held (or refused) capacity.
    Admission {
        /// The request.
        rar_id: RarId,
        /// Whether the hold succeeded.
        ok: bool,
        /// Rate involved (bits/s).
        rate_bps: u64,
    },
    /// The request was wrapped and forwarded downstream.
    Forwarded {
        /// The request.
        rar_id: RarId,
        /// Next-hop peer domain.
        to: String,
    },
    /// An approval was endorsed / originated here.
    Approved {
        /// The request.
        rar_id: RarId,
    },
    /// A denial was issued or relayed here.
    Denied {
        /// The request.
        rar_id: RarId,
        /// The denying domain.
        domain: String,
        /// The reason.
        reason: String,
    },
    /// A reservation was released (teardown or expiry).
    Released {
        /// The request.
        rar_id: RarId,
    },
    /// A tunnel sub-flow was processed at this end.
    TunnelFlow {
        /// The tunnel.
        tunnel: RarId,
        /// The sub-flow.
        flow: u64,
        /// Accepted?
        accepted: bool,
    },
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEvent::RequestReceived {
                rar_id,
                from,
                depth,
            } => {
                write!(f, "request {rar_id:?} received from {from} (depth {depth})")
            }
            AuditEvent::PolicyDecision { rar_id, decision } => {
                write!(f, "policy on {rar_id:?}: {decision}")
            }
            AuditEvent::Admission {
                rar_id,
                ok,
                rate_bps,
            } => {
                write!(
                    f,
                    "admission of {rar_id:?} @{rate_bps}bps: {}",
                    if *ok { "held" } else { "refused" }
                )
            }
            AuditEvent::Forwarded { rar_id, to } => write!(f, "{rar_id:?} forwarded to {to}"),
            AuditEvent::Approved { rar_id } => write!(f, "{rar_id:?} approved"),
            AuditEvent::Denied {
                rar_id,
                domain,
                reason,
            } => {
                write!(f, "{rar_id:?} denied by {domain}: {reason}")
            }
            AuditEvent::Released { rar_id } => write!(f, "{rar_id:?} released"),
            AuditEvent::TunnelFlow {
                tunnel,
                flow,
                accepted,
            } => {
                write!(
                    f,
                    "tunnel {tunnel:?} flow {flow}: {}",
                    if *accepted { "accepted" } else { "refused" }
                )
            }
        }
    }
}

/// A bounded audit trail (oldest entries evicted beyond the cap, with an
/// eviction count — a forensic trail must not *silently* lose history).
#[derive(Debug)]
pub struct AuditLog {
    enabled: bool,
    cap: usize,
    events: VecDeque<(Timestamp, AuditEvent)>,
    dropped: u64,
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl AuditLog {
    /// A disabled log with the given capacity.
    pub fn new(cap: usize) -> Self {
        Self {
            enabled: false,
            cap: cap.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The eviction bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted by the capacity bound since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record an event (no-op while disabled).
    pub fn record(&mut self, at: Timestamp, event: AuditEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at, event));
    }

    /// All recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(Timestamp, AuditEvent)> {
        self.events.iter()
    }

    /// Recorded events for one request.
    pub fn for_rar(&self, rar_id: RarId) -> Vec<&AuditEvent> {
        self.events
            .iter()
            .map(|(_, e)| e)
            .filter(|e| match e {
                AuditEvent::RequestReceived { rar_id: id, .. }
                | AuditEvent::PolicyDecision { rar_id: id, .. }
                | AuditEvent::Admission { rar_id: id, .. }
                | AuditEvent::Forwarded { rar_id: id, .. }
                | AuditEvent::Approved { rar_id: id }
                | AuditEvent::Denied { rar_id: id, .. }
                | AuditEvent::Released { rar_id: id } => *id == rar_id,
                AuditEvent::TunnelFlow { tunnel, .. } => *tunnel == rar_id,
            })
            .collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = AuditLog::new(8);
        log.record(Timestamp(0), AuditEvent::Approved { rar_id: RarId(1) });
        assert!(log.is_empty());
        log.set_enabled(true);
        log.record(Timestamp(1), AuditEvent::Approved { rar_id: RarId(1) });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn bounded_eviction() {
        let mut log = AuditLog::new(3);
        log.set_enabled(true);
        for i in 0..5 {
            log.record(Timestamp(i), AuditEvent::Approved { rar_id: RarId(i) });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.capacity(), 3);
        let first = log.events().next().unwrap();
        assert_eq!(first.0, Timestamp(2), "oldest evicted");
    }

    #[test]
    fn per_request_filter() {
        let mut log = AuditLog::new(16);
        log.set_enabled(true);
        log.record(Timestamp(0), AuditEvent::Approved { rar_id: RarId(1) });
        log.record(Timestamp(1), AuditEvent::Approved { rar_id: RarId(2) });
        log.record(
            Timestamp(2),
            AuditEvent::Denied {
                rar_id: RarId(1),
                domain: "x".into(),
                reason: "y".into(),
            },
        );
        assert_eq!(log.for_rar(RarId(1)).len(), 2);
        assert_eq!(log.for_rar(RarId(2)).len(), 1);
        assert_eq!(log.for_rar(RarId(3)).len(), 0);
    }
}
