//! Destination-side verification of a nested RAR — the transitive trust
//! model of §6.4.
//!
//! The destination holds exactly one a-priori key: its direct upstream
//! peer's, pinned by the SLA and confirmed during the secure-channel
//! handshake. Everything further upstream is reached through the
//! envelope itself: each broker layer embeds the certificate of the
//! *inner* layer's signer, and by signing the whole layer the outer
//! broker vouches for that certificate — "this web of trust allows each
//! domain to access a list of key introducers when deciding whether to
//! accept the public key stored in the certificate."
//!
//! The verifier also enforces the paper's two structural checks:
//! path continuity (each layer names its downstream broker, and exactly
//! that broker must have wrapped it) and a local bound on acceptable
//! chain depth ("checking its own security policy which might limit the
//! depth of an acceptable trust chain").
//!
//! Alternatives to the introducer walk (§6.4's option list) are modelled
//! by [`KeySource`] for the D3 ablation.

use crate::envelope::{RarLayer, SignedRar};
use crate::error::CoreError;
use crate::rar::ResSpec;
use qos_crypto::sha256::{sha256, Digest, Sha256};
use qos_crypto::{
    Certificate, CertificateDirectory, DistinguishedName, PublicKey, Signature, Timestamp,
    TrustPolicy,
};
use qos_policy::AttributeSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Where a verifier obtains upstream public keys.
pub enum KeySource<'a> {
    /// Walk the introducer chain embedded in the envelope (the paper's
    /// preferred mechanism).
    Introducers,
    /// Resolve DNs against a trusted certificate repository ("secure
    /// LDAP" — §6.4 option 2).
    Directory(&'a CertificateDirectory),
}

/// What successful verification yields.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedRar {
    /// The reservation specification.
    pub res_spec: ResSpec,
    /// Signers innermost-first: user, source BB, transit BBs.
    pub signer_path: Vec<DistinguishedName>,
    /// The user's identity certificate (introduced by the source BB).
    pub user_cert: Certificate,
    /// The source BB's certificate, if the envelope has ≥2 broker layers
    /// — this is what the destination needs to open the direct tunnel
    /// channel back to the source domain.
    pub source_bb_cert: Option<Certificate>,
    /// All capability certificates, CAS grant first (Figure 7's list).
    pub capability_certs: Vec<Certificate>,
    /// Merged policy attachments from every domain on the path.
    pub attachments: AttributeSet,
}

/// Default bound on memoized envelope verdicts (process-wide).
pub const RAR_MEMO_DEFAULT_CAPACITY: usize = 256;

struct MemoEntry {
    /// The outermost layer's signature. The memo key digests the outer
    /// layer *bytes* (which bind every inner layer, certificate, and
    /// signature), but not the outer signature itself — so a hit
    /// additionally requires signature equality, exactly like the
    /// verify cache.
    sig: Signature,
    verified: VerifiedRar,
    stamp: u64,
}

struct RarMemo {
    map: HashMap<Digest, MemoEntry>,
    tick: u64,
    cap: usize,
}

impl Default for RarMemo {
    fn default() -> Self {
        RarMemo {
            map: HashMap::new(),
            tick: 0,
            cap: RAR_MEMO_DEFAULT_CAPACITY,
        }
    }
}

struct MemoCounters {
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
}

fn memo() -> &'static Mutex<RarMemo> {
    static MEMO: OnceLock<Mutex<RarMemo>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(RarMemo::default()))
}

fn memo_counters() -> &'static MemoCounters {
    static COUNTERS: OnceLock<MemoCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| MemoCounters {
        hits: Arc::new(AtomicU64::new(0)),
        misses: Arc::new(AtomicU64::new(0)),
        evictions: Arc::new(AtomicU64::new(0)),
    })
}

/// The envelope-verdict memo's counter cells, for registering with a
/// metrics registry (`cache_{hits,misses,evictions}_total{cache="rar"}`).
pub fn rar_memo_counter_cells() -> (Arc<AtomicU64>, Arc<AtomicU64>, Arc<AtomicU64>) {
    let c = memo_counters();
    (
        Arc::clone(&c.hits),
        Arc::clone(&c.misses),
        Arc::clone(&c.evictions),
    )
}

/// `(hits, misses, evictions)` of the envelope-verdict memo so far.
pub fn rar_memo_stats() -> (u64, u64, u64) {
    let c = memo_counters();
    (
        c.hits.load(Ordering::Relaxed),
        c.misses.load(Ordering::Relaxed),
        c.evictions.load(Ordering::Relaxed),
    )
}

/// Drop every memoized envelope verdict (counters are preserved).
pub fn clear_rar_memo() {
    memo().lock().unwrap_or_else(|e| e.into_inner()).map.clear();
}

/// Resize the envelope-verdict memo. `0` disables memoization entirely
/// (lookups bypass the memo without counting misses) — the D10 ablation's
/// "caches off" configuration. Shrinking below the current population
/// drops all entries.
pub fn set_rar_memo_capacity(cap: usize) {
    let mut g = memo().lock().unwrap_or_else(|e| e.into_inner());
    g.cap = cap;
    if g.map.len() > cap {
        g.map.clear();
    }
}

/// The memo key binds everything that can change the verdict: the full
/// envelope (one digest of the outermost layer's canonical bytes, which
/// nest every inner layer, certificate, signature, and attachment), the
/// a-priori peer key, the verifier's own DN, the chain-depth bound, and
/// the validity instant. Only the outer signature stays outside the
/// digest; [`MemoEntry::sig`] covers it.
fn memo_key(
    rar: &SignedRar,
    outer_pk: PublicKey,
    self_dn: &DistinguishedName,
    policy: TrustPolicy,
    now: Timestamp,
) -> Digest {
    // Incremental feed (D15): hashes the same byte sequence the old
    // concatenated buffer held — layer digest ‖ pk ‖ canonical DN
    // encoding ‖ depth bound ‖ clock — without materializing it, so the
    // memo fast path itself is allocation-free.
    let mut h = Sha256::new();
    h.update(&sha256(rar.layer_bytes()));
    h.update(&outer_pk.0.to_le_bytes());
    let comps = self_dn.components();
    h.update(&(comps.len() as u32).to_le_bytes());
    for c in comps {
        h.update(&(c.attr.len() as u32).to_le_bytes());
        h.update(c.attr.as_bytes());
        h.update(&(c.value.len() as u32).to_le_bytes());
        h.update(c.value.as_bytes());
    }
    h.update(&(policy.max_chain_depth as u64).to_le_bytes());
    h.update(&now.0.to_le_bytes());
    h.finalize()
}

fn memo_lookup(key: &Digest, sig: &Signature) -> Option<VerifiedRar> {
    let c = memo_counters();
    let mut g = memo().lock().unwrap_or_else(|e| e.into_inner());
    if g.cap == 0 {
        return None;
    }
    g.tick += 1;
    let tick = g.tick;
    match g.map.get_mut(key) {
        Some(e) if e.sig == *sig => {
            e.stamp = tick;
            c.hits.fetch_add(1, Ordering::Relaxed);
            Some(e.verified.clone())
        }
        _ => {
            c.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

fn memo_insert(key: Digest, sig: Signature, verified: VerifiedRar) {
    let c = memo_counters();
    let mut g = memo().lock().unwrap_or_else(|e| e.into_inner());
    if g.cap == 0 {
        return;
    }
    g.tick += 1;
    let tick = g.tick;
    if g.map.len() >= g.cap && !g.map.contains_key(&key) {
        if let Some(victim) = g.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) {
            g.map.remove(&victim);
            c.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
    g.map.insert(
        key,
        MemoEntry {
            sig,
            verified,
            stamp: tick,
        },
    );
}

/// Verify a received envelope.
///
/// * `outer_pk` — the direct peer's public key (SLA-pinned, confirmed by
///   the channel handshake);
/// * `self_dn` — the verifier's own DN (the outermost layer must be
///   addressed to it);
/// * `policy` — local chain-depth bound;
/// * `now` — certificate validity instant;
/// * `keys` — where upstream keys come from (D3 ablation).
///
/// Successful introducer-walk verdicts are memoized process-wide: the
/// steady state re-verifies byte-identical envelopes (retries, the
/// two-phase commit leg, tunnel re-validation), and a memo hit costs
/// one digest of the received bytes instead of the full structural walk
/// plus per-layer signature work. Directory-backed verification
/// ([`KeySource::Directory`]) is never memoized — the directory is live
/// state outside the key.
pub fn verify_rar(
    rar: &SignedRar,
    outer_pk: PublicKey,
    self_dn: &DistinguishedName,
    policy: TrustPolicy,
    now: Timestamp,
    keys: &KeySource<'_>,
) -> Result<VerifiedRar, CoreError> {
    // Fast path: a byte-identical envelope already verified under this
    // exact (peer key, own DN, depth bound, clock) context.
    let key = matches!(keys, KeySource::Introducers)
        .then(|| memo_key(rar, outer_pk, self_dn, policy, now));
    if let Some(key) = &key {
        if let Some(verified) = memo_lookup(key, &rar.signature) {
            return Ok(verified);
        }
    }

    // Depth bound: broker layers beyond the user's.
    let depth = rar.depth().saturating_sub(1);
    if depth > policy.max_chain_depth {
        return Err(CoreError::ChainTooDeep {
            depth,
            limit: policy.max_chain_depth,
        });
    }

    // The outermost layer must be addressed to us…
    if let RarLayer::Broker {
        next_bb: Some(next),
        ..
    } = &rar.layer
    {
        if next != self_dn {
            return Err(CoreError::PathMismatch {
                expected: next.clone(),
                found: self_dn.clone(),
            });
        }
    }

    // …and signed by the peer we received it from.
    //
    // The walk below is purely structural: it checks path continuity,
    // certificate validity, and key resolution while *collecting* each
    // layer's (canonical bytes, key, signature) triple. All signatures
    // are then checked at once with a single multi-exponentiation
    // (`qos_crypto::verify_batch`); only if that combined check fails do
    // we verify layer-by-layer to attribute the bad signature.
    let mut current = rar;
    let mut current_pk = resolve_key(keys, &current.signer, outer_pk, now)?;
    let mut user_cert: Option<Certificate> = None;
    let mut source_bb_cert: Option<Certificate> = None;
    let mut batch: Vec<(&[u8], PublicKey, qos_crypto::Signature)> = Vec::with_capacity(rar.depth());
    let mut batch_signers: Vec<&DistinguishedName> = Vec::with_capacity(rar.depth());

    let verified = loop {
        batch.push((current.layer_bytes(), current_pk, current.signature));
        batch_signers.push(&current.signer);
        match &current.layer {
            RarLayer::Broker {
                inner,
                upstream_cert,
                ..
            } => {
                // The embedded certificate must describe the inner signer.
                if !upstream_cert.tbs.subject.same_principal(&inner.signer) {
                    return Err(CoreError::PathMismatch {
                        expected: inner.signer.clone(),
                        found: upstream_cert.tbs.subject.clone(),
                    });
                }
                upstream_cert.check_validity(now).map_err(CoreError::from)?;
                // Path continuity: the inner layer named its downstream
                // broker; exactly that broker must have signed this wrap.
                let inner_next = match &inner.layer {
                    RarLayer::Broker { next_bb, .. } => next_bb.clone(),
                    RarLayer::User { source_bb, .. } => {
                        // The user's layer is wrapped by the source BB; the
                        // wrapping layer introduces the *user's* cert and,
                        // one level further out, the source BB's cert.
                        user_cert = Some(upstream_cert.clone());
                        Some(source_bb.clone())
                    }
                };
                if matches!(inner.layer, RarLayer::Broker { .. }) && inner.depth() == 2 {
                    // `current` wraps the source BB's layer: its embedded
                    // certificate is the source BB's.
                    source_bb_cert = Some(upstream_cert.clone());
                }
                if let Some(expected) = inner_next {
                    if expected != current.signer {
                        return Err(CoreError::PathMismatch {
                            expected,
                            found: current.signer.clone(),
                        });
                    }
                }
                // Descend with the introduced (or directory-resolved) key.
                current_pk = resolve_key(
                    keys,
                    &inner.signer,
                    upstream_cert.tbs.subject_public_key,
                    now,
                )?;
                current = inner;
            }
            RarLayer::User { res_spec, .. } => {
                // Innermost layer verified. The requestor in the spec must
                // be the layer's signer.
                if !res_spec.requestor.same_principal(&current.signer) {
                    return Err(CoreError::PathMismatch {
                        expected: res_spec.requestor.clone(),
                        found: current.signer.clone(),
                    });
                }
                let user_cert = user_cert.ok_or(CoreError::LayerSignature {
                    signer: current.signer.clone(),
                })?;
                break VerifiedRar {
                    res_spec: res_spec.clone(),
                    signer_path: rar.signer_path(),
                    user_cert,
                    source_bb_cert,
                    capability_certs: rar.capability_certs(),
                    attachments: rar.merged_attachments(),
                };
            }
        }
    };

    if !qos_crypto::vcache::verify_batch_cached(&batch) {
        // Attribute: find the first layer (outermost-first) whose
        // signature fails on its own. The layers are independent, so
        // check them concurrently on the worker pool.
        let verdicts = crate::parallel::verify_each(&batch);
        for (ok, &signer) in verdicts.iter().zip(&batch_signers) {
            if !ok {
                return Err(CoreError::LayerSignature {
                    signer: signer.clone(),
                });
            }
        }
        // The combined check failed but every layer passes individually —
        // a coefficient collision with probability ~2⁻³², or a bug.
        // Treat it as the outermost layer failing rather than accepting.
        return Err(CoreError::LayerSignature {
            signer: rar.signer.clone(),
        });
    }

    if let Some(key) = key {
        memo_insert(key, rar.signature, verified.clone());
    }
    Ok(verified)
}

fn resolve_key(
    keys: &KeySource<'_>,
    dn: &DistinguishedName,
    introduced: PublicKey,
    now: Timestamp,
) -> Result<PublicKey, CoreError> {
    match keys {
        KeySource::Introducers => Ok(introduced),
        KeySource::Directory(dir) => {
            let pk = dir.lookup(dn, now).map_err(CoreError::from)?;
            // Defence in depth: the directory and the introduced key must
            // agree — a mismatch means someone is lying.
            if pk != introduced {
                return Err(CoreError::LayerSignature { signer: dn.clone() });
            }
            Ok(pk)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rar::{RarId, ResSpec};
    use qos_broker::Interval;
    use qos_crypto::{CertificateAuthority, KeyPair, Validity};

    struct Fix {
        ca: CertificateAuthority,
        user: KeyPair,
        bb: Vec<KeyPair>, // bb[0]=A, bb[1]=B, bb[2]=C
    }

    fn fix() -> Fix {
        Fix {
            ca: CertificateAuthority::new(
                DistinguishedName::authority("CA"),
                KeyPair::from_seed(b"ca"),
            ),
            user: KeyPair::from_seed(b"alice"),
            bb: (0..4)
                .map(|i| KeyPair::from_seed(format!("bb-{i}").as_bytes()))
                .collect(),
        }
    }

    fn domain(i: usize) -> String {
        format!("domain-{}", (b'a' + i as u8) as char)
    }

    fn spec() -> ResSpec {
        ResSpec::new(
            RarId(1),
            DistinguishedName::user("Alice", "ANL"),
            "domain-a",
            "domain-c",
            7,
            10_000_000,
            Interval::starting_at(Timestamp(0), 3600),
        )
    }

    /// Build the canonical RAR_B the paper resolves in §6.4: user → A → B,
    /// addressed to C.
    fn build(f: &mut Fix, hops: usize) -> SignedRar {
        let user_cert = f.ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            f.user.public(),
            Validity::unbounded(),
        );
        let mut rar = SignedRar::user_request(
            spec(),
            DistinguishedName::broker(&domain(0)),
            vec![],
            &f.user,
        );
        let mut upstream_cert = user_cert;
        for i in 0..hops {
            let next = Some(DistinguishedName::broker(&domain(i + 1)));
            rar = SignedRar::wrap(
                rar,
                upstream_cert,
                next,
                vec![],
                AttributeSet::new(),
                DistinguishedName::broker(&domain(i)),
                &f.bb[i],
            );
            upstream_cert = f.ca.issue_identity(
                DistinguishedName::broker(&domain(i)),
                f.bb[i].public(),
                Validity::unbounded(),
            );
        }
        rar
    }

    #[test]
    fn incremental_memo_key_matches_concatenated_feed() {
        // The incremental memo_key must keep producing the digest the
        // original concatenated-buffer implementation produced — cached
        // verdicts survive the refactor.
        let mut f = fix();
        let rar = build(&mut f, 2);
        let pk = f.bb[1].public();
        let dn = DistinguishedName::broker("domain-c");
        let policy = TrustPolicy::default();
        let now = Timestamp(7);
        let outer = sha256(rar.layer_bytes());
        let dn_bytes = qos_wire::to_bytes(&dn);
        let mut feed = Vec::new();
        feed.extend_from_slice(&outer);
        feed.extend_from_slice(&pk.0.to_le_bytes());
        feed.extend_from_slice(&dn_bytes);
        feed.extend_from_slice(&(policy.max_chain_depth as u64).to_le_bytes());
        feed.extend_from_slice(&now.0.to_le_bytes());
        assert_eq!(memo_key(&rar, pk, &dn, policy, now), sha256(&feed));
    }

    #[test]
    fn destination_verifies_two_hop_envelope() {
        let mut f = fix();
        let rar = build(&mut f, 2); // signed by A then B, addressed to C
        let verified = verify_rar(
            &rar,
            f.bb[1].public(),
            &DistinguishedName::broker("domain-c"),
            TrustPolicy::default(),
            Timestamp(0),
            &KeySource::Introducers,
        )
        .unwrap();
        assert_eq!(verified.res_spec.rar_id, RarId(1));
        assert_eq!(verified.signer_path.len(), 3);
        assert_eq!(
            verified.user_cert.tbs.subject,
            DistinguishedName::user("Alice", "ANL")
        );
        // B's layer introduced A's certificate.
        assert_eq!(
            verified.source_bb_cert.as_ref().unwrap().tbs.subject,
            DistinguishedName::broker("domain-a")
        );
    }

    #[test]
    fn wrong_peer_key_rejected() {
        let mut f = fix();
        let rar = build(&mut f, 2);
        let err = verify_rar(
            &rar,
            f.bb[2].public(), // not B's key
            &DistinguishedName::broker("domain-c"),
            TrustPolicy::default(),
            Timestamp(0),
            &KeySource::Introducers,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::LayerSignature { .. }));
    }

    #[test]
    fn batch_failure_attributes_the_tampered_layer() {
        let mut f = fix();
        let mut rar = build(&mut f, 2); // B wraps A wraps user
                                        // Tamper the *middle* layer's signature (A's). The combined batch
                                        // check must fail and the fallback must name domain-a, not the
                                        // outermost signer.
        let RarLayer::Broker { inner, .. } = &mut rar.layer else {
            panic!()
        };
        inner.signature.s ^= 1;
        let err = verify_rar(
            &rar,
            f.bb[1].public(),
            &DistinguishedName::broker("domain-c"),
            TrustPolicy::default(),
            Timestamp(0),
            &KeySource::Introducers,
        )
        .unwrap_err();
        assert_eq!(
            err,
            CoreError::LayerSignature {
                signer: DistinguishedName::broker("domain-a")
            }
        );
    }

    #[test]
    fn misaddressed_envelope_rejected() {
        let mut f = fix();
        let rar = build(&mut f, 2); // addressed to domain-c
        let err = verify_rar(
            &rar,
            f.bb[1].public(),
            &DistinguishedName::broker("domain-x"),
            TrustPolicy::default(),
            Timestamp(0),
            &KeySource::Introducers,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::PathMismatch { .. }));
    }

    #[test]
    fn skipped_domain_breaks_path_continuity() {
        let mut f = fix();
        // A addresses B, but C's peer claims to have received it from A
        // directly wrapped by C — i.e. B was skipped. Build: user→A
        // (next=B), then wrap by *C* instead of B.
        let user_cert = f.ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            f.user.public(),
            Validity::unbounded(),
        );
        let rar_u = SignedRar::user_request(
            spec(),
            DistinguishedName::broker("domain-a"),
            vec![],
            &f.user,
        );
        let rar_a = SignedRar::wrap(
            rar_u,
            user_cert,
            Some(DistinguishedName::broker("domain-b")),
            vec![],
            AttributeSet::new(),
            DistinguishedName::broker("domain-a"),
            &f.bb[0],
        );
        let cert_a = f.ca.issue_identity(
            DistinguishedName::broker("domain-a"),
            f.bb[0].public(),
            Validity::unbounded(),
        );
        let rar_c = SignedRar::wrap(
            rar_a,
            cert_a,
            Some(DistinguishedName::broker("domain-d")),
            vec![],
            AttributeSet::new(),
            DistinguishedName::broker("domain-c"), // C wrapped, but A said B
            &f.bb[2],
        );
        let err = verify_rar(
            &rar_c,
            f.bb[2].public(),
            &DistinguishedName::broker("domain-d"),
            TrustPolicy::default(),
            Timestamp(0),
            &KeySource::Introducers,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::PathMismatch { .. }), "{err}");
    }

    #[test]
    fn depth_policy_enforced() {
        let mut f = fix();
        let rar = build(&mut f, 3);
        let err = verify_rar(
            &rar,
            f.bb[2].public(),
            &DistinguishedName::broker("domain-d"),
            TrustPolicy { max_chain_depth: 2 },
            Timestamp(0),
            &KeySource::Introducers,
        )
        .unwrap_err();
        assert_eq!(err, CoreError::ChainTooDeep { depth: 3, limit: 2 });
    }

    #[test]
    fn directory_key_source_agrees() {
        let mut f = fix();
        let rar = build(&mut f, 2);
        let mut dir = CertificateDirectory::new();
        dir.publish(f.ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            f.user.public(),
            Validity::unbounded(),
        ));
        for i in 0..2 {
            dir.publish(f.ca.issue_identity(
                DistinguishedName::broker(&domain(i)),
                f.bb[i].public(),
                Validity::unbounded(),
            ));
        }
        assert!(verify_rar(
            &rar,
            f.bb[1].public(),
            &DistinguishedName::broker("domain-c"),
            TrustPolicy::default(),
            Timestamp(0),
            &KeySource::Directory(&dir),
        )
        .is_ok());
        // A directory that disagrees with the introduced key flags the lie.
        let mut bad = CertificateDirectory::new();
        bad.publish(f.ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            KeyPair::from_seed(b"not-alice").public(),
            Validity::unbounded(),
        ));
        for i in 0..2 {
            bad.publish(f.ca.issue_identity(
                DistinguishedName::broker(&domain(i)),
                f.bb[i].public(),
                Validity::unbounded(),
            ));
        }
        assert!(verify_rar(
            &rar,
            f.bb[1].public(),
            &DistinguishedName::broker("domain-c"),
            TrustPolicy::default(),
            Timestamp(0),
            &KeySource::Directory(&bad),
        )
        .is_err());
    }

    #[test]
    fn expired_introduced_cert_rejected() {
        let mut f = fix();
        // Build with a short-lived user cert.
        let user_cert = f.ca.issue_identity(
            DistinguishedName::user("Alice", "ANL"),
            f.user.public(),
            Validity::starting_at(Timestamp(0), 10),
        );
        let rar_u = SignedRar::user_request(
            spec(),
            DistinguishedName::broker("domain-a"),
            vec![],
            &f.user,
        );
        let rar_a = SignedRar::wrap(
            rar_u,
            user_cert,
            Some(DistinguishedName::broker("domain-b")),
            vec![],
            AttributeSet::new(),
            DistinguishedName::broker("domain-a"),
            &f.bb[0],
        );
        let err = verify_rar(
            &rar_a,
            f.bb[0].public(),
            &DistinguishedName::broker("domain-b"),
            TrustPolicy::default(),
            Timestamp(100),
            &KeySource::Introducers,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Crypto(qos_crypto::CryptoError::Expired { .. })
        ));
    }

    #[test]
    fn memoized_verdict_equals_fresh_verification() {
        let mut f = fix();
        let rar = build(&mut f, 3);
        let args = (
            f.bb[2].public(),
            DistinguishedName::broker("domain-d"),
            TrustPolicy::default(),
            Timestamp(0),
        );
        let first = verify_rar(
            &rar,
            args.0,
            &args.1,
            args.2,
            args.3,
            &KeySource::Introducers,
        )
        .unwrap();
        let (hits_before, _, _) = rar_memo_stats();
        let replay = verify_rar(
            &rar,
            args.0,
            &args.1,
            args.2,
            args.3,
            &KeySource::Introducers,
        )
        .unwrap();
        let (hits_after, _, _) = rar_memo_stats();
        assert!(
            hits_after > hits_before,
            "byte-identical re-verification must hit the memo"
        );
        assert_eq!(replay, first);
        // Any key-context change falls off the fast path: a different
        // validity instant re-runs the full walk (and, here, still
        // succeeds against unbounded certificates).
        let (_, misses_before, _) = rar_memo_stats();
        let shifted = verify_rar(
            &rar,
            args.0,
            &args.1,
            args.2,
            Timestamp(1),
            &KeySource::Introducers,
        )
        .unwrap();
        let (_, misses_after, _) = rar_memo_stats();
        assert!(misses_after > misses_before);
        assert_eq!(shifted, first);
    }

    #[test]
    fn memo_never_accepts_tampered_outer_signature() {
        let mut f = fix();
        let rar = build(&mut f, 2);
        // Warm the memo with the genuine envelope…
        verify_rar(
            &rar,
            f.bb[1].public(),
            &DistinguishedName::broker("domain-c"),
            TrustPolicy::default(),
            Timestamp(0),
            &KeySource::Introducers,
        )
        .unwrap();
        // …then present the same bytes under a corrupted outer signature.
        // The memo key matches, but the stored-signature equality check
        // must push it back onto the full (rejecting) path.
        let mut forged = rar;
        forged.signature.s ^= 1;
        let err = verify_rar(
            &forged,
            f.bb[1].public(),
            &DistinguishedName::broker("domain-c"),
            TrustPolicy::default(),
            Timestamp(0),
            &KeySource::Introducers,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::LayerSignature { .. }));
    }
}
