//! Approach 1 — source-domain-based signalling (§3, Figure 3), plus the
//! STARS reservation-coordinator variant.
//!
//! An end-to-end agent in the source domain contacts every broker on the
//! path directly, either sequentially or concurrently. The paper keeps
//! this as the baseline and catalogues its flaws, all of which this
//! module makes measurable:
//!
//! * every broker must know (and be able to authenticate) the user —
//!   trust tables grow as users × domains ([`crate::node::BbNode::trust_table_size`]);
//! * nothing forces the agent to contact *every* domain — a malicious or
//!   buggy agent produces the **misreservation** of Figure 4
//!   ([`SourceBasedRun::skip`]);
//! * there is no end-to-end commit: each domain admits independently.
//!
//! STARS moves the agent into a *reservation coordinator* trusted by all
//! brokers: one trust entry per broker instead of one per user, but
//! still a direct-trust (and skip-capable) architecture.

use crate::drive::Mesh;
use crate::envelope::SignedRar;
use crate::messages::{DirectReply, DirectRequest, SignalMessage};
use crate::rar::ResSpec;
use qos_crypto::{DistinguishedName, KeyPair};
use qos_net::{SimDuration, SimTime};
use std::collections::HashSet;

/// Sequential or concurrent contact of the per-domain brokers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentMode {
    /// One broker at a time, waiting for each reply (GARA's default).
    Sequential,
    /// All brokers at once (GARA "if optimized").
    Concurrent,
}

/// Outcome of one source-based reservation attempt.
#[derive(Debug, Clone)]
pub struct SourceBasedOutcome {
    /// Per-domain replies, in arrival order.
    pub replies: Vec<DirectReply>,
    /// True if every *contacted* domain accepted. Note the trap the
    /// paper warns about: this can be true while domains were skipped.
    pub all_accepted: bool,
    /// Virtual time when the agent started.
    pub started: SimTime,
    /// Virtual time when the last reply arrived.
    pub finished: SimTime,
}

impl SourceBasedOutcome {
    /// End-to-end signalling latency.
    pub fn latency(&self) -> SimDuration {
        self.finished - self.started
    }
}

/// A configured source-based reservation attempt.
pub struct SourceBasedRun {
    /// The user-signed request (one signature serves all domains).
    pub rar: SignedRar,
    /// The full domain path source → destination.
    pub path: Vec<String>,
    /// Domains the agent deliberately does not contact (Figure 4's
    /// misreservation).
    pub skip: HashSet<String>,
    /// Contact strategy.
    pub mode: AgentMode,
}

impl SourceBasedRun {
    /// An honest run contacting every domain.
    pub fn honest(rar: SignedRar, path: Vec<String>, mode: AgentMode) -> Self {
        Self {
            rar,
            path,
            skip: HashSet::new(),
            mode,
        }
    }

    /// A malicious run skipping `skip` (David's incomplete reservation).
    pub fn skipping(
        rar: SignedRar,
        path: Vec<String>,
        skip: impl IntoIterator<Item = String>,
        mode: AgentMode,
    ) -> Self {
        Self {
            rar,
            path,
            skip: skip.into_iter().collect(),
            mode,
        }
    }

    fn request_for(&self, idx: usize) -> DirectRequest {
        DirectRequest {
            rar: self.rar.clone(),
            ingress_peer: (idx > 0).then(|| self.path[idx - 1].clone()),
            egress_peer: (idx + 1 < self.path.len()).then(|| self.path[idx + 1].clone()),
        }
    }

    /// Execute against the mesh, driving virtual time.
    pub fn execute(self, mesh: &mut Mesh) -> SourceBasedOutcome {
        let started = mesh.now();
        let agent_domain = self.path.first().expect("non-empty path").clone();
        let targets: Vec<(usize, String)> = self
            .path
            .iter()
            .enumerate()
            .filter(|(_, d)| !self.skip.contains(*d))
            .map(|(i, d)| (i, d.clone()))
            .collect();

        let mut replies = Vec::new();
        match self.mode {
            AgentMode::Concurrent => {
                for (idx, domain) in &targets {
                    mesh.direct_request_in(
                        SimDuration::ZERO,
                        &agent_domain,
                        domain,
                        self.request_for(*idx),
                    );
                }
                mesh.run_until_idle();
                replies.extend(drain_replies(mesh, started));
            }
            AgentMode::Sequential => {
                for (idx, domain) in &targets {
                    let before = mesh.agent_inbox_len();
                    mesh.direct_request_in(
                        SimDuration::ZERO,
                        &agent_domain,
                        domain,
                        self.request_for(*idx),
                    );
                    mesh.run_until_idle();
                    let mut new = drain_replies_after(mesh, before);
                    let rejected = new.iter().any(|r| !r.accepted);
                    replies.append(&mut new);
                    if rejected {
                        break; // the agent gives up on first rejection
                    }
                }
            }
        }
        let finished = mesh
            .agent_inbox()
            .iter()
            .map(|(t, _)| *t)
            .max()
            .unwrap_or(started);
        let all_accepted = !replies.is_empty() && replies.iter().all(|r| r.accepted);
        SourceBasedOutcome {
            replies,
            all_accepted,
            started,
            finished,
        }
    }
}

fn drain_replies(mesh: &Mesh, since: SimTime) -> Vec<DirectReply> {
    mesh.agent_inbox()
        .iter()
        .filter(|(t, _)| *t >= since)
        .filter_map(|(_, m)| match m {
            SignalMessage::DirectReply(r) => Some(r.clone()),
            _ => None,
        })
        .collect()
}

fn drain_replies_after(mesh: &Mesh, skip_first: usize) -> Vec<DirectReply> {
    mesh.agent_inbox()
        .iter()
        .skip(skip_first)
        .filter_map(|(_, m)| match m {
            SignalMessage::DirectReply(r) => Some(r.clone()),
            _ => None,
        })
        .collect()
}

/// The STARS reservation coordinator: a source-domain entity all brokers
/// trust directly ("it may be feasible for the RC to be 'trusted' to
/// make all necessary reservations; … all bandwidth-brokers need not be
/// aware of all end-users").
pub struct ReservationCoordinator {
    /// The coordinator's DN.
    pub dn: DistinguishedName,
    /// The coordinator's key pair.
    pub key: KeyPair,
}

impl ReservationCoordinator {
    /// Create a coordinator for `domain`.
    pub fn new(domain: &str) -> Self {
        Self {
            dn: DistinguishedName::new([("CN", "RC"), ("OU", domain), ("O", "QoS")]),
            key: KeyPair::from_seed(format!("rc-{domain}").as_bytes()),
        }
    }

    /// Sign a request on a user's behalf: the spec keeps the user as
    /// requestor, the signature (what brokers authenticate) is the RC's.
    pub fn sign_for(&self, spec: ResSpec, source_bb_dn: DistinguishedName) -> SignedRar {
        let mut rar = SignedRar::user_request(spec, source_bb_dn, vec![], &self.key);
        rar.signer = self.dn.clone();
        // Re-sign under the RC identity (user_request stamped the spec's
        // requestor as signer; the RC signs as itself). The layer is
        // untouched, so its cached canonical bytes stay valid.
        rar.signature = self.key.sign(rar.layer_bytes());
        rar
    }
}
